"""Logical algebra: expressions, plan building, rewrites, reference executor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import (
    EdistConstraint,
    PatternScan,
    PrefixConstraint,
    RangeConstraint,
    Selection,
    SimilarityJoin,
    Skyline,
    SubstringConstraint,
    TopN,
    build_plan,
    evaluate,
    execute_reference,
    extract_constraints,
    order_patterns,
    rewrite,
    satisfies,
    skyline_of,
    split_conjunctions,
)
from repro.algebra.operators import Difference, Intersection, Limit, Projection, Union
from repro.algebra.semantics import dominates, match_pattern, order_sort_key
from repro.errors import PlanningError
from repro.triples import Triple
from repro.vql import parse
from repro.vql.ast import (
    FunctionCall,
    Literal,
    OrderItem,
    SkylineItem,
    TriplePattern,
    Var,
)

# fmt: off
TRIPLES = [
    Triple("a1", "name", "Alice"), Triple("a1", "age", 30),
    Triple("a2", "name", "Bob"), Triple("a2", "age", 25),
    Triple("a3", "name", "Cara"), Triple("a3", "age", 40),
    Triple("a1", "city", "Berlin"), Triple("a2", "city", "Basel"),
]
# fmt: on


class TestExpressionEvaluation:
    def test_literal_and_var(self):
        assert evaluate(Literal(5), {}) == 5
        assert evaluate(Var("x"), {"x": "v"}) == "v"
        assert evaluate(Var("x"), {}) is None

    def test_comparisons(self):
        binding = {"x": 5}
        assert satisfies(parse_filter("?x >= 5"), binding)
        assert not satisfies(parse_filter("?x > 5"), binding)
        assert satisfies(parse_filter("?x != 4"), binding)

    def test_mixed_type_comparison(self):
        assert satisfies(parse_filter("?x != 'five'"), {"x": 5})
        assert not satisfies(parse_filter("?x = 'five'"), {"x": 5})
        assert not satisfies(parse_filter("?x < 'five'"), {"x": 5})

    def test_unbound_variable_fails_filter(self):
        assert not satisfies(parse_filter("?missing > 1"), {"x": 5})

    def test_three_valued_or(self):
        # error OR true -> true
        assert satisfies(parse_filter("?missing > 1 OR ?x = 5"), {"x": 5})
        # error OR false -> error -> not satisfied
        assert not satisfies(parse_filter("?missing > 1 OR ?x = 6"), {"x": 5})

    def test_three_valued_and(self):
        # error AND false -> false (not error)
        assert not satisfies(parse_filter("?missing > 1 AND ?x = 6"), {"x": 5})

    def test_functions(self):
        binding = {"s": "ICDE 2006"}
        assert satisfies(parse_filter("contains(?s, 'CDE')"), binding)
        assert satisfies(parse_filter("prefix(?s, 'ICDE')"), binding)
        assert satisfies(parse_filter("edist(?s, 'ICDE 2007') < 2"), binding)
        assert satisfies(parse_filter("length(?s) = 9"), binding)
        assert evaluate(parse_filter("lower(?s)"), binding) == "icde 2006"
        assert evaluate(parse_filter("upper(?s)"), binding) == "ICDE 2006"
        assert evaluate(parse_filter("abs(?n)"), {"n": -3}) == 3

    def test_unknown_function(self):
        from repro.errors import VQLError

        with pytest.raises(VQLError):
            evaluate(FunctionCall("nope", (Literal(1),)), {})

    def test_not(self):
        assert satisfies(parse_filter("!(?x = 4)"), {"x": 5})
        assert not satisfies(parse_filter("NOT ?x = 5"), {"x": 5})


class TestConstraintExtraction:
    def test_range_constraints(self):
        constraints = extract_constraints(parse_filter("?x >= 5 AND ?x < 9"))
        assert RangeConstraint("x", ">=", 5) in constraints
        assert RangeConstraint("x", "<", 9) in constraints

    def test_flipped_comparison(self):
        constraints = extract_constraints(parse_filter("5 <= ?x"))
        assert constraints == [RangeConstraint("x", ">=", 5)]

    def test_edist_exclusive_bound(self):
        constraints = extract_constraints(parse_filter("edist(?s,'ICDE') < 3"))
        assert constraints == [EdistConstraint("s", "ICDE", 2)]

    def test_edist_inclusive_bound(self):
        constraints = extract_constraints(parse_filter("edist(?s,'ICDE') <= 3"))
        assert constraints == [EdistConstraint("s", "ICDE", 3)]

    def test_prefix_and_contains(self):
        constraints = extract_constraints(parse_filter("prefix(?s,'IC') AND contains(?s,'DE')"))
        assert PrefixConstraint("s", "IC") in constraints
        assert SubstringConstraint("s", "DE") in constraints

    def test_disjunction_yields_nothing(self):
        assert extract_constraints(parse_filter("?x > 5 OR ?x < 2")) == []


class TestPatternMatching:
    def test_binds_variables(self):
        pattern = TriplePattern(Var("s"), Literal("name"), Var("n"))
        binding = match_pattern(pattern, Triple("a1", "name", "Alice"))
        assert binding == {"s": "a1", "n": "Alice"}

    def test_literal_mismatch(self):
        pattern = TriplePattern(Var("s"), Literal("name"), Literal("Bob"))
        assert match_pattern(pattern, Triple("a1", "name", "Alice")) is None

    def test_repeated_variable_must_agree(self):
        pattern = TriplePattern(Var("x"), Literal("self"), Var("x"))
        assert match_pattern(pattern, Triple("a", "self", "a")) == {"x": "a"}
        assert match_pattern(pattern, Triple("a", "self", "b")) is None


class TestPlanBuilder:
    def test_canonical_shape(self):
        plan = build_plan(parse("SELECT ?n WHERE {(?a,'name',?n)} LIMIT 3"))
        assert isinstance(plan, Projection)
        assert isinstance(plan.child, Limit)

    def test_order_by_limit_becomes_topn_after_rewrite(self):
        plan = rewrite(build_plan(parse("SELECT ?n WHERE {(?a,'name',?n)} ORDER BY ?n LIMIT 3")))
        assert any(isinstance(node, TopN) for node in plan.walk())

    def test_skyline_node(self):
        plan = build_plan(parse("SELECT ?a WHERE {(?x,'a',?a)} ORDER BY SKYLINE OF ?a MIN"))
        assert any(isinstance(node, Skyline) for node in plan.walk())

    def test_union_node(self):
        plan = build_plan(parse("SELECT ?x WHERE {(?x,'a',1)} UNION {(?x,'b',2)}"))
        assert any(isinstance(node, Union) for node in plan.walk())

    def test_unknown_select_variable_rejected(self):
        with pytest.raises(PlanningError):
            build_plan(parse("SELECT ?ghost WHERE {(?x,'a',1)}"))

    def test_unknown_order_variable_rejected(self):
        with pytest.raises(PlanningError):
            build_plan(parse("SELECT ?x WHERE {(?x,'a',?v)} ORDER BY ?ghost"))

    def test_pattern_ordering_prefers_bound(self):
        patterns = [
            TriplePattern(Var("a"), Var("p"), Var("o")),
            TriplePattern(Var("a"), Literal("name"), Literal("Alice")),
            TriplePattern(Var("a"), Literal("age"), Var("x")),
        ]
        ordered = order_patterns(patterns)
        assert ordered[0].object == Literal("Alice")

    def test_pattern_ordering_stays_connected(self):
        patterns = [
            TriplePattern(Var("a"), Literal("name"), Literal("Alice")),
            TriplePattern(Var("b"), Literal("title"), Var("t")),
            TriplePattern(Var("a"), Literal("wrote"), Var("t")),
        ]
        ordered = order_patterns(patterns)
        # The middle pattern must not create a cartesian product.
        seen = ordered[0].variables()
        for pattern in ordered[1:]:
            assert pattern.variables() & seen
            seen |= pattern.variables()


class TestRewrites:
    def test_filter_pushdown_into_scan(self):
        plan = rewrite(build_plan(parse("SELECT ?n WHERE {(?a,'name',?n) FILTER ?n != 'Bob'}")))
        scans = [n for n in plan.walk() if isinstance(n, PatternScan)]
        assert scans[0].filters, "filter should sit inside the scan"
        assert not any(isinstance(n, Selection) for n in plan.walk())

    def test_cross_pattern_filter_stays_above_join(self):
        plan = rewrite(build_plan(parse(
            "SELECT ?x WHERE {(?a,'x',?x) (?b,'y',?y) FILTER ?x = ?y}"
        )))
        assert any(isinstance(n, Selection) for n in plan.walk())

    def test_conjunction_splits(self):
        base = build_plan(parse(
            "SELECT ?n WHERE {(?a,'name',?n) FILTER ?n != 'x' AND ?n != 'y'}"
        ))
        split = split_conjunctions(base)
        selections = [n for n in split.walk() if isinstance(n, Selection)]
        assert len(selections) == 2

    def test_similarity_join_detection(self):
        plan = rewrite(build_plan(parse(
            "SELECT ?x WHERE {(?a,'name',?x) (?b,'alias',?y) FILTER edist(?x,?y) < 2}"
        )))
        sim = [n for n in plan.walk() if isinstance(n, SimilarityJoin)]
        assert len(sim) == 1
        assert sim[0].max_distance == 1  # strict < 2 becomes inclusive <= 1

    def test_edist_against_constant_not_a_simjoin(self):
        plan = rewrite(build_plan(parse(
            "SELECT ?x WHERE {(?a,'name',?x) (?a,'age',?y) FILTER edist(?x,'Bob') < 2}"
        )))
        assert not any(isinstance(n, SimilarityJoin) for n in plan.walk())


class TestReferenceExecutor:
    def test_scan_and_join(self):
        plan = build_plan(parse(
            "SELECT ?n, ?c WHERE {(?a,'name',?n) (?a,'city',?c)}"
        ))
        rows = execute_reference(plan, TRIPLES)
        assert sorted((r["n"], r["c"]) for r in rows) == [
            ("Alice", "Berlin"),
            ("Bob", "Basel"),
        ]

    def test_filter(self):
        plan = build_plan(parse(
            "SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g > 28}"
        ))
        rows = execute_reference(plan, TRIPLES)
        assert sorted(r["n"] for r in rows) == ["Alice", "Cara"]

    def test_order_and_limit(self):
        plan = build_plan(parse(
            "SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g)} ORDER BY ?g DESC LIMIT 2"
        ))
        rows = execute_reference(plan, TRIPLES)
        assert [r["n"] for r in rows] == ["Cara", "Alice"]

    def test_union(self):
        plan = build_plan(parse(
            "SELECT ?n WHERE {(?a,'name',?n) FILTER ?n = 'Bob'} "
            "UNION {(?a,'name',?n) FILTER ?n = 'Cara'}"
        ))
        rows = execute_reference(plan, TRIPLES)
        assert sorted(r["n"] for r in rows) == ["Bob", "Cara"]

    def test_distinct(self):
        triples = TRIPLES + [Triple("a9", "name", "Alice")]
        plan = build_plan(parse("SELECT DISTINCT ?n WHERE {(?a,'name',?n)}"))
        rows = execute_reference(plan, triples)
        names = [r["n"] for r in rows]
        assert sorted(names) == ["Alice", "Bob", "Cara"]

    def test_optional(self):
        # Cara (a3) has a name but no city in TRIPLES.
        plan = build_plan(parse(
            "SELECT ?n, ?c WHERE {(?a,'name',?n) OPTIONAL {(?a,'city',?c)}}"
        ))
        rows = execute_reference(plan, TRIPLES)
        by_name = {r["n"]: r.get("c") for r in rows}
        assert by_name["Alice"] == "Berlin"
        assert by_name["Cara"] is None

    def test_intersection_and_difference(self):
        left = PatternScan(TriplePattern(Var("a"), Literal("name"), Var("n")))
        right = PatternScan(TriplePattern(Var("a"), Literal("city"), Var("c")))
        inter = execute_reference(Intersection((left, right)), TRIPLES)
        assert sorted(r["a"] for r in inter) == ["a1", "a2"]
        diff = execute_reference(Difference(left, right), TRIPLES)
        assert sorted(r["a"] for r in diff) == ["a3"]

    def test_skyline(self):
        plan = build_plan(parse(
            "SELECT ?n, ?g WHERE {(?a,'name',?n) (?a,'age',?g)} "
            "ORDER BY SKYLINE OF ?g MIN"
        ))
        rows = execute_reference(plan, TRIPLES)
        assert [r["n"] for r in rows] == ["Bob"]  # unique minimum


class TestSkylineSemantics:
    def test_dominance(self):
        items = (SkylineItem(Var("x"), maximize=False), SkylineItem(Var("y"), maximize=True))
        assert dominates((1, 9), (2, 8), items)
        assert not dominates((1, 7), (2, 8), items)
        assert not dominates((1, 9), (1, 9), items)  # equal: no strict gain

    @given(
        st.lists(
            st.tuples(st.integers(0, 10), st.integers(0, 10)), min_size=0, max_size=30
        )
    )
    @settings(max_examples=100)
    def test_skyline_is_exactly_nondominated_set(self, points):
        items = (SkylineItem(Var("x"), maximize=False), SkylineItem(Var("y"), maximize=True))
        bindings = [{"x": x, "y": y} for x, y in points]
        result = skyline_of(bindings, items)
        result_points = [(r["x"], r["y"]) for r in result]
        # 1. nothing in the result is dominated by any input point
        for rp in result_points:
            assert not any(dominates((px, py), rp, items) for px, py in points)
        # 2. every non-dominated input point appears
        for p in points:
            if not any(dominates(q, p, items) for q in points):
                assert p in result_points

    def test_bindings_missing_dimensions_excluded(self):
        items = (SkylineItem(Var("x"), maximize=False),)
        rows = skyline_of([{"x": 1}, {"y": 2}, {"x": "oops"}], items)
        assert rows == [{"x": 1}]


class TestOrderSortKey:
    def test_mixed_types_sort_stably(self):
        rows = [{"v": "b"}, {"v": 2}, {"v": None}, {"v": "a"}, {"v": 1}]
        ordered = sorted(rows, key=order_sort_key((OrderItem(Var("v")),)))
        assert [r["v"] for r in ordered] == [1, 2, "a", "b", None]

    def test_descending_strings(self):
        rows = [{"v": "a"}, {"v": "c"}, {"v": "b"}]
        ordered = sorted(
            rows, key=order_sort_key((OrderItem(Var("v"), descending=True),))
        )
        assert [r["v"] for r in ordered] == ["c", "b", "a"]


def parse_filter(text: str):
    """Parse a bare filter expression via a scaffold query."""
    query = parse(f"SELECT ?x WHERE {{(?x,'a',?v) FILTER {text}}}")
    return query.groups[0].filters[0]
