"""Building a P-Grid overlay.

Two construction paths, mirroring how the real system is deployed vs. how it
is specified:

* :func:`build_network` — the **oracle builder** used by benchmarks: given a
  peer count (and optionally a sample of data keys), it lays out a complete
  trie partition, assigns peers (with replication), wires routing tables by
  sampling references from complementary subtrees, and bulk-loads data.  With
  ``split_by="data"`` the trie is split where the data is dense — the steady
  state P-Grid's load balancing (paper ref. [2]) converges to; with
  ``split_by="population"`` the trie is balanced by peer count regardless of
  skew, which is the strawman E3 compares against.

* :func:`bootstrap_exchange` — the **decentralized protocol** (paper ref.
  [1]): peers start with an empty path and refine the trie through random
  pairwise encounters, splitting paths and exchanging references/data without
  any global knowledge.  Used by tests to show the trie emerges correctly;
  too slow for thousand-peer benchmark setup.
"""

from __future__ import annotations

import heapq
import random
from bisect import bisect_left, bisect_right

from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.pgrid.keys import common_prefix_length, flip, increment_path, responsible
from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer

#: Trie depth cap for the oracle builder; deep enough for any realistic
#: partition (2^48 leaves) while bounding pathological splits of equal keys.
MAX_DEPTH = 48


# ---------------------------------------------------------------------------
# Trie layout
# ---------------------------------------------------------------------------


def balanced_paths(num_groups: int) -> list[str]:
    """A complete partition with ``num_groups`` leaves, balanced by count.

    Builds the full trie of depth ``floor(log2 n)`` and splits leaves
    left-to-right until the leaf count is exact, so any group count (not
    just powers of two) yields a valid partition.
    """
    if num_groups < 1:
        raise ValueError("need at least one group")
    paths = [""]
    while len(paths) < num_groups:
        # Split the shallowest, leftmost leaf — keeps the trie near-balanced.
        paths.sort(key=lambda p: (len(p), p))
        victim = paths.pop(0)
        paths.extend([victim + "0", victim + "1"])
    return sorted(paths)


def data_split_paths(keys: list[str], num_groups: int, max_depth: int = MAX_DEPTH) -> list[str]:
    """A complete partition with ``num_groups`` leaves, split where data is dense.

    Greedy: repeatedly split the leaf holding the most keys.  This is the
    partition P-Grid's storage-threshold load balancing converges to, so the
    oracle builder can start networks in the balanced steady state.
    """
    if num_groups < 1:
        raise ValueError("need at least one group")
    if not keys:
        return balanced_paths(num_groups)
    # Heap of (-count, depth, path, keys); ties broken towards shallow paths.
    heap: list[tuple[int, int, str, list[str]]] = [(-len(keys), 0, "", list(keys))]
    leaves: list[str] = []
    while heap and len(heap) + len(leaves) < num_groups:
        neg_count, depth, path, bucket = heapq.heappop(heap)
        if depth >= max_depth or neg_count == 0:
            leaves.append(path)  # cannot or need not split further
            continue
        zeros = [k for k in bucket if len(k) > depth and k[depth] == "0"]
        ones = [k for k in bucket if len(k) > depth and k[depth] == "1"]
        # Keys shorter than the split depth are points on the left edge.
        shorts = len(bucket) - len(zeros) - len(ones)
        heapq.heappush(heap, (-(len(zeros) + shorts), depth + 1, path + "0", zeros))
        heapq.heappush(heap, (-len(ones), depth + 1, path + "1", ones))
    leaves.extend(path for _, _, path, _ in heap)
    return sorted(leaves)


# ---------------------------------------------------------------------------
# Oracle builder
# ---------------------------------------------------------------------------


def wire_routing_tables(pnet: PGridNetwork, rng: random.Random | None = None) -> None:
    """(Re)build every peer's routing table by global sampling.

    For each peer and level, samples up to ``fanout`` peers whose paths carry
    the required complementary prefix.  Also rebuilds replica lists.  This is
    the steady state the decentralized exchange protocol converges to.
    """
    rng = rng or pnet.rng
    ordered = sorted(pnet.peers, key=lambda p: p.path)
    paths = [p.path for p in ordered]

    def peers_with_prefix(prefix: str) -> list[PGridPeer]:
        lo = bisect_left(paths, prefix)
        upper = increment_path(prefix)
        hi = bisect_left(paths, upper) if upper is not None else len(paths)
        # Peers whose path is a strict prefix of `prefix` also cover it.
        result = ordered[lo:hi]
        if not result:
            result = [p for p in ordered if prefix.startswith(p.path)]
        return result

    groups = pnet.leaf_groups()
    for peer in pnet.peers:
        peer.routing = type(peer.routing)(fanout=pnet.fanout)
        for level in range(len(peer.path)):
            prefix = peer.required_prefix(level)
            candidates = [p for p in peers_with_prefix(prefix) if p is not peer]
            if not candidates:
                continue
            sample = rng.sample(candidates, min(pnet.fanout, len(candidates)))
            for ref in sample:
                peer.routing.add(level, ref.node_id)
        peer.replicas = [p.node_id for p in groups.get(peer.path, []) if p is not peer]


def build_network(
    num_peers: int,
    data_keys: list[str] | None = None,
    *,
    latency_model: LatencyModel | None = None,
    seed: int = 0,
    fanout: int = 4,
    replication: int = 1,
    split_by: str = "data",
    max_depth: int = MAX_DEPTH,
) -> PGridNetwork:
    """Build a ready-to-use overlay of ``num_peers`` peers.

    ``replication`` is the *target* replica-group size; the trie gets
    ``num_peers // replication`` leaves and surplus peers thicken groups
    round-robin.  ``data_keys`` (if given with ``split_by="data"``) shapes
    the trie to the data distribution; the keys themselves are *not* loaded —
    callers insert entries afterwards (bulk or routed).
    """
    if num_peers < 1:
        raise ValueError("need at least one peer")
    if replication < 1:
        raise ValueError("replication must be >= 1")
    if split_by not in ("data", "population"):
        raise ValueError(f"split_by must be 'data' or 'population', got {split_by!r}")

    net = Network(latency_model=latency_model, seed=seed)
    pnet = PGridNetwork(net, fanout=fanout, seed=seed)
    num_groups = max(1, num_peers // replication)
    if split_by == "data" and data_keys:
        paths = data_split_paths(data_keys, num_groups, max_depth=max_depth)
    else:
        paths = balanced_paths(num_groups)

    rng = random.Random(seed ^ 0xB007)
    order = list(range(num_peers))
    rng.shuffle(order)
    for index, peer_number in enumerate(order):
        path = paths[index % len(paths)]
        pnet.add_peer(f"peer-{peer_number:04d}", path=path)

    wire_routing_tables(pnet, rng)
    return pnet


def bulk_load(pnet: PGridNetwork, items: list[tuple[str, str, object]]) -> None:
    """Oracle data placement: store each ``(key, item_id, value)`` on every
    replica of its responsible group, without routing messages.

    Benchmark setup uses this so that measured traffic reflects queries only.
    """
    groups = sorted(pnet.leaf_groups().items())
    group_paths = [path for path, _ in groups]

    def group_for(key: str) -> list[PGridPeer]:
        index = bisect_right(group_paths, key) - 1
        if index >= 0 and responsible(group_paths[index], key):
            return groups[index][1]
        # Fall back to the (rare) zero-padding edge case.
        for path, peers in groups:
            if responsible(path, key):
                return peers
        raise LookupError(f"no group responsible for key {key[:24]!r}")

    from repro.pgrid.datastore import Entry

    for key, item_id, value in items:
        version = pnet.next_version()
        entry = Entry(key=key, item_id=item_id, value=value, version=version)
        for peer in group_for(key):
            peer.store.put(entry)


# ---------------------------------------------------------------------------
# Decentralized bootstrap (paper ref. [1])
# ---------------------------------------------------------------------------


def exchange(
    p: PGridPeer, q: PGridPeer, capacity: int, max_depth: int = 16, _depth: int = 0
) -> None:
    """One pairwise P-Grid exchange between peers ``p`` and ``q``.

    Implements the three cases of Aberer's construction algorithm:

    1. equal paths → split (if combined load exceeds ``capacity``) or become
       replicas and synchronise data;
    2. one path a prefix of the other → the shorter peer specializes into
       the complementary subtree, both learn references;
    3. diverging paths → exchange references at the divergence level and
       recursively continue with a reference from the other's table.
    """
    cpl = common_prefix_length(p.path, q.path)

    if p.path == q.path:
        combined = p.load + q.load
        if combined > capacity and len(p.path) < max_depth:
            _split_pair(p, q)
        else:
            _sync_replicas(p, q)
        return

    if cpl == min(len(p.path), len(q.path)):
        shorter, longer = (p, q) if len(p.path) < len(q.path) else (q, p)
        level = len(shorter.path)
        # The shorter peer covers the longer one's whole subtree; it keeps
        # its data for the complementary side and specializes there.
        shorter.set_path(shorter.path + flip(longer.path[level]))
        shorter.routing.add(level, longer.node_id)
        longer.routing.add(level, shorter.node_id)
        _shed_misplaced(shorter, longer)
        _shed_misplaced(longer, shorter)
        return

    # Diverging paths: mutual references at the divergence level.
    p.routing.add(cpl, q.node_id)
    q.routing.add(cpl, p.node_id)
    _shed_misplaced(p, q)
    _shed_misplaced(q, p)
    if _depth < 2:
        # Continue construction deeper, as the protocol prescribes: each peer
        # meets a reference of the other from the divergence level.
        for a, b in ((p, q), (q, p)):
            refs = b.valid_refs(cpl) if cpl < len(b.path) else []
            candidates = [r for r in refs if r != a.node_id]
            if candidates:
                partner = a.network.nodes[candidates[0]]
                if isinstance(partner, PGridPeer) and partner.online:
                    a.network.send(a.node_id, partner.node_id, "exchange", 1)
                    exchange(a, partner, capacity, max_depth, _depth + 1)


def _split_pair(p: PGridPeer, q: PGridPeer) -> None:
    """Equal-path peers split: p takes '0', q takes '1', exchanging data/refs."""
    base = p.path
    level = len(base)
    p.set_path(base + "0")
    q.set_path(base + "1")
    p.routing.add(level, q.node_id)
    q.routing.add(level, p.node_id)
    # They are no longer replicas of each other.
    p.remove_replica(q.node_id)
    q.remove_replica(p.node_id)
    # Swap the halves that now belong to the other side.
    p_keep, p_give = p.store.partition(p.path)
    q_give, q_keep = q.store.partition(p.path)
    p.store.clear()
    q.store.clear()
    for entry in p_keep + q_give:
        p.store.put(entry)
    for entry in q_keep + p_give:
        q.store.put(entry)
    if p_give or q_give:
        p.network.send(p.node_id, q.node_id, "exchange", max(1, len(p_give)))
        q.network.send(q.node_id, p.node_id, "exchange", max(1, len(q_give)))


def _sync_replicas(p: PGridPeer, q: PGridPeer) -> None:
    """Equal-path peers below capacity become replicas and synchronise."""
    p.add_replica(q.node_id)
    q.add_replica(p.node_id)
    transferred = 0
    for entry in list(p.store):
        transferred += q.store.put(entry)
    for entry in list(q.store):
        transferred += p.store.put(entry)
    p.adopt_refs(q)
    q.adopt_refs(p)
    if transferred:
        p.network.send(p.node_id, q.node_id, "exchange", transferred)


def _shed_misplaced(giver: PGridPeer, taker: PGridPeer) -> None:
    """Move entries that ``giver`` no longer covers but ``taker`` does."""
    moved: list = []
    for entry in list(giver.store):
        if not responsible(giver.path, entry.key) and responsible(taker.path, entry.key):
            moved.append(entry)
    if not moved:
        return
    for entry in moved:
        giver.store.delete(entry.key, entry.item_id)
        taker.store.put(entry)
    giver.network.send(giver.node_id, taker.node_id, "exchange", len(moved))


def bootstrap_exchange(
    pnet: PGridNetwork,
    rounds: int,
    capacity: int = 8,
    rng: random.Random | None = None,
    max_depth: int = 16,
) -> None:
    """Run ``rounds`` of random pairwise encounters over the whole overlay.

    Each round pairs the online peers randomly and runs one exchange per
    pair.  With enough rounds the path set converges to a complete partition
    and every peer's load approaches ``capacity``.
    """
    rng = rng or pnet.rng
    for _round in range(rounds):
        peers = pnet.online_peers()
        rng.shuffle(peers)
        for left, right in zip(peers[0::2], peers[1::2]):
            left.network.send(left.node_id, right.node_id, "exchange", 1)
            exchange(left, right, capacity, max_depth=max_depth)
