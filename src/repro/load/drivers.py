"""Concurrent workload drivers: many in-flight operations, one shared clock.

The data operations on :class:`~repro.pgrid.network.PGridNetwork` drain the
event heap before returning, so back-to-back calls compose *sequentially* in
simulated time.  To study load they must overlap: a driver schedules every
operation's launch as a simulator event and only drains once, so hundreds of
routed lookups/inserts are in flight together, contending for the same peer
queues.

Two arrival processes:

* :class:`OpenLoopDriver` — Poisson arrivals at a fixed *offered* rate over a
  horizon (open loop: arrivals do not wait for completions, so a saturated
  peer builds a real backlog — the latency knee of benchmark E12);
* :class:`ClosedLoopDriver` — a population of clients that each issue, wait
  for the answer, think, and repeat (closed loop: load self-limits, the
  classic interactive-user model).

Operations route as they launch (hop discovery uses the overlay state *at
launch time*), pick keys Zipf-skewed so popular keys create hot regions, and
optionally spread reads over replica groups
(:func:`~repro.load.diffusion.diffuse_route`).  Churn composes: a
:class:`~repro.net.churn.ChurnModel` session trace can be replayed on the
same simulator (``run(churn_trace=...)``), and every hop re-validates
liveness at delivery time — an operation that lands on a peer that died
mid-flight re-routes from its previous hop (bounded retries), so no
in-flight operation is ever silently lost: every :class:`OpRecord` ends
completed or failed, deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.bench.harness import mean, percentile
from repro.bench.workloads import poisson_arrivals, zipf_cumulative, zipf_rank
from repro.errors import RoutingError
from repro.load.diffusion import diffuse_route, pick_member
from repro.net.churn import ChurnEvent, ChurnModel
from repro.pgrid.datastore import Entry
from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer
from repro.pgrid.routing import point_key, route_hops

#: A flapping overlay could re-route an operation forever; bound it.
MAX_REROUTES = 8

#: Retry budget after admission-control rejects: a rejected operation tries
#: other replica-group members (then fails *reported*, never silently).
MAX_REJECT_RETRIES = 5


@dataclass
class OpRecord:
    """One driven operation, from issue to completion (or failure)."""

    index: int
    kind: str  # "lookup" | "insert"
    key: str
    issued: float
    completed: float | None = None
    ok: bool = False
    entries: int = 0
    reroutes: int = 0
    rejections: int = 0
    rejected_by: list[str] = field(default_factory=list)
    error: str | None = None

    @property
    def latency(self) -> float:
        """Issue-to-completion time (the client-observed answer time)."""
        if self.completed is None:
            raise ValueError(f"operation #{self.index} never completed")
        return self.completed - self.issued


def completed_latencies(records: list[OpRecord]) -> list[float]:
    """Latencies of the successfully completed operations."""
    return [r.latency for r in records if r.ok]


def summarize(records: list[OpRecord]) -> dict:
    """Mean/median/p95/p99/max latency plus completion and shed counts."""
    latencies = completed_latencies(records)
    return {
        "ops": len(records),
        "ok": sum(1 for r in records if r.ok),
        "failed": sum(1 for r in records if r.completed is not None and not r.ok),
        "rejections": sum(r.rejections for r in records),
        "mean": mean(latencies),
        "p50": percentile(latencies, 50.0),
        "p95": percentile(latencies, 95.0),
        "p99": percentile(latencies, 99.0),
        "max": max(latencies, default=0.0),
    }


def goodput(records: list[OpRecord], slo: float, horizon: float) -> float:
    """Useful throughput: completed-in-time operations per second.

    Only operations that succeeded *and* answered within ``slo`` seconds
    count — the currency of benchmark E12d, where shedding trades a few
    reported failures for keeping the admitted work fast.
    """
    if slo <= 0 or horizon <= 0:
        raise ValueError("slo and horizon must be > 0")
    good = sum(1 for r in records if r.ok and r.latency <= slo)
    return good / horizon


class _OpEngine:
    """Shared launch/hop/arrive machinery behind both drivers."""

    def __init__(
        self,
        pnet: PGridNetwork,
        rng: random.Random,
        diffusion: str = "none",
        op_kind: str = "lookup",
        reply_kind: str = "result",
    ):
        if pnet.scheduler is None:
            raise ValueError("drivers need event-driven execution: use pnet.event_driven()")
        self.pnet = pnet
        self.scheduler = pnet.scheduler
        self.rng = rng
        self.diffusion = diffusion
        self.op_kind = op_kind
        self.reply_kind = reply_kind
        self.records: list[OpRecord] = []

    # -- lifecycle -----------------------------------------------------------

    def launch(self, record: OpRecord, start: PGridPeer, on_done=None) -> None:
        """Start one operation now; ``on_done(record)`` fires at completion."""
        self.records.append(record)
        self._route_leg(record, start, start, self.scheduler.now, on_done)

    def _finish(self, record: OpRecord, time: float, ok: bool, error: str | None, on_done) -> None:
        record.completed = time
        record.ok = ok
        record.error = error
        if on_done is not None:
            on_done(record)

    # -- routing legs --------------------------------------------------------

    def _route_leg(
        self,
        record: OpRecord,
        current: PGridPeer,
        origin: PGridPeer,
        time: float,
        on_done,
    ) -> None:
        """Discover (and maybe diffuse) a route from ``current``, then walk it."""
        try:
            destination, hops = route_hops(current, point_key(record.key), rng=self.rng)
        except RoutingError as error:
            # The partial hops were travelled before the dead end; account
            # them as an untracked chain so message totals stay honest.
            self._account_partial(getattr(error, "hops", []), time)
            self._finish(record, time, ok=False, error=str(error), on_done=on_done)
            return
        if record.kind == "lookup":
            destination, hops = diffuse_route(
                destination,
                hops,
                policy=self.diffusion,
                rng=self.rng,
                load=self.scheduler.load,
                now=time,
                hints=self.pnet.net.hints,
                observer=origin.node_id,
            )
        self._walk(record, destination, hops, 0, origin, time, on_done)

    def _account_partial(self, hops: list[tuple[str, str]], time: float) -> None:
        """Replay the hops of a failed route, liveness-checked per hop.

        Unlike ``scheduler.chain`` this stops (instead of raising inside the
        simulator) when churn kills a hop's destination before the message
        reaches it, so one dead-end route can never crash the whole run.
        """

        def step(index: int, at: float) -> None:
            if index == len(hops):
                return
            src_id, dst_id = hops[index]
            dst = self.pnet.net.nodes.get(dst_id)
            if dst is None or not dst.online:
                return
            self.scheduler.send_at(
                at, src_id, dst_id, self.op_kind, 1, on_delivered=lambda t: step(index + 1, t)
            )

        step(0, time)

    def _walk(
        self,
        record: OpRecord,
        destination: PGridPeer,
        hops: list[tuple[str, str]],
        index: int,
        origin: PGridPeer,
        time: float,
        on_done,
    ) -> None:
        """Traverse one hop, re-validating liveness at every delivery."""
        if index == len(hops):
            self._arrive(record, destination, origin, time, on_done)
            return
        src_id, dst_id = hops[index]
        dst = self.pnet.net.nodes.get(dst_id)
        if dst is None or not dst.online or not isinstance(dst, PGridPeer):
            self._reroute(record, src_id, origin, time, on_done)
            return

        def delivered(at: float) -> None:
            if not dst.online:
                # The peer died while the message was in flight or queued;
                # its drained work is redone from the previous hop.
                self._reroute(record, src_id, origin, at, on_done)
                return
            self._walk(record, destination, hops, index + 1, origin, at, on_done)

        def rejected(at: float) -> None:
            self._rejected(record, src_id, dst_id, destination, hops, index, origin, at, on_done)

        self.scheduler.send_at(
            time, src_id, dst_id, self.op_kind, 1, on_delivered=delivered, on_rejected=rejected
        )

    def _rejected(
        self,
        record: OpRecord,
        src_id: str,
        dst_id: str,
        destination: PGridPeer,
        hops: list[tuple[str, str]],
        index: int,
        origin: PGridPeer,
        time: float,
        on_done,
    ) -> None:
        """The peer at ``dst_id`` shed this operation's hop; retry elsewhere.

        A reject at the *final* hop retries another member of the responsible
        replica group (every member holds the data); a reject at a transit
        hop re-routes from the last live peer, where hint-aware reference
        choice steers the new route around the saturated peer.  Both paths
        are bounded by :data:`MAX_REJECT_RETRIES`; exhausting the budget
        fails the operation *reported* (``error="rejected"``), never
        silently.
        """
        record.rejections += 1
        record.rejected_by.append(dst_id)
        if record.rejections > MAX_REJECT_RETRIES:
            self._finish(
                record, time, ok=False, error="rejected: retry budget exhausted", on_done=on_done
            )
            return
        src = self.pnet.net.nodes.get(src_id)
        if src is None or not src.online:
            self._reroute(record, src_id, origin, time, on_done)
            return
        final_hop = index == len(hops) - 1 and dst_id == destination.node_id
        if final_hop and record.kind == "lookup":
            alternative = self._alternative_member(record, destination, src_id)
            if alternative is not None:
                self._walk(
                    record,
                    alternative,
                    [(src_id, alternative.node_id)],
                    0,
                    origin,
                    time,
                    on_done,
                )
                return
            self._finish(
                record, time, ok=False, error="rejected: no replica admitted", on_done=on_done
            )
            return
        # Transit-hop reject (or a shed write): route again from the sender.
        self._route_leg(record, src, origin, time, on_done)

    def _alternative_member(
        self, record: OpRecord, destination: PGridPeer, chooser_id: str
    ) -> PGridPeer | None:
        """An untried replica-group member to retry a shed read at.

        The chooser is the peer that received the reject NACK and sends the
        retry hop; its hint table is ranked when a registry is attached (the
        NACK itself just delivered the rejector's depth to it, and on the
        common cache-hit direct route the chooser *is* the reply-fed
        gateway).  The oracle ranks under the ``least-busy-oracle``
        diffusion policy; otherwise the pick is uniform.
        """
        from repro.pgrid.replication import online_group  # deferred: pgrid imports load

        members = [p for p in online_group(destination) if p.node_id not in record.rejected_by]
        if not members:
            return None
        hints = self.pnet.net.hints
        if self.diffusion == "least-busy-oracle":
            policy = "least-busy-oracle"
        elif hints is not None:
            policy = "least-busy"
        else:
            policy = "random"
        return pick_member(
            members,
            policy,
            rng=self.rng,
            load=self.scheduler.load,
            now=self.scheduler.now,
            hints=hints,
            observer=chooser_id,
        )

    def _reroute(self, record: OpRecord, from_id: str, origin: PGridPeer, time, on_done) -> None:
        """Re-route after a mid-flight failure, from the last live hop."""
        record.reroutes += 1
        if record.reroutes > MAX_REROUTES:
            self._finish(record, time, ok=False, error="too many reroutes", on_done=on_done)
            return
        peer = self.pnet.net.nodes.get(from_id)
        if peer is None or not peer.online or not isinstance(peer, PGridPeer):
            peer = origin if origin.online else None
        if peer is None:
            self._finish(record, time, ok=False, error="initiator offline", on_done=on_done)
            return
        self._route_leg(record, peer, origin, time, on_done)

    # -- destination work ----------------------------------------------------

    def _arrive(
        self, record: OpRecord, destination: PGridPeer, origin: PGridPeer, time: float, on_done
    ) -> None:
        if record.kind == "insert":
            self._apply_insert(record, destination, time, on_done)
            return
        entries = destination.store.get(record.key)
        record.entries = len(entries)
        if destination is origin:
            self._finish(record, time, ok=True, error=None, on_done=on_done)
            return
        if not origin.online:
            self._finish(record, time, ok=False, error="initiator offline", on_done=on_done)
            return

        def replied(at: float) -> None:
            self._finish(record, at, ok=True, error=None, on_done=on_done)

        self.scheduler.send_at(
            time,
            destination.node_id,
            origin.node_id,
            self.reply_kind,
            max(1, len(entries)),
            on_delivered=replied,
        )

    def _apply_insert(self, record: OpRecord, destination: PGridPeer, time, on_done) -> None:
        entry = Entry(
            key=record.key,
            item_id=f"drv-{record.index}",
            value=f"v{record.index}",
            version=self.pnet.next_version(),
        )
        destination.store.put(entry)
        replica_ids = destination.online_replicas()
        pending = len(replica_ids)
        if not pending:
            self._finish(record, time, ok=True, error=None, on_done=on_done)
            return
        latest = [time]

        def pushed(at: float) -> None:
            nonlocal pending
            pending -= 1
            latest[0] = max(latest[0], at)
            if pending == 0:
                self._finish(record, latest[0], ok=True, error=None, on_done=on_done)

        for replica_id in replica_ids:
            replica = self.pnet.net.nodes[replica_id]
            replica.store.put(entry)
            self.scheduler.send_at(
                time, destination.node_id, replica_id, self.op_kind, 1, on_delivered=pushed
            )


class _DriverBase:
    """Common setup: key sampling, gateway choice, churn replay."""

    def __init__(
        self,
        pnet: PGridNetwork,
        keys: list[str],
        key_skew: float = 0.0,
        insert_fraction: float = 0.0,
        gateways: list[PGridPeer] | None = None,
        diffusion: str = "none",
        seed: int = 0,
    ):
        if not keys:
            raise ValueError("need at least one key to drive")
        if not 0.0 <= insert_fraction <= 1.0:
            raise ValueError("insert_fraction must be in [0, 1]")
        self.pnet = pnet
        self.keys = list(keys)
        self.key_skew = key_skew
        self.insert_fraction = insert_fraction
        self.gateways = list(gateways) if gateways else None
        self.diffusion = diffusion
        self.rng = random.Random(seed)
        self._key_cumulative = zipf_cumulative(len(self.keys), key_skew)

    def _pick_key(self) -> str:
        return self.keys[zipf_rank(self._key_cumulative, self.rng.random())]

    def _pick_kind(self) -> str:
        if self.insert_fraction and self.rng.random() < self.insert_fraction:
            return "insert"
        return "lookup"

    def _pick_gateway(self) -> PGridPeer:
        if self.gateways:
            candidates = [p for p in self.gateways if p.online]
            if candidates:
                return self.rng.choice(candidates)
        return self.pnet.random_online_peer(self.rng)

    def _engine(self) -> _OpEngine:
        return _OpEngine(self.pnet, self.rng, diffusion=self.diffusion)

    def _apply_churn(self, engine: _OpEngine, churn_trace: list[ChurnEvent] | None) -> None:
        """Replay a churn session trace on the driver's shared simulator.

        Event times are relative to the run start (the scheduler clock is
        monotone across operations, so they are shifted onto it).
        """
        if not churn_trace:
            return
        offset = engine.scheduler.now
        shifted = [replace(event, time=event.time + offset) for event in churn_trace]
        ChurnModel(list(self.pnet.peers), seed=0).apply_trace(engine.scheduler.sim, shifted)


class OpenLoopDriver(_DriverBase):
    """Poisson arrivals at ``rate`` ops/s for ``horizon`` simulated seconds.

    Open loop: the arrival process never waits, so offered load is exact and
    overload shows up as queueing delay (and, past saturation, as a backlog
    that keeps draining after the last arrival).
    """

    def __init__(
        self,
        pnet: PGridNetwork,
        keys: list[str],
        rate: float,
        horizon: float,
        **kwargs,
    ):
        super().__init__(pnet, keys, **kwargs)
        if rate <= 0 or horizon <= 0:
            raise ValueError("rate and horizon must be > 0")
        self.rate = rate
        self.horizon = horizon

    def run(self, churn_trace: list[ChurnEvent] | None = None) -> list[OpRecord]:
        engine = self._engine()
        scheduler = engine.scheduler
        self._apply_churn(engine, churn_trace)
        start_time = scheduler.now
        for index, offset in enumerate(poisson_arrivals(self.rng, self.rate, self.horizon)):
            t = start_time + offset
            record = OpRecord(index=index, kind=self._pick_kind(), key=self._pick_key(), issued=t)

            def fire(record: OpRecord = record) -> None:
                engine.launch(record, self._pick_gateway())

            scheduler.sim.schedule_at(t, fire)
        scheduler.run()
        return engine.records


class ClosedLoopDriver(_DriverBase):
    """``clients`` users issuing ``ops_per_client`` ops with think time.

    Closed loop: each client waits for its answer (plus ``think_time``)
    before issuing again, so in-flight operations are bounded by the client
    population and load self-limits near saturation.
    """

    def __init__(
        self,
        pnet: PGridNetwork,
        keys: list[str],
        clients: int = 8,
        ops_per_client: int = 10,
        think_time: float = 0.0,
        **kwargs,
    ):
        super().__init__(pnet, keys, **kwargs)
        if clients < 1 or ops_per_client < 1:
            raise ValueError("need at least one client and one op per client")
        if think_time < 0:
            raise ValueError("think time must be >= 0")
        self.clients = clients
        self.ops_per_client = ops_per_client
        self.think_time = think_time

    def run(self, churn_trace: list[ChurnEvent] | None = None) -> list[OpRecord]:
        engine = self._engine()
        scheduler = engine.scheduler
        self._apply_churn(engine, churn_trace)
        counter = [0]

        def issue(remaining: int) -> None:
            record = OpRecord(
                index=counter[0],
                kind=self._pick_kind(),
                key=self._pick_key(),
                issued=scheduler.now,
            )
            counter[0] += 1

            def done(_record: OpRecord) -> None:
                if remaining > 1:
                    scheduler.sim.schedule(self.think_time, lambda: issue(remaining - 1))

            engine.launch(record, self._pick_gateway(), on_done=done)

        start_time = scheduler.now
        for _client in range(self.clients):
            # Stagger client starts slightly so launch order is not degenerate.
            scheduler.sim.schedule_at(
                start_time + self.rng.uniform(0.0, 1e-3),
                lambda: issue(self.ops_per_client),
            )
        scheduler.run()
        return engine.records
