"""Randomized whole-overlay invariants (hypothesis-driven).

These complement the deterministic overlay tests with breadth: random
network sizes, replication factors, key populations and rebalance thresholds
must never violate the structural invariants the paper's guarantees rest on:

* the peers' paths always tile the key space (complete partition);
* every stored key is retrievable from any online peer;
* rebalancing moves data but never loses or duplicates identities;
* failing and recovering peers never corrupts the trie structure.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pgrid import (
    build_network,
    bulk_load,
    encode_string,
    load_imbalance,
    rebalance,
)

WORDS = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=8),
    min_size=1,
    max_size=40,
    unique=True,
)

SLOW = settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])


@given(
    num_peers=st.integers(2, 48),
    replication=st.integers(1, 4),
    words=WORDS,
    seed=st.integers(0, 10_000),
)
@SLOW
def test_every_key_retrievable_from_every_start(num_peers, replication, words, seed):
    replication = min(replication, num_peers)
    keys = [encode_string(w) for w in words]
    pnet = build_network(num_peers, data_keys=keys, replication=replication, seed=seed)
    assert pnet.is_complete()
    bulk_load(pnet, [(k, w, w) for k, w in zip(keys, words)])
    rng = random.Random(seed)
    for word, key in zip(words[:10], keys[:10]):
        start = rng.choice(pnet.peers)
        entries, trace = pnet.lookup(key, start=start)
        assert any(e.value == word for e in entries), (word, start.path)
        assert trace.hops <= 64


@given(
    num_peers=st.integers(4, 32),
    words=WORDS,
    capacity=st.integers(2, 20),
    seed=st.integers(0, 10_000),
)
@SLOW
def test_rebalance_preserves_structure_and_data(num_peers, words, capacity, seed):
    keys = [encode_string(w) for w in words]
    pnet = build_network(num_peers, replication=2, seed=seed, split_by="population")
    bulk_load(pnet, [(k, w, w) for k, w in zip(keys, words)])
    before = {(e.key, e.item_id) for e in pnet.all_entries()}
    rebalance(pnet, capacity=capacity)
    assert pnet.is_complete()
    assert {(e.key, e.item_id) for e in pnet.all_entries()} == before
    # Every peer only stores what its path covers.
    from repro.pgrid.keys import responsible

    for peer in pnet.peers:
        for entry in peer.store:
            assert responsible(peer.path, entry.key)


@given(
    num_peers=st.integers(6, 40),
    fail_count=st.integers(0, 5),
    seed=st.integers(0, 10_000),
)
@SLOW
def test_failures_never_corrupt_partition(num_peers, fail_count, seed):
    pnet = build_network(num_peers, replication=2, seed=seed, split_by="population")
    rng = random.Random(seed)
    victims = rng.sample(pnet.peers, min(fail_count, len(pnet.peers) // 2))
    for peer in victims:
        peer.fail()
    # Structure is a property of paths, not liveness.
    assert pnet.is_complete()
    for peer in victims:
        peer.recover()
    # After recovery everything routes again.
    key = encode_string("probe")
    entries, _trace = pnet.lookup(key)
    assert entries == []  # nothing stored, but routing must succeed


@given(words=WORDS, seed=st.integers(0, 10_000))
@SLOW
def test_imbalance_metrics_well_formed(words, seed):
    keys = [encode_string(w) for w in words]
    pnet = build_network(8, data_keys=keys, replication=1, seed=seed)
    bulk_load(pnet, [(k, w, w) for k, w in zip(keys, words)])
    metrics = load_imbalance(pnet)
    assert metrics["max"] >= metrics["mean"] >= 0
    assert 0.0 <= metrics["gini"] <= 1.0
    if metrics["mean"]:
        assert metrics["max_over_mean"] >= 1.0
