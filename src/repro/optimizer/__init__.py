"""Cost-based and adaptive query optimization (paper §2, ref. [5])."""

from repro.optimizer.adaptive import Step, choose_next_step
from repro.optimizer.cost_model import Cost, CostModel
from repro.optimizer.planner import Planned, Planner, PlannerConfig
from repro.optimizer.statistics import AttributeStats, CatalogStatistics

__all__ = [
    "CatalogStatistics",
    "AttributeStats",
    "Cost",
    "CostModel",
    "Planner",
    "PlannerConfig",
    "Planned",
    "Step",
    "choose_next_step",
]
