"""Mutant query plans: serialization, adaptive stepping, executor equivalence."""

import random

import pytest

from repro.algebra import build_plan, execute_reference, rewrite
from repro.algebra.operators import PatternScan
from repro.bench import ConferenceWorkload
from repro.mqp import MutantQueryPlan, execute_mutant_plan, expression_from_dict, expression_to_dict
from repro.optimizer import CatalogStatistics, CostModel, choose_next_step
from repro.pgrid import build_network
from repro.physical.base import ExecutionContext
from repro.triples import DistributedTripleStore
from repro.vql import parse
from repro.vql.ast import (
    BoolOp,
    Comparison,
    FunctionCall,
    Literal,
    Not,
    TriplePattern,
    Var,
)


@pytest.fixture(scope="module")
def env():
    pnet = build_network(32, replication=2, seed=88, split_by="population")
    store = DistributedTripleStore(pnet, enable_qgram_index=True)
    workload = ConferenceWorkload(num_authors=20, num_publications=40, num_conferences=8, seed=88)
    triples = workload.all_triples()
    store.bulk_insert(triples)
    ctx = ExecutionContext(store, pnet.peers[0], random.Random(88))
    stats = CatalogStatistics.from_store(store)
    return ctx, triples, CostModel(stats)


def _canonical(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows)


class TestSerialization:
    def test_expression_roundtrip(self):
        expr = BoolOp(
            "and",
            (
                Comparison("<", FunctionCall("edist", (Var("s"), Literal("ICDE"))), Literal(3)),
                Not(Comparison("=", Var("x"), Literal(5))),
            ),
        )
        assert expression_from_dict(expression_to_dict(expr)) == expr

    def test_plan_roundtrip(self):
        plan = MutantQueryPlan(
            pending=[
                PatternScan(
                    TriplePattern(Var("a"), Literal("name"), Var("n")),
                    (Comparison("!=", Var("n"), Literal("Bob")),),
                )
            ],
            residual_filters=[Comparison("=", Var("a"), Var("b"))],
            bindings=[{"a": "x"}],
            location="peer-0001",
            hops_travelled=3,
        )
        back = MutantQueryPlan.from_dict(plan.to_dict())
        assert back.pending == plan.pending
        assert back.residual_filters == plan.residual_filters
        assert back.bindings == plan.bindings
        assert back.location == plan.location
        assert back.hops_travelled == 3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            expression_from_dict({"kind": "alien"})


class TestAdaptiveChoice:
    def test_first_step_prefers_most_selective_scan(self, env):
        _ctx, _triples, model = env
        scans = [
            PatternScan(TriplePattern(Var("a"), Literal("name"), Var("n"))),
            PatternScan(TriplePattern(Var("a"), Literal("age"), Literal(30))),
        ]
        step = choose_next_step(scans, None, model)
        assert step.scan is scans[1]  # bound object -> cheapest
        assert step.method == "scan"

    def test_bound_variable_triggers_probe(self, env):
        _ctx, _triples, model = env
        scans = [PatternScan(TriplePattern(Var("a"), Literal("age"), Var("g")))]
        step = choose_next_step(scans, [{"a": "person:000001"}], model)
        assert step.method == "probe-oid"
        assert step.shared_variable == "a"

    def test_object_probe_with_literal_predicate(self, env):
        _ctx, _triples, model = env
        scans = [PatternScan(TriplePattern(Var("p"), Literal("title"), Var("t")))]
        step = choose_next_step(scans, [{"t": "Some Title"}], model)
        assert step.method == "probe-av"

    def test_probe_cost_scales_with_distinct_values(self, env):
        _ctx, _triples, model = env
        scans = [PatternScan(TriplePattern(Var("a"), Literal("age"), Var("g")))]
        few = choose_next_step(scans, [{"a": "x"}], model)
        many = choose_next_step(scans, [{"a": f"p{i}"} for i in range(50)], model)
        assert few.estimated_cost < many.estimated_cost


class TestMQPExecution:
    def _run(self, env, vql):
        ctx, triples, model = env
        query = parse(vql)
        logical = rewrite(build_plan(query))
        scans = [n for n in logical.walk() if isinstance(n, PatternScan)]
        from repro.algebra.operators import Selection

        residual = [n.predicate for n in logical.walk() if isinstance(n, Selection)]
        result = execute_mutant_plan(ctx, scans, residual, model)
        expected = execute_reference(logical, triples)
        return result, expected

    def test_two_pattern_join(self, env):
        result, expected = self._run(env, "SELECT * WHERE {(?a,'name',?n) (?a,'age',?g)}")
        # MQP returns full bindings; project to the reference's variables.
        names = {"a", "n", "g"}
        got = [{k: v for k, v in row.items() if k in names} for row in result.bindings]
        assert _canonical(got) == _canonical(expected)

    def test_filtered_join(self, env):
        result, expected = self._run(
            env,
            "SELECT * WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g >= 40}",
        )
        assert _canonical(result.bindings) == _canonical(expected)

    def test_long_chain(self, env):
        result, expected = self._run(
            env,
            "SELECT * WHERE {(?a,'has_published',?t) (?p,'title',?t) "
            "(?p,'published_in',?c)}",
        )
        assert _canonical(result.bindings) == _canonical(expected)

    def test_steps_are_logged(self, env):
        result, _expected = self._run(env, "SELECT * WHERE {(?a,'name',?n) (?a,'age',?g)}")
        assert len(result.steps) == 2
        assert any("probe" in step for step in result.steps)

    def test_empty_intermediate_short_circuits(self, env):
        ctx, _triples, model = env
        scans = [
            PatternScan(TriplePattern(Var("a"), Literal("age"), Literal(-1))),
            PatternScan(TriplePattern(Var("a"), Literal("name"), Var("n"))),
        ]
        result = execute_mutant_plan(ctx, scans, [], model)
        assert result.bindings == []
        assert len(result.steps) == 1  # stopped after the empty scan

    def test_requires_at_least_one_scan(self, env):
        ctx, _triples, model = env
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            execute_mutant_plan(ctx, [], [], model)


class TestProbeOidCoercion:
    """Regression: probe-oid used to silently drop non-string join values."""

    @pytest.fixture()
    def numeric_env(self):
        from repro.mqp.executor import _probe
        from repro.mqp.plan import MutantQueryPlan
        from repro.optimizer.adaptive import Step
        from repro.triples.triple import Triple

        from repro.pgrid.keys import responsible
        from repro.triples.index import oid_key

        pnet = build_network(16, replication=2, seed=77, split_by="population")
        store = DistributedTripleStore(pnet)
        # A tuple whose OID is the *string* "42"; join values arriving as the
        # integer 42 must still probe (and bind) it.
        store.bulk_insert([Triple("42", "name", "answer-tuple"), Triple("q:1", "answer", 42)])
        # Probe from a peer that must actually route to the OID posting.
        holder = next(p for p in pnet.peers if not responsible(p.path, oid_key("42")))
        ctx = ExecutionContext(store, holder, random.Random(77))
        return ctx, _probe, MutantQueryPlan, Step

    def test_integer_join_value_probes_the_oid_index(self, numeric_env):
        ctx, _probe, MutantQueryPlan, Step = numeric_env
        scan = PatternScan(TriplePattern(Var("x"), Literal("name"), Var("n")))
        plan = MutantQueryPlan(
            pending=[],
            residual_filters=[],
            bindings=[{"q": "q:1", "x": 42}],
            location=ctx.coordinator.node_id,
        )
        step = Step(scan=scan, method="probe-oid", shared_variable="x", estimated_cost=0.0)
        trace = _probe(ctx, plan, step)
        assert trace.messages > 0
        # The probed binding keeps the row's original (integer) join value.
        assert plan.bindings == [{"q": "q:1", "x": 42, "n": "answer-tuple"}]

    def test_string_join_values_still_bind_exactly(self, numeric_env):
        ctx, _probe, MutantQueryPlan, Step = numeric_env
        scan = PatternScan(TriplePattern(Var("x"), Literal("name"), Var("n")))
        plan = MutantQueryPlan(
            pending=[],
            residual_filters=[],
            bindings=[{"x": "42"}, {"x": "no-such-oid"}],
            location=ctx.coordinator.node_id,
        )
        step = Step(scan=scan, method="probe-oid", shared_variable="x", estimated_cost=0.0)
        _probe(ctx, plan, step)
        assert plan.bindings == [{"x": "42", "n": "answer-tuple"}]
