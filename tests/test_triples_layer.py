"""Triple model, three-way indexing, distributed store, schema mappings."""

import pytest

from repro.errors import StorageError
from repro.pgrid import build_network
from repro.triples import (
    DistributedTripleStore,
    MappingCatalog,
    SchemaMapping,
    Triple,
    av_key,
    av_value_range,
    av_string_prefix_range,
    oid_key,
    triples_from_tuple,
    tuple_from_triples,
    v_key,
    v_value_range,
)


class TestTripleModel:
    def test_construction(self):
        t = Triple("a12", "year", 2006)
        assert t.oid == "a12" and t.value == 2006

    def test_rejects_empty_oid_or_attribute(self):
        with pytest.raises(StorageError):
            Triple("", "a", 1)
        with pytest.raises(StorageError):
            Triple("x", "", 1)

    def test_rejects_reserved_characters(self):
        with pytest.raises(StorageError):
            Triple("x", "a", "bad\x01value")
        with pytest.raises(StorageError):
            Triple("x\x02", "a", 1)

    def test_rejects_exotic_value_types(self):
        with pytest.raises(StorageError):
            Triple("x", "a", [1, 2])  # type: ignore[arg-type]
        with pytest.raises(StorageError):
            Triple("x", "a", True)  # bools are not storable values

    def test_namespace_parsing(self):
        t = Triple("x", "dblp:confname", "ICDE")
        assert t.namespace == "dblp"
        assert t.local_name == "confname"
        plain = Triple("x", "confname", "ICDE")
        assert plain.namespace is None
        assert plain.local_name == "confname"

    def test_identity_includes_value(self):
        # Attributes may be multi-valued (Fig. 3 has_published), so two
        # triples differing only in value are distinct facts.
        a = Triple("x", "age", 30)
        b = Triple("x", "age", 31)
        assert a.identity() != b.identity()
        assert a.identity() == Triple("x", "age", 30).identity()

    def test_vertical_decomposition_skips_nulls(self):
        triples = triples_from_tuple("o1", {"a": 1, "b": None, "c": "x"})
        assert {t.attribute for t in triples} == {"a", "c"}

    def test_tuple_roundtrip(self):
        values = {"title": "X", "year": 2007}
        triples = triples_from_tuple("o1", values)
        oid, back = tuple_from_triples(triples)
        assert oid == "o1" and back == values

    def test_recompose_rejects_mixed_oids(self):
        with pytest.raises(StorageError):
            tuple_from_triples([Triple("a", "x", 1), Triple("b", "x", 1)])

    def test_recompose_rejects_empty(self):
        with pytest.raises(StorageError):
            tuple_from_triples([])


class TestIndexKeys:
    def test_index_tags_disjoint(self):
        keys = [oid_key("a"), av_key("a", "b"), v_key("b")]
        tags = {k[:2] for k in keys}
        assert len(tags) == 3

    def test_av_range_numeric_bounds(self):
        kr = av_value_range("year", 2005, 2006, True, False)
        assert kr.contains(av_key("year", 2005))
        assert kr.contains(av_key("year", 2005.5))
        assert not kr.contains(av_key("year", 2006))
        assert not kr.contains(av_key("year", 2004))

    def test_av_range_inclusive_high(self):
        kr = av_value_range("year", None, 2006, True, True)
        assert kr.contains(av_key("year", 2006))
        assert not kr.contains(av_key("year", 2007))

    def test_av_range_excludes_other_attributes(self):
        kr = av_value_range("year", None, None)
        assert not kr.contains(av_key("years", 2005))
        assert not kr.contains(av_key("yea", 2005))

    def test_av_inclusive_string_bound_excludes_extensions(self):
        kr = av_value_range("name", None, "ab", True, True)
        assert kr.contains(av_key("name", "ab"))
        assert not kr.contains(av_key("name", "ab\x03"))
        assert not kr.contains(av_key("name", "abc"))

    def test_av_prefix_range(self):
        kr = av_string_prefix_range("confname", "ICDE")
        assert kr.contains(av_key("confname", "ICDE 2006"))
        assert kr.contains(av_key("confname", "ICDE"))
        assert not kr.contains(av_key("confname", "VLDB 2006"))

    def test_v_range_mixed_types(self):
        kr = v_value_range(low=0, high=None)
        assert kr.contains(v_key(5))
        assert kr.contains(v_key("anything"))  # strings sort above numbers
        assert not kr.contains(v_key(-3))


class TestDistributedStore:
    @pytest.fixture()
    def store(self):
        pnet = build_network(16, replication=2, seed=44, split_by="population")
        return DistributedTripleStore(pnet)

    def test_figure2_posting_count(self, store):
        """Figure 2: two 3-attribute tuples produce 18 postings."""
        store.insert_tuple("a12", {"title": "Similarity...",
                                   "confname": "ICDE 2006 - WS", "year": 2006})
        store.insert_tuple("v34", {"title": "Progressive...",
                                   "confname": "ICDE 2005", "year": 2005})
        distinct = {(e.key, e.item_id) for p in store.pnet.peers for e in p.store}
        assert len(distinct) == 18

    def test_by_oid_reassembles_tuple(self, store):
        store.insert_tuple("a12", {"title": "T", "year": 2006})
        triples, _trace = store.by_oid("a12")
        _oid, values = tuple_from_triples(triples)
        assert values == {"title": "T", "year": 2006}

    def test_av_exact(self, store):
        store.insert(Triple("x", "year", 2005))
        store.insert(Triple("y", "year", 2006))
        triples, _trace = store.by_attribute_value("year", 2005)
        assert [t.oid for t in triples] == ["x"]

    def test_v_index_finds_unknown_attribute(self, store):
        store.insert(Triple("x", "confname", "ICDE 2005"))
        store.insert(Triple("y", "series", "ICDE 2005"))
        triples, _trace = store.by_value("ICDE 2005")
        assert sorted(t.attribute for t in triples) == ["confname", "series"]

    def test_attribute_range(self, store):
        for oid, year in [("a", 2004), ("b", 2005), ("c", 2006), ("d", 2007)]:
            store.insert(Triple(oid, "year", year))
        triples, _trace, complete = store.attribute_range("year", 2005, 2006)
        assert complete
        assert sorted(t.oid for t in triples) == ["b", "c"]

    def test_attribute_prefix(self, store):
        store.insert(Triple("a", "confname", "ICDE 2006 - WS"))
        store.insert(Triple("b", "confname", "ICDE 2005"))
        store.insert(Triple("c", "confname", "VLDB 2005"))
        triples, _trace, _complete = store.attribute_prefix("confname", "ICDE")
        assert sorted(t.oid for t in triples) == ["a", "b"]

    def test_value_prefix_across_attributes(self, store):
        store.insert(Triple("a", "confname", "ICDE 2005"))
        store.insert(Triple("b", "series", "ICDE"))
        triples, _trace, _complete = store.value_prefix("ICDE")
        assert sorted(t.oid for t in triples) == ["a", "b"]

    def test_update_value_moves_index_postings(self, store):
        original = Triple("a12", "year", 2006)
        store.insert(original)
        updated, _trace = store.update_value(original, 2007)
        assert updated.value == 2007
        old_hits, _ = store.by_attribute_value("year", 2006)
        new_hits, _ = store.by_attribute_value("year", 2007)
        assert old_hits == [] and [t.oid for t in new_hits] == ["a12"]
        by_oid, _ = store.by_oid("a12")
        assert [t.value for t in by_oid] == [2007]

    def test_delete_removes_all_postings(self, store):
        t = Triple("a", "k", "v")
        store.insert(t)
        store.delete(t)
        assert store.by_oid("a")[0] == []
        assert store.by_attribute_value("k", "v")[0] == []
        assert store.by_value("v")[0] == []

    def test_bulk_insert_equivalent_to_routed(self, store):
        triples = [Triple(f"o{i}", "n", i) for i in range(10)]
        store.bulk_insert(triples)
        for i in range(10):
            hits, _ = store.by_attribute_value("n", i)
            assert [t.oid for t in hits] == [f"o{i}"]

    def test_qgram_postings_require_enabled_index(self, store):
        with pytest.raises(StorageError):
            store.qgram_postings("abc")

    def test_qgram_postings_when_enabled(self):
        pnet = build_network(8, replication=1, seed=45, split_by="population")
        store = DistributedTripleStore(pnet, enable_qgram_index=True)
        store.insert(Triple("a", "series", "ICDE"))
        triples, _trace = store.qgram_postings("CDE")
        assert [t.oid for t in triples] == ["a"]


class TestMappings:
    @pytest.fixture()
    def catalog(self):
        pnet = build_network(16, replication=2, seed=46, split_by="population")
        return MappingCatalog(DistributedTripleStore(pnet))

    def test_add_and_resolve_both_directions(self, catalog):
        catalog.add(SchemaMapping("dblp:title", "ilm:papertitle", 0.9))
        forward, _ = catalog.equivalents("dblp:title")
        backward, _ = catalog.equivalents("ilm:papertitle")
        assert forward == backward
        assert forward[0].confidence == pytest.approx(0.9)

    def test_confidence_filter(self, catalog):
        catalog.add(SchemaMapping("a", "b", 0.4))
        weak, _ = catalog.equivalents("a", min_confidence=0.5)
        strong, _ = catalog.equivalents("a", min_confidence=0.3)
        assert weak == [] and len(strong) == 1

    def test_expansions_exclude_self(self, catalog):
        catalog.add(SchemaMapping("a", "b"))
        catalog.add(SchemaMapping("c", "a"))
        names, _ = catalog.expansions("a")
        assert sorted(names) == ["b", "c"]

    def test_bulk_add(self, catalog):
        catalog.bulk_add([SchemaMapping("x", "y"), SchemaMapping("y", "z")])
        names, _ = catalog.expansions("y")
        assert sorted(names) == ["x", "z"]

    def test_unknown_attribute_has_no_mappings(self, catalog):
        names, _ = catalog.expansions("never-mapped")
        assert names == []
