"""Overlay messages.

Messages are pure value objects; delivery semantics (latency, failure) live in
:class:`~repro.net.network.Network`.  ``size`` is an estimated payload size in
abstract units (we use "number of triples / bindings carried" plus a constant
header) — the byte counters in :class:`~repro.net.stats.NetworkStats` are in
these units.

Besides the payload, a message can carry piggybacked *metadata* that costs
nothing extra to ship because it rides in the header: the event scheduler
stamps every delivery with the sender's advertised queue depth when a
:class:`~repro.load.shedding.HintRegistry` is attached (the ``hint`` field
of :class:`~repro.net.scheduler.Delivery`), and routed data messages can
carry freshly learned route-cache entries (``network.route_warming``).
Metadata never influences delivery semantics — only the receiver's later
decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Fixed per-message header overhead, in abstract size units.
HEADER_SIZE = 1


@dataclass(frozen=True)
class Message:
    """A single overlay message from ``src`` to ``dst``.

    ``kind`` is a short routing/diagnostic tag such as ``"lookup"``,
    ``"insert"``, ``"range"``, ``"mqp"``; statistics are broken down by it.
    """

    src: str
    dst: str
    kind: str
    payload: Any = None
    size: int = HEADER_SIZE

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"message size must be >= 0, got {self.size}")


def payload_size(payload: object) -> int:
    """Estimate the size of a message payload in abstract units.

    Collections count their length, everything else counts 1.  Used by
    callers that ship result sets around (joins, mutant query plans).
    """
    if payload is None:
        return 0
    if isinstance(payload, (list, tuple, set, frozenset, dict)):
        return len(payload)
    return 1
