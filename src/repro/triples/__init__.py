"""Triple storage layer (paper §2, Fig. 1 layer 3).

Vertical (RDF-style) decomposition of logical tuples into ``(OID, A, v)``
triples, published under the three default indexes (OID, A#v, v) of an
order-preserving DHT, plus schema mappings stored and queried as ordinary
triples.
"""

from repro.triples.index import (
    INDEX_TAG,
    IndexKind,
    av_attribute_range,
    av_key,
    av_string_prefix_range,
    av_value_range,
    oid_key,
    qgram_key,
    v_key,
    v_string_prefix_range,
    v_value_range,
)
from repro.triples.mappings import (
    MAP_CONF,
    MAP_DST,
    MAP_SRC,
    MappingCatalog,
    SchemaMapping,
)
from repro.triples.store import DistributedTripleStore, Posting
from repro.triples.triple import (
    Triple,
    Value,
    triples_from_tuple,
    tuple_from_triples,
)

__all__ = [
    "Triple",
    "Value",
    "triples_from_tuple",
    "tuple_from_triples",
    "DistributedTripleStore",
    "Posting",
    "IndexKind",
    "INDEX_TAG",
    "oid_key",
    "av_key",
    "v_key",
    "qgram_key",
    "av_attribute_range",
    "av_value_range",
    "av_string_prefix_range",
    "v_value_range",
    "v_string_prefix_range",
    "MappingCatalog",
    "SchemaMapping",
    "MAP_SRC",
    "MAP_DST",
    "MAP_CONF",
]
