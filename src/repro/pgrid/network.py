"""The P-Grid overlay facade.

``PGridNetwork`` bundles the simulated :class:`~repro.net.network.Network`
with the set of P-Grid peers and exposes the DHT operations the upper layers
use: routed ``insert`` / ``lookup`` / ``update``, plus global-view inspection
helpers (used only by tests, benchmarks and the oracle builder — never by the
distributed algorithms themselves).

Writes go to **all online replicas** of the responsible group; reads are
served by whichever replica routing lands on.  This mirrors P-Grid's
replication model, where updates are pushed best-effort and replicas converge
through anti-entropy (:mod:`repro.pgrid.updates`).
"""

from __future__ import annotations

import random
from collections import defaultdict

from repro.errors import RoutingError
from repro.net.network import Network
from repro.net.trace import Trace
from repro.pgrid.datastore import Entry
from repro.pgrid.keys import KeyRange, is_complete_partition, responsible
from repro.pgrid.peer import PGridPeer
from repro.pgrid.routing import route


class PGridNetwork:
    """A P-Grid overlay over a simulated network."""

    def __init__(self, network: Network | None = None, fanout: int = 4, seed: int = 0):
        # Note: Network defines __len__, so an empty network is falsy —
        # an `or` default here would silently discard it.
        self.net = network if network is not None else Network(seed=seed)
        self.fanout = fanout
        self.rng = random.Random(seed ^ 0x5EED)
        self.peers: list[PGridPeer] = []
        self._clock = 0  # Lamport-style version counter for updates

    # -- membership ----------------------------------------------------------

    def add_peer(self, node_id: str, path: str = "") -> PGridPeer:
        peer = PGridPeer(node_id, self.net, path=path, fanout=self.fanout)
        self.peers.append(peer)
        return peer

    def peer(self, node_id: str) -> PGridPeer:
        node = self.net.node(node_id)
        if not isinstance(node, PGridPeer):
            raise TypeError(f"{node_id!r} is not a P-Grid peer")
        return node

    def online_peers(self) -> list[PGridPeer]:
        return [p for p in self.peers if p.online]

    def random_online_peer(self, rng: random.Random | None = None) -> PGridPeer:
        online = self.online_peers()
        if not online:
            raise RoutingError("no online peers in the overlay")
        return (rng or self.rng).choice(online)

    def __len__(self) -> int:
        return len(self.peers)

    # -- versioning ----------------------------------------------------------

    def next_version(self) -> int:
        """Monotone version for updates (models the update protocol's clock)."""
        self._clock += 1
        return self._clock

    # -- data operations (message-accounted) ----------------------------------

    def insert(
        self,
        key: str,
        value: object,
        item_id: str | None = None,
        start: PGridPeer | None = None,
        version: int | None = None,
        kind: str = "insert",
    ) -> Trace:
        """Route an item to its responsible group and store it on all online replicas."""
        start = start or self.random_online_peer()
        if item_id is None:
            item_id = f"item-{self._clock}-{self.rng.getrandbits(32):08x}"
        if version is None:
            version = self.next_version()
        entry = Entry(key=key, item_id=item_id, value=value, version=version)
        destination, trace = route(start, key, kind=kind)
        destination.store.put(entry)
        pushes = []
        for replica_id in destination.online_replicas():
            hop = self.net.send(destination.node_id, replica_id, kind, size=1)
            self.net.nodes[replica_id].store.put(entry)
            pushes.append(hop)
        return trace.then(Trace.parallel(pushes)) if pushes else trace

    def lookup(
        self, key: str, start: PGridPeer | None = None, kind: str = "lookup"
    ) -> tuple[list[Entry], Trace]:
        """Route to the responsible group and return the entries stored under ``key``.

        One extra hop models the answer being shipped back to the initiator.
        """
        start = start or self.random_online_peer()
        entries, trace, destination = self.lookup_at(key, start=start, kind=kind)
        if destination is not start:
            reply = self.net.send(
                destination.node_id, start.node_id, kind, size=max(1, len(entries))
            )
            trace = trace.then(reply)
        return entries, trace

    def lookup_at(
        self, key: str, start: PGridPeer | None = None, kind: str = "lookup"
    ) -> tuple[list[Entry], Trace, PGridPeer]:
        """Like :meth:`lookup`, but the result *stays at the destination peer*.

        Returns ``(entries, trace, destination)`` without the reply hop; the
        physical operators use this provenance-aware form to model different
        data flows (ship-to-coordinator vs. re-hash to rendezvous peers).
        """
        start = start or self.random_online_peer()
        destination, trace = route(start, key, kind=kind)
        return destination.store.get(key), trace, destination

    def delete(
        self, key: str, item_id: str, start: PGridPeer | None = None
    ) -> tuple[bool, Trace]:
        """Remove an identity from the responsible group's online replicas.

        Offline replicas keep their copy until anti-entropy with a tombstone
        would reconcile them; this simulation propagates deletions to online
        replicas only (a documented simplification of ref. [4]).
        """
        start = start or self.random_online_peer()
        destination, trace = route(start, key, kind="delete")
        removed = destination.store.delete(key, item_id)
        pushes = []
        for replica_id in destination.online_replicas():
            hop = self.net.send(destination.node_id, replica_id, "delete", size=1)
            replica = self.net.nodes[replica_id]
            assert isinstance(replica, PGridPeer)
            removed = replica.store.delete(key, item_id) or removed
            pushes.append(hop)
        if pushes:
            trace = trace.then(Trace.parallel(pushes))
        return removed, trace

    def update(
        self,
        key: str,
        item_id: str,
        value: object,
        start: PGridPeer | None = None,
    ) -> tuple[int, Trace]:
        """Write a new version of an existing identity (paper ref. [4] push phase).

        Returns ``(version, trace)``.  Offline replicas miss the push and
        stay stale until anti-entropy reconciles them.
        """
        version = self.next_version()
        trace = self.insert(
            key, value, item_id=item_id, version=version, start=start, kind="update"
        )
        return version, trace

    # -- global-view helpers (no messages; tests / oracle only) ---------------

    def leaf_groups(self) -> dict[str, list[PGridPeer]]:
        """Peers grouped by their current path."""
        groups: dict[str, list[PGridPeer]] = defaultdict(list)
        for peer in self.peers:
            groups[peer.path].append(peer)
        return dict(groups)

    def trie_paths(self) -> list[str]:
        return sorted(self.leaf_groups())

    def is_complete(self) -> bool:
        """True when the peers' paths tile the whole key space."""
        return is_complete_partition(self.trie_paths())

    def responsible_group(self, key: str) -> list[PGridPeer]:
        """All peers responsible for ``key`` (global view)."""
        return [p for p in self.peers if responsible(p.path, key)]

    def peers_with_prefix(self, prefix: str) -> list[PGridPeer]:
        return [p for p in self.peers if p.path.startswith(prefix)]

    def load_by_peer(self) -> dict[str, int]:
        """Entries stored per peer — the load-balancing metric of exp. E3."""
        return {p.node_id: p.load for p in self.peers}

    def all_entries(self) -> list[Entry]:
        """Every entry in the overlay, deduplicated across replicas."""
        seen: dict[tuple[str, str], Entry] = {}
        for peer in self.peers:
            for entry in peer.store:
                identity = (entry.key, entry.item_id)
                existing = seen.get(identity)
                if existing is None or entry.version > existing.version:
                    seen[identity] = entry
        return list(seen.values())

    def entries_in_range(self, key_range: KeyRange) -> list[Entry]:
        """Global-view range scan (ground truth for range-query tests)."""
        return [e for e in self.all_entries() if key_range.contains(e.key)]
