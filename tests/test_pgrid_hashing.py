"""The order/prefix-preserving hash — P-Grid's key enabling property."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pgrid.hashing import (
    after_key,
    encode_number,
    encode_string,
    encode_value,
    string_prefix_key,
)
from repro.pgrid.keys import compare_keys, key_fraction

SAFE_TEXT = st.text(alphabet=st.characters(min_codepoint=3, max_codepoint=126), max_size=10)
NUMBERS = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


class TestStringEncoding:
    def test_fixed_width(self):
        assert len(encode_string("abc")) == 24

    def test_empty(self):
        assert encode_string("") == ""

    def test_prefix_preservation(self):
        # encode(s) is a bit-prefix of encode(s + t): substring search is native.
        assert encode_string("icde2006").startswith(encode_string("icde"))

    @given(SAFE_TEXT, SAFE_TEXT)
    def test_order_preservation(self, a, b):
        if a < b:
            assert compare_keys(encode_string(a), encode_string(b)) <= 0
        elif a > b:
            assert compare_keys(encode_string(a), encode_string(b)) >= 0
        else:
            assert encode_string(a) == encode_string(b)

    @given(SAFE_TEXT, SAFE_TEXT)
    def test_injective_on_safe_text(self, a, b):
        if a != b:
            assert encode_string(a) != encode_string(b)


class TestNumberEncoding:
    def test_width(self):
        assert len(encode_number(42)) == 64

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            encode_number(float("nan"))

    def test_sign_ordering(self):
        assert encode_number(-1) < encode_number(0) < encode_number(1)

    def test_negative_zero_equals_zero(self):
        assert encode_number(-0.0) == encode_number(0.0)

    @given(NUMBERS, NUMBERS)
    def test_order_preservation(self, a, b):
        ka, kb = encode_number(a), encode_number(b)
        if float(a) < float(b):
            assert ka < kb
        elif float(a) > float(b):
            assert ka > kb
        else:
            assert ka == kb


class TestValueEncoding:
    def test_numbers_sort_before_strings(self):
        assert compare_keys(encode_value(10**12), encode_value("")) < 0

    def test_bool_treated_as_number(self):
        assert encode_value(True) == encode_value(1)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            encode_value([1, 2])

    @given(
        st.one_of(SAFE_TEXT, NUMBERS),
        st.one_of(SAFE_TEXT, NUMBERS),
    )
    def test_total_order_within_types(self, a, b):
        ka, kb = encode_value(a), encode_value(b)
        same_type = isinstance(a, str) == isinstance(b, str)
        if same_type:
            if a < b:
                assert compare_keys(ka, kb) < 0 or ka == kb  # float collisions
            elif a > b:
                assert compare_keys(ka, kb) > 0 or ka == kb


class TestAfterKey:
    def test_strictly_above_point(self):
        key = encode_value("icde")
        assert key_fraction(after_key(key)) > key_fraction(key)

    def test_below_any_extension(self):
        # after('ab') must exclude 'ab<c>' for every allowed character c>=\x03.
        base = encode_value("ab")
        extension = encode_value("ab\x03")
        assert key_fraction(after_key(base)) < key_fraction(extension)

    @given(SAFE_TEXT, st.characters(min_codepoint=3, max_codepoint=126))
    def test_extension_exclusion_property(self, s, ch):
        base = encode_value(s)
        extended = encode_value(s + ch)
        bound = after_key(base)
        assert key_fraction(base) < key_fraction(bound) <= key_fraction(extended)


class TestStringPrefixKey:
    def test_matches_value_encoding_prefix(self):
        assert encode_value("icde2006").startswith(string_prefix_key("icde"))

    def test_excludes_non_prefix(self):
        assert not encode_value("vldb").startswith(string_prefix_key("icde"))
