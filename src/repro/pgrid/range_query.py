"""Range queries over the P-Grid key space (paper §2).

Because P-Grid's hash function is order preserving, a key range maps to a
contiguous band of trie leaves.  Two classic algorithms are implemented, the
trade-off the paper's cost-model/strategy discussion builds on:

* **sequential (min-max) traversal** — route to the leaf holding the lower
  bound, then walk leaf-by-leaf to the right.  Messages ≈ log N + L,
  *latency* ≈ (log N + L) hops because the walk is serial (L = number of
  leaves intersecting the range).

* **shower** — the query fans out down the trie: each receiving peer serves
  its local slice and forwards sub-ranges to references covering the other
  intersecting subtrees, in parallel.  Messages are comparable, but the
  critical path stays logarithmic, so latency is much lower for wide ranges.

Both return ``(entries, trace, complete)`` — ``complete`` is False when some
subtree was unreachable (all its replicas offline), matching the paper's
best-effort guarantee discussion.

When the overlay runs in event-driven mode (:meth:`PGridNetwork.event_driven`)
the shower's fan-out tree is executed as interleaved events on the simulated
clock: every edge of the tree departs when its parent actually received the
query, sibling subtrees race each other, and the query completes when the
last result funnels back — the measured counterpart of the analytic
``Trace.parallel``.  The tree itself (which references are chosen) is
identical in both models, so message counts agree.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import RoutingError
from repro.net.scheduler import EventScheduler
from repro.net.trace import Trace
from repro.pgrid.datastore import Entry
from repro.pgrid.keys import KeyRange, increment_path
from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer
from repro.pgrid.routing import point_key, route


def range_query_shower(
    pnet: PGridNetwork,
    key_range: KeyRange,
    start: PGridPeer | None = None,
    rng: random.Random | None = None,
    kind: str = "range",
) -> tuple[list[Entry], Trace, bool]:
    """Parallel (shower) range query; results funnel back to the initiator."""
    start = start or pnet.random_online_peer()
    rng = rng or pnet.rng
    if pnet.scheduler is not None:
        return _shower_event(
            pnet, pnet.scheduler, start, key_range, rng, kind, collect=True, groups=None
        )
    entries, trace, complete = _shower_visit(
        pnet, start, key_range, cover="", rng=rng, kind=kind, collect=True, groups=None
    )
    return entries, trace, complete


def range_query_shower_groups(
    pnet: PGridNetwork,
    key_range: KeyRange,
    start: PGridPeer | None = None,
    rng: random.Random | None = None,
    kind: str = "range",
) -> tuple[list[tuple[str, list[Entry]]], Trace, bool]:
    """Shower range query in *produce* mode: results stay at the serving peers.

    Returns ``(groups, trace, complete)`` where groups are
    ``(peer_id, entries)`` pairs; the trace covers the forward fan-out only.
    Physical operators use this to choose their own data flow afterwards.
    """
    start = start or pnet.random_online_peer()
    rng = rng or pnet.rng
    groups: list[tuple[str, list[Entry]]] = []
    if pnet.scheduler is not None:
        _entries, trace, complete = _shower_event(
            pnet, pnet.scheduler, start, key_range, rng, kind, collect=False, groups=groups
        )
        return groups, trace, complete
    _entries, trace, complete = _shower_visit(
        pnet, start, key_range, cover="", rng=rng, kind=kind, collect=False, groups=groups
    )
    return groups, trace, complete


def _shower_visit(
    pnet: PGridNetwork,
    peer: PGridPeer,
    key_range: KeyRange,
    cover: str,
    rng: random.Random,
    kind: str,
    collect: bool,
    groups: list[tuple[str, list[Entry]]] | None,
) -> tuple[list[Entry], Trace, bool]:
    """Serve ``key_range`` restricted to the subtree ``cover`` from ``peer``.

    ``peer``'s own leaf lies inside ``cover``; for every complementary
    subtree at levels >= len(cover) that intersects the range, the query is
    forwarded to one reference, which then covers that subtree.  With
    ``collect`` the results flow back along the fan-out tree (one send per
    edge, sized by the subtree's result); otherwise they stay at the serving
    peers and are appended to ``groups``.
    """
    local = peer.store.scan(key_range)
    if groups is not None and local:
        groups.append((peer.node_id, local))
    complete = True
    branches: list[Trace] = []

    for level in range(len(cover), len(peer.path)):
        subtree = peer.required_prefix(level)
        if not key_range.intersects_path(subtree):
            continue
        refs = peer.valid_refs(level)
        if not refs:
            complete = False
            continue
        ref_id = rng.choice(refs)
        hop = pnet.net.send(peer.node_id, ref_id, kind, size=1)
        child = pnet.net.nodes[ref_id]
        sub_entries, sub_trace, sub_complete = _shower_visit(
            pnet,
            child,
            key_range,
            cover=subtree,
            rng=rng,
            kind=kind,
            collect=collect,
            groups=groups,
        )
        branch = hop.then(sub_trace)
        if collect:
            # Results return along the tree edge; size reflects the payload.
            back = pnet.net.send(ref_id, peer.node_id, kind, size=max(1, len(sub_entries)))
            branch = branch.then(back)
            local.extend(sub_entries)
        branches.append(branch)
        complete = complete and sub_complete

    trace = Trace.parallel(branches) if branches else Trace.ZERO
    return local, trace, complete


# -- event-driven shower ------------------------------------------------------


@dataclass
class _ShowerNode:
    """One visited peer in a pre-expanded shower fan-out tree."""

    peer: PGridPeer
    cover: str
    local: list[Entry]
    children: list["_ShowerNode"] = field(default_factory=list)
    complete: bool = True


def _expand_shower(
    pnet: PGridNetwork,
    peer: PGridPeer,
    key_range: KeyRange,
    cover: str,
    rng: random.Random,
) -> _ShowerNode:
    """Choose the fan-out tree without sending anything.

    Reference choices are drawn in the exact order the synchronous
    depth-first :func:`_shower_visit` draws them, so for a given seed both
    execution models traverse the identical tree (and therefore send the
    identical messages); only *when* each edge fires differs.
    """
    node = _ShowerNode(peer=peer, cover=cover, local=peer.store.scan(key_range))
    for level in range(len(cover), len(peer.path)):
        subtree = peer.required_prefix(level)
        if not key_range.intersects_path(subtree):
            continue
        refs = peer.valid_refs(level)
        if not refs:
            node.complete = False
            continue
        ref_id = rng.choice(refs)
        child_peer = pnet.net.nodes[ref_id]
        assert isinstance(child_peer, PGridPeer)
        child = _expand_shower(pnet, child_peer, key_range, subtree, rng)
        node.children.append(child)
        node.complete = node.complete and child.complete
    return node


def _shower_cost(node: _ShowerNode, collect: bool) -> tuple[int, int]:
    """(total messages, critical-path hops) of a fan-out tree."""
    per_edge = 2 if collect else 1  # forward edge, plus the funnel-back edge
    messages = 0
    critical = 0
    for child in node.children:
        child_messages, child_critical = _shower_cost(child, collect)
        messages += per_edge + child_messages
        critical = max(critical, per_edge + child_critical)
    return messages, critical


def _shower_event(
    pnet: PGridNetwork,
    scheduler: EventScheduler,
    start: PGridPeer,
    key_range: KeyRange,
    rng: random.Random,
    kind: str,
    collect: bool,
    groups: list[tuple[str, list[Entry]]] | None,
) -> tuple[list[Entry], Trace, bool]:
    """Run a shower fan-out as interleaved events on the simulated clock.

    Each tree edge departs at the instant its parent received the query, so
    sibling subtrees race; with ``collect`` the results funnel back along
    the tree and a node completes when its slowest child's reply lands.
    The returned trace carries the *measured* latency and completion time.
    """
    tree = _expand_shower(pnet, start, key_range, cover="", rng=rng)
    start_time = scheduler.now
    messages, critical_hops = _shower_cost(tree, collect)
    outcome: dict[str, object] = {"entries": [], "time": start_time}

    def finished(entries: list[Entry], time: float) -> None:
        outcome["entries"] = entries
        outcome["time"] = time

    _schedule_shower_node(scheduler, tree, start_time, kind, collect, groups, finished)
    scheduler.run()
    completion = float(outcome["time"])  # type: ignore[arg-type]
    entries = outcome["entries"] if collect else []
    trace = Trace(
        messages=messages,
        hops=critical_hops,
        latency=completion - start_time,
        completion_time=completion,
    )
    return entries, trace, tree.complete  # type: ignore[return-value]


def _schedule_shower_node(
    scheduler: EventScheduler,
    node: _ShowerNode,
    at: float,
    kind: str,
    collect: bool,
    groups: list[tuple[str, list[Entry]]] | None,
    on_done,
) -> None:
    """Serve ``node`` at instant ``at``; call ``on_done(entries, time)``.

    Runs inside the event loop: forward edges to all children depart at
    ``at`` concurrently, every child recursively schedules its own subtree
    on arrival, and (with ``collect``) the node completes when the last
    funnel-back reply has been delivered.
    """
    if groups is not None and node.local:
        groups.append((node.peer.node_id, node.local))
    entries = list(node.local) if collect else []
    if not node.children:
        on_done(entries, at)
        return
    pending = {"count": len(node.children), "finish": at}

    def merged(child_entries: list[Entry], time: float) -> None:
        if collect:
            entries.extend(child_entries)
        pending["count"] -= 1
        pending["finish"] = max(pending["finish"], time)
        if pending["count"] == 0:
            on_done(entries, pending["finish"])

    def child_done(child: _ShowerNode, child_entries: list[Entry], time: float) -> None:
        if collect:
            # Results return along the tree edge; size reflects the payload.
            scheduler.send_at(
                time,
                child.peer.node_id,
                node.peer.node_id,
                kind,
                max(1, len(child_entries)),
                on_delivered=lambda arrival: merged(child_entries, arrival),
            )
        else:
            merged(child_entries, time)

    for child in node.children:

        def arrived(time: float, child: _ShowerNode = child) -> None:
            _schedule_shower_node(
                scheduler,
                child,
                time,
                kind,
                collect,
                groups,
                lambda child_entries, done_time, child=child: child_done(
                    child, child_entries, done_time
                ),
            )

        scheduler.send_at(at, node.peer.node_id, child.peer.node_id, kind, 1, on_delivered=arrived)


def range_query_sequential_groups(
    pnet: PGridNetwork,
    key_range: KeyRange,
    start: PGridPeer | None = None,
    rng: random.Random | None = None,
    kind: str = "range",
    max_leaves: int = 4096,
) -> tuple[list[tuple[str, list[Entry]]], Trace, bool]:
    """Sequential traversal in *produce* mode (rows stay at the leaves)."""
    groups: list[tuple[str, list[Entry]]] = []
    _entries, trace, complete = _sequential_walk(
        pnet, key_range, start, rng, kind, max_leaves, groups=groups, collect=False
    )
    return groups, trace, complete


def range_query_sequential(
    pnet: PGridNetwork,
    key_range: KeyRange,
    start: PGridPeer | None = None,
    rng: random.Random | None = None,
    kind: str = "range",
    max_leaves: int = 4096,
) -> tuple[list[Entry], Trace, bool]:
    """Sequential (min-max) range traversal, left edge to right edge."""
    return _sequential_walk(
        pnet, key_range, start, rng, kind, max_leaves, groups=None, collect=True
    )


def _sequential_walk(
    pnet: PGridNetwork,
    key_range: KeyRange,
    start: PGridPeer | None,
    rng: random.Random | None,
    kind: str,
    max_leaves: int,
    groups: list[tuple[str, list[Entry]]] | None,
    collect: bool,
) -> tuple[list[Entry], Trace, bool]:
    start = start or pnet.random_online_peer()
    rng = rng or pnet.rng
    entries: list[Entry] = []
    complete = True

    try:
        current, trace = route(
            start, _left_edge(key_range.lo), kind=kind, rng=rng, scheduler=pnet.scheduler
        )
    except RoutingError as error:
        return [], getattr(error, "trace", Trace.ZERO), False

    for _step in range(max_leaves):
        local = current.store.scan(key_range)
        if groups is not None and local:
            groups.append((current.node_id, local))
        entries.extend(local)
        next_key = increment_path(current.path)
        if next_key is None or not key_range.contains(next_key):
            break
        try:
            current, hop_trace = route(
                current, _left_edge(next_key), kind=kind, rng=rng, scheduler=pnet.scheduler
            )
        except RoutingError as error:
            trace = trace.then(getattr(error, "trace", Trace.ZERO))
            complete = False
            break
        trace = trace.then(hop_trace)

    # Ship the collected result back to the initiator.
    if collect and current is not start:
        trace = trace.then(
            pnet.ship(current.node_id, start.node_id, kind, size=max(1, len(entries)))
        )
    return entries, trace, complete


def _left_edge(key: str) -> str:
    """Zero-pad a short key so routing lands on the *leftmost* leaf covering it.

    Routing toward the bare prefix may stop at any peer inside the prefix's
    subtree; the sequential traversal needs the left edge specifically.
    """
    return point_key(key)
