"""Message and byte accounting.

The paper's evaluation currency is *messages* and *hops* (its guarantees are
"logarithmic" in these) plus wall-clock answer time.  ``NetworkStats`` is the
global ledger attached to a :class:`~repro.net.network.Network`;
``StatsFrame`` is a scoped sub-ledger used to attribute traffic to a single
query or experiment phase::

    with net.frame() as f:
        store.query(...)
    print(f.messages, f.bytes)

Frames nest; every active frame sees every message.

Messages delivered by the event-driven scheduler carry a simulated-time
timestamp (``record(..., at=...)``); a frame then also tracks the first and
last delivery instants it saw, so a query frame reports its simulated span
(:attr:`StatsFrame.completion_time`) alongside its message counts.

When a load model is attached (:mod:`repro.load.model`), every serviced
message additionally reports its queueing delay and service time through
:meth:`NetworkStats.record_service`, aggregated per peer into
:class:`QueueLedger` entries; admission-control outcomes
(:mod:`repro.load.shedding`) are counted per peer through
:meth:`NetworkStats.record_reject` / :meth:`NetworkStats.record_defer`.
:meth:`StatsFrame.snapshot` includes the queueing fields *only when a load
model produced them* and the shed counters *only when something was shed*
— trace-mode runs (and event-mode runs without a load model) keep their
historical, byte-for-byte identical snapshot, so the E1–E11 result tables
stay comparable with prior PRs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class QueueLedger:
    """Per-peer queueing totals inside one stats frame."""

    jobs: int = 0
    busy: float = 0.0
    wait: float = 0.0
    sojourn: float = 0.0
    max_depth: int = 0

    def record(self, wait: float, service: float, depth: int) -> None:
        self.jobs += 1
        self.busy += service
        self.wait += wait
        self.sojourn += wait + service
        self.max_depth = max(self.max_depth, depth + 1)


@dataclass
class StatsFrame:
    """A scoped ledger of messages/bytes, broken down by message kind."""

    messages: int = 0
    bytes: int = 0
    by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    first_time: float | None = None
    last_time: float | None = None
    queueing: dict[str, QueueLedger] = field(default_factory=dict)
    rejects: Counter = field(default_factory=Counter)
    deferrals: Counter = field(default_factory=Counter)

    def record(self, kind: str, size: int, at: float | None = None) -> None:
        self.messages += 1
        self.bytes += size
        self.by_kind[kind] += 1
        self.bytes_by_kind[kind] += size
        if at is not None:
            if self.first_time is None or at < self.first_time:
                self.first_time = at
            if self.last_time is None or at > self.last_time:
                self.last_time = at

    @property
    def completion_time(self) -> float:
        """Latest simulated delivery instant seen (0.0 if never timestamped)."""
        return self.last_time if self.last_time is not None else 0.0

    @property
    def span(self) -> float:
        """Simulated time between the first and last timestamped delivery."""
        if self.first_time is None or self.last_time is None:
            return 0.0
        return self.last_time - self.first_time

    def record_service(self, node_id: str, wait: float, service: float, depth: int) -> None:
        """Account one serviced message's queueing delay at ``node_id``."""
        ledger = self.queueing.get(node_id)
        if ledger is None:
            ledger = self.queueing[node_id] = QueueLedger()
        ledger.record(wait, service, depth)

    def record_reject(self, node_id: str) -> None:
        """Count one admission-control rejection at ``node_id``."""
        self.rejects[node_id] += 1

    def record_defer(self, node_id: str) -> None:
        """Count one admission-control deferral (park round) at ``node_id``."""
        self.deferrals[node_id] += 1

    @property
    def total_rejects(self) -> int:
        """Rejections across all peers in this frame."""
        return sum(self.rejects.values())

    @property
    def total_deferrals(self) -> int:
        """Deferrals across all peers in this frame."""
        return sum(self.deferrals.values())

    def snapshot(self) -> dict:
        """Return a plain-dict summary (stable for logging/tests).

        Queueing fields appear only when a load model serviced messages in
        this frame, and shed counters only when admission control actually
        rejected or deferred something; without either the output is
        byte-for-byte what it was before those subsystems existed.
        """
        snap = {
            "messages": self.messages,
            "bytes": self.bytes,
            "by_kind": dict(self.by_kind),
        }
        if self.rejects:
            snap["rejects"] = dict(sorted(self.rejects.items()))
        if self.deferrals:
            snap["deferrals"] = dict(sorted(self.deferrals.items()))
        if self.queueing:
            snap["queueing"] = {
                node_id: {
                    "jobs": ledger.jobs,
                    "busy": ledger.busy,
                    "wait": ledger.wait,
                    "sojourn": ledger.sojourn,
                    "max_depth": ledger.max_depth,
                }
                for node_id, ledger in sorted(self.queueing.items())
            }
        return snap


class NetworkStats:
    """Global ledger plus the stack of active frames."""

    def __init__(self) -> None:
        self.total = StatsFrame()
        self._frames: list[StatsFrame] = []

    def record(self, kind: str, size: int, at: float | None = None) -> None:
        self.total.record(kind, size, at=at)
        for frame in self._frames:
            frame.record(kind, size, at=at)

    def record_service(self, node_id: str, wait: float, service: float, depth: int) -> None:
        """Account one serviced message (load model active) in every frame."""
        self.total.record_service(node_id, wait, service, depth)
        for frame in self._frames:
            frame.record_service(node_id, wait, service, depth)

    def record_reject(self, node_id: str) -> None:
        """Account one admission-control rejection in every frame."""
        self.total.record_reject(node_id)
        for frame in self._frames:
            frame.record_reject(node_id)

    def record_defer(self, node_id: str) -> None:
        """Account one admission-control deferral in every frame."""
        self.total.record_defer(node_id)
        for frame in self._frames:
            frame.record_defer(node_id)

    def push_frame(self) -> StatsFrame:
        frame = StatsFrame()
        self._frames.append(frame)
        return frame

    def pop_frame(self, frame: StatsFrame) -> None:
        if not self._frames or self._frames[-1] is not frame:
            raise ValueError("stats frames must be popped in LIFO order")
        self._frames.pop()

    @property
    def messages(self) -> int:
        return self.total.messages

    @property
    def bytes(self) -> int:
        return self.total.bytes

    def reset(self) -> None:
        """Clear the global ledger (active frames are left untouched)."""
        self.total = StatsFrame()
