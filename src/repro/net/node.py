"""Base class for simulated nodes.

Overlay peers (P-Grid, Chord) subclass :class:`Node`.  A node is *online* or
*offline*; the network refuses to deliver to offline nodes, which is how churn
and failure experiments exercise the overlays' redundancy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.net.network import Network


class Node:
    """A network endpoint with an identity and an online flag."""

    def __init__(self, node_id: str, network: "Network"):
        self.node_id = node_id
        self.network = network
        self.online = True
        network.register(self)

    def fail(self) -> None:
        """Take the node offline (crash-stop)."""
        self.online = False

    def recover(self) -> None:
        """Bring the node back online (state is retained, as after a restart)."""
        self.online = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.online else "down"
        return f"<{type(self).__name__} {self.node_id} {state}>"
