"""Shared fixtures for the UniStore test suite."""

from __future__ import annotations

import pytest

from repro import UniStore
from repro.bench import ConferenceWorkload
from repro.pgrid import build_network


@pytest.fixture(scope="session")
def conference_store() -> UniStore:
    """A loaded 32-peer store shared by read-only end-to-end tests."""
    store = UniStore.build(num_peers=32, replication=2, seed=1234, enable_qgram_index=True)
    workload = ConferenceWorkload(
        num_authors=30, num_publications=60, num_conferences=12, seed=1234
    )
    workload.load_into(store)
    return store


@pytest.fixture(scope="session")
def conference_workload() -> ConferenceWorkload:
    return ConferenceWorkload(num_authors=30, num_publications=60, num_conferences=12, seed=1234)


@pytest.fixture()
def small_overlay():
    """A fresh 16-peer overlay with replication 2 (mutable per test)."""
    return build_network(16, replication=2, seed=99, split_by="population")
