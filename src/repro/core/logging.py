"""Query logging (paper §3: "due to its logging capabilities results are
traceable, analyzable and (in limits) repeatable").

Every executed query is recorded with its text, chosen plan, execution mode
and measured costs; :meth:`QueryLog.replay_info` returns what is needed to
re-run it (text + mode + seed), which is exactly the paper's "in limits"
repeatability — the overlay state may have changed in between.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class QueryLogRecord:
    sequence: int
    text: str
    mode: str
    plan: str
    messages: int
    hops: int
    latency: float
    rows: int
    complete: bool


@dataclass
class QueryLog:
    records: list[QueryLogRecord] = field(default_factory=list)

    def record(
        self,
        text: str,
        mode: str,
        plan: str,
        messages: int,
        hops: int,
        latency: float,
        rows: int,
        complete: bool,
    ) -> QueryLogRecord:
        entry = QueryLogRecord(
            sequence=len(self.records),
            text=text,
            mode=mode,
            plan=plan,
            messages=messages,
            hops=hops,
            latency=latency,
            rows=rows,
            complete=complete,
        )
        self.records.append(entry)
        return entry

    def replay_info(self, sequence: int) -> dict:
        entry = self.records[sequence]
        return {"text": entry.text, "mode": entry.mode}

    def summary(self) -> dict:
        if not self.records:
            return {"queries": 0}
        return {
            "queries": len(self.records),
            "total_messages": sum(r.messages for r in self.records),
            "mean_latency": sum(r.latency for r in self.records) / len(self.records),
            "incomplete": sum(1 for r in self.records if not r.complete),
        }
