"""The demonstration shell (paper §4's interface, headless)."""

import io

import pytest

from repro import UniStore
from repro.cli import UniStoreShell, _parse_value, main


@pytest.fixture()
def shell():
    store = UniStore.build(num_peers=8, replication=2, seed=5)
    out = io.StringIO()
    return UniStoreShell(store, out=out), out


def run(shell_pair, *lines):
    shell, out = shell_pair
    shell.run(list(lines))
    return out.getvalue()


class TestValueParsing:
    def test_int(self):
        assert _parse_value("42") == 42

    def test_float(self):
        assert _parse_value("2.5") == 2.5

    def test_string(self):
        assert _parse_value("ICDE 2006") == "ICDE 2006"


class TestCommands:
    def test_insert_and_query(self, shell):
        output = run(
            shell,
            "insert name=Alice age=30",
            "query SELECT ?n WHERE {(?p,'name',?n)};",
        )
        assert "inserted oid:" in output
        assert "Alice" in output
        assert "msgs" in output

    def test_multiline_query(self, shell):
        run(shell, "insert name=Bob age=25")
        output = run(
            shell,
            "query SELECT ?n, ?a",
            "WHERE {(?p,'name',?n) (?p,'age',?a)};",
        )
        assert "Bob" in output and "25" in output

    def test_quoted_insert_values(self, shell):
        output = run(
            shell,
            'insert title="ICDE 2006 - WS" year=2006',
            "query SELECT ?t WHERE {(?p,'title',?t)};",
        )
        assert "ICDE 2006 - WS" in output

    def test_explain(self, shell):
        run(shell, "insert name=Cara")
        output = run(shell, "explain SELECT ?n WHERE {(?p,'name',?n)};")
        assert "-- logical --" in output and "-- physical --" in output

    def test_peers_listing(self, shell):
        output = run(shell, "peers")
        assert "peer-0000" in output
        assert "up" in output

    def test_peer_inspection(self, shell):
        run(shell, "insert name=Dora")
        output = run(shell, "peer peer-0000")
        assert "routing table:" in output
        assert "level 0" in output
        assert "local data" in output

    def test_peer_unknown(self, shell):
        output = run(shell, "peer nope-999")
        assert "no such peer" in output

    def test_stats(self, shell):
        run(shell, "insert name=Erin age=41")
        output = run(shell, "stats")
        assert "triples: 2" in output
        assert "name" in output and "age" in output

    def test_log(self, shell):
        run(shell, "insert k=1", "query SELECT ?x WHERE {(?x,'k',1)};")
        output = run(shell, "log")
        assert "#0" in output and "1 rows" in output

    def test_log_empty(self, shell):
        output = run(shell, "log")
        assert "no queries yet" in output

    def test_mapping_command(self, shell):
        run(shell, "insert dblp:title=X", "insert ilm:papertitle=Y")
        output = run(shell, "map dblp:title ilm:papertitle 0.9")
        assert "confidence 0.9" in output

    def test_demo_load(self, shell):
        output = run(shell, "demo")
        assert "conference domain" in output

    def test_help(self, shell):
        output = run(shell, "help")
        assert "query <VQL...>" in output

    def test_unknown_command(self, shell):
        output = run(shell, "frobnicate")
        assert "unknown command" in output

    def test_quit_stops_processing(self, shell):
        output = run(shell, "quit", "peers")
        assert "bye" in output
        assert "peer-0000" not in output

    def test_error_reported_not_raised(self, shell):
        output = run(shell, "query SELECT ?x WHERE {(?x,'a')};")
        assert "error:" in output

    def test_comments_and_blanks_skipped(self, shell):
        output = run(shell, "", "# a comment", "help")
        assert "query <VQL...>" in output

    def test_bad_insert_syntax(self, shell):
        output = run(shell, "insert not-a-pair")
        assert "bad field" in output

    def test_usage_messages(self, shell):
        output = run(shell, "query ;", "explain ;", "peer", "map onlyone")
        assert output.count("usage:") == 4


class TestMain:
    def test_main_runs_script(self, monkeypatch, capsys):
        inputs = iter(["insert name=Zed", "query SELECT ?n WHERE {(?p,'name',?n)};", "quit"])
        monkeypatch.setattr("builtins.input", lambda *_: next(inputs))
        assert main(["--peers", "8", "--seed", "3"]) == 0
        captured = capsys.readouterr().out
        assert "Zed" in captured and "bye" in captured

    def test_main_demo_flag(self, monkeypatch, capsys):
        monkeypatch.setattr("builtins.input", lambda *_: "quit")
        assert main(["--peers", "8", "--demo"]) == 0
        assert "conference domain" in capsys.readouterr().out
