"""Per-peer local storage.

Each P-Grid peer owns a :class:`DataStore`: a versioned key/value multi-map
with a sorted key index for range scans.  Entries are identified by
``(key, item_id)`` — inserting a newer version of the same identity replaces
the old one (this is what the update protocol of paper ref. [4] relies on),
while distinct items may share a key (many triples can hash to one key).

Keys are binary key strings (see :mod:`repro.pgrid.keys`); values are opaque
to this layer (the triple layer stores index postings here).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterator

from repro.pgrid.keys import KeyRange


@dataclass(frozen=True)
class Entry:
    """One stored item: identity ``(key, item_id)``, payload ``value``, ``version``."""

    key: str
    item_id: str
    value: Any
    version: int = 0


class DataStore:
    """Sorted, versioned local store of one peer."""

    def __init__(self) -> None:
        self._by_key: dict[str, dict[str, Entry]] = {}
        self._sorted_keys: list[str] = []

    def __len__(self) -> int:
        return sum(len(items) for items in self._by_key.values())

    def __iter__(self) -> Iterator[Entry]:
        for key in self._sorted_keys:
            yield from self._by_key[key].values()

    def put(self, entry: Entry) -> bool:
        """Insert or upgrade an entry.

        Returns True when the store changed (new identity, or strictly newer
        version of an existing identity).  Older or equal versions of an
        existing identity are ignored — this makes replica synchronisation
        idempotent and order-insensitive.
        """
        items = self._by_key.get(entry.key)
        if items is None:
            bisect.insort(self._sorted_keys, entry.key)
            self._by_key[entry.key] = {entry.item_id: entry}
            return True
        existing = items.get(entry.item_id)
        if existing is not None and existing.version >= entry.version:
            return False
        items[entry.item_id] = entry
        return True

    def delete(self, key: str, item_id: str) -> bool:
        """Remove one identity; returns True when it existed."""
        items = self._by_key.get(key)
        if not items or item_id not in items:
            return False
        del items[item_id]
        if not items:
            del self._by_key[key]
            index = bisect.bisect_left(self._sorted_keys, key)
            del self._sorted_keys[index]
        return True

    def get(self, key: str) -> list[Entry]:
        """All entries stored exactly under ``key``."""
        items = self._by_key.get(key)
        return list(items.values()) if items else []

    def get_entry(self, key: str, item_id: str) -> Entry | None:
        items = self._by_key.get(key)
        return items.get(item_id) if items else None

    def scan(self, key_range: KeyRange) -> list[Entry]:
        """All entries whose key lies in the half-open ``key_range``.

        Runs in ``O(log n + k)`` over the sorted key index: binary search to
        the first candidate, linear walk until a key at or past the upper
        bound.  Because keys compare as binary fractions while the index is
        plain-lexicographic, keys that are zero-padded variants of the lower
        bound are re-checked with ``key_range.contains``.
        """
        start = bisect.bisect_left(self._sorted_keys, key_range.lo)
        # Lexicographically smaller keys that denote the same point (e.g.
        # "01" vs lo="010") sit immediately before `start`; back up over them.
        while start > 0 and key_range.contains(self._sorted_keys[start - 1]):
            start -= 1
        result: list[Entry] = []
        for index in range(start, len(self._sorted_keys)):
            key = self._sorted_keys[index]
            if not key_range.contains(key):
                if key_range.hi is not None and key >= key_range.hi:
                    break
                continue
            result.extend(self._by_key[key].values())
        return result

    def partition(self, prefix_zero: str) -> tuple[list[Entry], list[Entry]]:
        """Split all entries into (covered by ``prefix_zero``, the rest).

        Used when a replica group splits its path: the '0'-side keeps the
        first list, the '1'-side the second.
        """
        keep: list[Entry] = []
        give: list[Entry] = []
        zero_range = KeyRange.subtree(prefix_zero)
        for entry in self:
            (keep if zero_range.contains(entry.key) else give).append(entry)
        return keep, give

    def keys(self) -> list[str]:
        """Sorted list of distinct keys (copy)."""
        return list(self._sorted_keys)

    def clear(self) -> None:
        self._by_key.clear()
        self._sorted_keys.clear()

    def retain(self, predicate) -> int:
        """Keep only entries for which ``predicate(entry)`` is true; return #removed."""
        removed = 0
        for key in list(self._sorted_keys):
            items = self._by_key[key]
            for item_id in [i for i, e in items.items() if not predicate(e)]:
                del items[item_id]
                removed += 1
            if not items:
                del self._by_key[key]
                index = bisect.bisect_left(self._sorted_keys, key)
                del self._sorted_keys[index]
        return removed
