"""VQL lexer and parser."""

import pytest

from repro.errors import VQLSyntaxError
from repro.vql import (
    BoolOp,
    Comparison,
    FunctionCall,
    Literal,
    Not,
    Var,
    parse,
    tokenize,
)
from repro.vql.tokens import TokenType

PAPER_QUERY = """
SELECT ?name,?age,?cnt
WHERE {(?a,'name',?name) (?a,'age',?age)
 (?a,'num_of_pubs',?cnt)
 (?a,'has_published',?title) (?p,'title',?title)
 (?p,'published_in',?conf) (?c,'confname',?conf)
 (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
}
ORDER BY SKYLINE OF ?age MIN, ?cnt MAX
"""


class TestLexer:
    def test_variables(self):
        tokens = tokenize("?abc ?x_1")
        assert [t.value for t in tokens[:-1]] == ["abc", "x_1"]
        assert all(t.type is TokenType.VARIABLE for t in tokens[:-1])

    def test_strings_with_both_quotes(self):
        tokens = tokenize("'single' \"double\"")
        assert [t.value for t in tokens[:-1]] == ["single", "double"]

    def test_string_escapes(self):
        tokens = tokenize(r"'it\'s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(VQLSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("42 -7 3.14")
        assert [t.value for t in tokens[:-1]] == [42, -7, 3.14]

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select SeLeCt SELECT")
        assert all(t.type is TokenType.SELECT for t in tokens[:-1])

    def test_identifiers_keep_namespace_chars(self):
        tokens = tokenize("edist dblp:title foo.bar")
        assert [t.value for t in tokens[:-1]] == ["edist", "dblp:title", "foo.bar"]

    def test_comments_ignored(self):
        tokens = tokenize("SELECT # a comment\n?x")
        assert [t.type for t in tokens] == [
            TokenType.SELECT,
            TokenType.VARIABLE,
            TokenType.EOF,
        ]

    def test_operators(self):
        tokens = tokenize("= != < <= > >= && ||")
        # fmt: off
        assert [t.type for t in tokens[:-1]] == [
            TokenType.EQ, TokenType.NEQ, TokenType.LT, TokenType.LE,
            TokenType.GT, TokenType.GE, TokenType.AND, TokenType.OR,
        ]
        # fmt: on

    def test_position_tracking(self):
        tokens = tokenize("SELECT\n  ?x")
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_unexpected_character(self):
        with pytest.raises(VQLSyntaxError) as excinfo:
            tokenize("SELECT @")
        assert "@" in str(excinfo.value)


class TestParser:
    def test_paper_query_verbatim(self):
        query = parse(PAPER_QUERY)
        assert [v.name for v in query.select] == ["name", "age", "cnt"]
        assert len(query.groups) == 1
        group = query.groups[0]
        assert len(group.patterns) == 8
        assert len(group.filters) == 1
        assert isinstance(group.filters[0], Comparison)
        assert query.skyline[0].variable.name == "age"
        assert query.skyline[0].maximize is False
        assert query.skyline[1].maximize is True

    def test_select_star(self):
        query = parse("SELECT * WHERE {(?s,?p,?o)}")
        assert query.select_star()

    def test_select_distinct(self):
        query = parse("SELECT DISTINCT ?x WHERE {(?x,'a',1)}")
        assert query.distinct

    def test_literals_in_patterns(self):
        query = parse("SELECT ?x WHERE {(?x, 'age', 30)}")
        pattern = query.groups[0].patterns[0]
        assert pattern.predicate == Literal("age")
        assert pattern.object == Literal(30)

    def test_order_by_directions(self):
        query = parse("SELECT ?x WHERE {(?x,'a',?v)} ORDER BY ?v DESC, ?x")
        assert query.order_by[0].descending is True
        assert query.order_by[1].descending is False

    def test_limit_offset(self):
        query = parse("SELECT ?x WHERE {(?x,'a',?v)} LIMIT 5 OFFSET 10")
        assert query.limit == 5 and query.offset == 10

    def test_union_groups(self):
        query = parse("SELECT ?x WHERE {(?x,'a',1)} UNION {(?x,'b',2)}")
        assert len(query.groups) == 2

    def test_optional_group(self):
        query = parse("SELECT ?x WHERE {(?x,'a',1) OPTIONAL {(?x,'b',?y)}}")
        assert len(query.groups[0].optionals) == 1

    def test_filter_boolean_operators(self):
        query = parse("SELECT ?x WHERE {(?x,'a',?v) FILTER ?v > 1 AND ?v < 9 OR NOT ?v = 5}")
        expr = query.groups[0].filters[0]
        assert isinstance(expr, BoolOp) and expr.op == "or"
        assert isinstance(expr.operands[1], Not)

    def test_function_call_arguments(self):
        query = parse("SELECT ?x WHERE {(?x,'n',?s) FILTER contains(?s, 'abc')}")
        call = query.groups[0].filters[0]
        assert isinstance(call, FunctionCall)
        assert call.name == "contains"
        assert call.args == (Var("s"), Literal("abc"))

    def test_parenthesized_expression(self):
        query = parse("SELECT ?x WHERE {(?x,'a',?v) FILTER (?v > 1 OR ?v < 0) AND ?v != 5}")
        expr = query.groups[0].filters[0]
        assert isinstance(expr, BoolOp) and expr.op == "and"

    def test_skyline_requires_direction(self):
        with pytest.raises(VQLSyntaxError):
            parse("SELECT ?x WHERE {(?x,'a',?v)} ORDER BY SKYLINE OF ?v")

    def test_missing_where(self):
        with pytest.raises(VQLSyntaxError):
            parse("SELECT ?x {(?x,'a',1)}")

    def test_empty_group_rejected(self):
        with pytest.raises(VQLSyntaxError):
            parse("SELECT ?x WHERE {}")

    def test_unclosed_group(self):
        with pytest.raises(VQLSyntaxError):
            parse("SELECT ?x WHERE {(?x,'a',1)")

    def test_pattern_arity_enforced(self):
        with pytest.raises(VQLSyntaxError):
            parse("SELECT ?x WHERE {(?x,'a')}")

    def test_negative_limit_rejected(self):
        with pytest.raises(VQLSyntaxError):
            parse("SELECT ?x WHERE {(?x,'a',1)} LIMIT -1")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(VQLSyntaxError):
            parse("SELECT ?x WHERE {(?x,'a',1)} BOGUS extra")

    def test_error_carries_position(self):
        with pytest.raises(VQLSyntaxError) as excinfo:
            parse("SELECT ?x\nWHERE {(?x 'a', 1)}")
        assert excinfo.value.line == 2
