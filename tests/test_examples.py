"""Every example script must run clean end to end (deliverable b)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted((pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print their results"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    expected = {
        "quickstart.py",
        "conference_browser.py",
        "heterogeneous_integration.py",
        "planetlab_demo.py",
        "overload_demo.py",
    }
    assert expected <= names
