"""Minimal discrete-event kernel.

Used by the time-driven experiments (churn sessions in E7, anti-entropy
rounds in E9) and by the event-driven query transport
(:class:`~repro.net.scheduler.EventScheduler`), which schedules routed
operations as callback chains so parallel fan-outs interleave in simulated
time.  Events are ``(time, seq, callback)`` triples in a heap; ``seq``
breaks ties FIFO so runs are deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable


class EventSimulator:
    """A deterministic discrete-event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (delay must be >= 0)."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))
        self._seq += 1

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute ``time`` (must not be in the past)."""
        self.schedule(time - self.now, callback)

    def run(self, until: float | None = None) -> None:
        """Process events in time order, optionally stopping at ``until``.

        When ``until`` is given the clock is advanced to it even if the heap
        drains earlier, so periodic observers see a consistent end time.
        """
        while self._heap:
            time, _seq, callback = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self.now = time
            callback()
        if until is not None and self.now < until:
            self.now = until

    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._heap)
