"""E1 — logarithmic search complexity in the number of nodes.

Paper §2: "Structured P2P overlays ... offer logarithmic search complexity in
the number of nodes"; §2 cost model: "worst-case guarantees (almost all are
logarithmic)".

Sweep the network size from 16 to 1024 peers, run a fixed batch of key
lookups, and report mean/p95 routing hops and messages.  The fitted slope of
mean hops against log2(N) should be ≈ 0.5-1.5 hops per doubling (the oracle
builder's fanout-4 references provide shortcuts, so the constant is below 1).
"""

from __future__ import annotations

import random
import string


from repro.bench import ResultTable, fit_log2_slope, mean, percentile
from repro.pgrid import build_network, bulk_load, encode_string

from conftest import emit

SIZES = [16, 32, 64, 128, 256, 512, 1024]
LOOKUPS_PER_SIZE = 150
NUM_KEYS = 300


def _words(count: int, seed: int) -> list[str]:
    rng = random.Random(seed)
    return ["".join(rng.choice(string.ascii_lowercase) for _ in range(8)) for _ in range(count)]


def _build(num_peers: int, seed: int = 1):
    words = _words(NUM_KEYS, seed)
    keys = [encode_string(w) for w in words]
    pnet = build_network(num_peers, replication=2, seed=seed, split_by="population")
    bulk_load(pnet, [(k, w, w) for k, w in zip(keys, words)])
    return pnet, words, keys


def _measure(pnet, keys, lookups: int):
    rng = random.Random(42)
    hops, messages = [], []
    for _ in range(lookups):
        key = rng.choice(keys)
        _entries, trace = pnet.lookup(key)
        hops.append(float(trace.hops))
        messages.append(float(trace.messages))
    return hops, messages


def test_e1_hops_grow_logarithmically(benchmark):
    table = ResultTable(
        "E1: lookup cost vs network size (paper: logarithmic guarantees)",
        ["peers", "groups", "mean hops", "p95 hops", "mean msgs", "log2(N)"],
    )
    sizes, mean_hops = [], []
    networks = {}
    for size in SIZES:
        pnet, _words_, keys = _build(size)
        networks[size] = (pnet, keys)
        hops, messages = _measure(pnet, keys, LOOKUPS_PER_SIZE)
        sizes.append(size)
        mean_hops.append(mean(hops))
        import math

        table.add_row(
            size,
            len(pnet.leaf_groups()),
            mean(hops),
            percentile(hops, 95),
            mean(messages),
            math.log2(size),
        )
    slope = fit_log2_slope(sizes, mean_hops)
    table.add_row("slope", "", f"{slope:.3f} hops/doubling", "", "", "")
    emit(table)

    # The paper's headline guarantee: hop growth is logarithmic, i.e. a
    # straight line against log2(N) with a small positive slope.
    assert 0.2 <= slope <= 1.6, f"hop growth not logarithmic: slope={slope}"
    # Absolute sanity: even at 1024 peers, lookups stay in single-digit hops.
    assert mean_hops[-1] < 12

    pnet, keys = networks[256]
    rng = random.Random(7)
    benchmark(lambda: pnet.lookup(rng.choice(keys)))
