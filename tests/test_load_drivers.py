"""Concurrent workload drivers, replica diffusion, churn under load.

* open-loop and closed-loop drivers keep many operations in flight on one
  clock and are deterministic per seed (identical delivery log, utilization
  snapshot and latency percentiles across runs);
* replica-based query-load diffusion spreads a hot key's work over its
  replica group (lower peak busy time, same answers);
* a peer failing mid-queue has its in-flight work re-routed: every issued
  operation ends completed or failed, the heap drains, and the outcome is
  deterministic (the churn regression of this PR).
"""

import random

import pytest

from repro.bench import percentile
from repro.load import (
    ClosedLoopDriver,
    LoadModel,
    OpenLoopDriver,
    ServiceProfile,
    choose_replica,
    completed_latencies,
    summarize,
)
from repro.net import ConstantLatency
from repro.net.churn import ChurnEvent, generate_session_trace
from repro.pgrid import build_network, bulk_load, encode_string
from repro.pgrid.load_balancing import query_load_imbalance

_WORD_RNG = random.Random(4096)
WORDS = sorted(
    {
        "".join(_WORD_RNG.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(7))
        for _ in range(40)
    }
)
ITEMS = [(encode_string(w), f"id-{w}", f"val-{w}") for w in WORDS]
KEYS = [key for key, _id, _value in ITEMS]
PROFILE = {"lookup": 0.002, "result": 0.0002}


def _overlay(seed=31, replication=3, num_peers=48):
    pnet = build_network(
        num_peers,
        replication=replication,
        seed=seed,
        split_by="population",
        latency_model=ConstantLatency(0.01),
    )
    bulk_load(pnet, ITEMS)
    return pnet


class TestOpenLoopDriver:
    def _run(self, seed=5, diffusion="none"):
        pnet = _overlay()
        model = LoadModel(ServiceProfile(PROFILE))
        with pnet.event_driven(load=model) as sched:
            driver = OpenLoopDriver(
                pnet, KEYS, rate=150, horizon=1.0, key_skew=0.9, seed=seed, diffusion=diffusion
            )
            records = driver.run()
            pending = sched.pending()
        return records, model, list(sched.log), pending

    def test_all_ops_complete_and_heap_drains(self):
        records, model, log, pending = self._run()
        assert pending == 0
        assert records and all(r.completed is not None for r in records)
        assert all(r.ok for r in records)
        # Every lookup found its bulk-loaded entry.
        assert all(r.entries == 1 for r in records if r.kind == "lookup")
        stats = summarize(records)
        assert stats["ok"] == stats["ops"] and stats["failed"] == 0
        assert stats["p95"] >= stats["p50"] > 0.0

    def test_same_seed_identical_log_utilization_and_percentiles(self):
        a_records, a_model, a_log, _ = self._run(seed=5)
        b_records, b_model, b_log, _ = self._run(seed=5)
        assert a_log == b_log
        assert a_model.snapshot(horizon=1.0) == b_model.snapshot(horizon=1.0)
        a_lat, b_lat = completed_latencies(a_records), completed_latencies(b_records)
        for p in (50.0, 90.0, 95.0, 99.0):
            assert percentile(a_lat, p) == percentile(b_lat, p)

    def test_different_seed_differs(self):
        _, _, a_log, _ = self._run(seed=5)
        _, _, b_log, _ = self._run(seed=6)
        assert a_log != b_log

    def test_offered_load_raises_latency(self):
        """More offered load on the same overlay => worse tail latency."""

        def p95_at(rate):
            pnet = _overlay()
            model = LoadModel(ServiceProfile({"lookup": 0.004, "result": 0.0005}))
            with pnet.event_driven(load=model):
                driver = OpenLoopDriver(
                    pnet,
                    KEYS,
                    rate=rate,
                    horizon=1.0,
                    key_skew=1.2,
                    gateways=[pnet.peers[0]],
                    seed=7,
                )
                records = driver.run()
            return summarize(records)["p95"], max(model.utilization(1.0).values())

        low, low_util = p95_at(50)
        high, high_util = p95_at(800)
        assert high_util > low_util
        assert high > low

    def test_mixed_inserts_apply_to_all_replicas(self):
        pnet = _overlay()
        model = LoadModel(ServiceProfile(PROFILE))
        with pnet.event_driven(load=model):
            driver = OpenLoopDriver(pnet, KEYS, rate=100, horizon=0.5, insert_fraction=0.5, seed=11)
            records = driver.run()
        inserts = [r for r in records if r.kind == "insert"]
        assert inserts and all(r.ok for r in inserts)
        for record in inserts:
            group = pnet.responsible_group(record.key)
            stored = [p for p in group if p.store.get_entry(record.key, f"drv-{record.index}")]
            assert stored, record.index
            # Replication: every online member of the group got the push.
            assert len(stored) == len([p for p in group if p.online])


class TestClosedLoopDriver:
    def test_every_client_completes_its_ops(self):
        pnet = _overlay()
        model = LoadModel(ServiceProfile(PROFILE))
        with pnet.event_driven(load=model) as sched:
            driver = ClosedLoopDriver(
                pnet, KEYS, clients=5, ops_per_client=8, think_time=0.005, seed=3
            )
            records = driver.run()
            assert sched.pending() == 0
        assert len(records) == 5 * 8
        assert all(r.ok for r in records)

    def test_closed_loop_is_deterministic(self):
        def run():
            pnet = _overlay()
            model = LoadModel(ServiceProfile(PROFILE))
            with pnet.event_driven(load=model) as sched:
                ClosedLoopDriver(pnet, KEYS, clients=4, ops_per_client=6, seed=9).run()
                return list(sched.log)

        assert run() == run()


class TestReplicaDiffusion:
    def _hot_run(self, diffusion):
        """One gateway hammering one hot key: the diffusion stress case."""
        pnet = _overlay(seed=77, replication=4, num_peers=48)
        model = LoadModel(ServiceProfile({"lookup": 0.004, "result": 0.0001}))
        with pnet.event_driven(load=model):
            driver = OpenLoopDriver(
                pnet,
                [KEYS[8]],
                rate=300,
                horizon=1.0,
                gateways=[pnet.peers[0]],
                diffusion=diffusion,
                seed=13,
            )
            records = driver.run()
        return records, model, pnet

    @pytest.mark.parametrize("policy", ["random", "least-busy"])
    def test_diffusion_spreads_hot_key_load(self, policy):
        plain_records, plain_model, plain_net = self._hot_run("none")
        spread_records, spread_model, pnet = self._hot_run(policy)
        assert all(r.ok for r in plain_records) and all(r.ok for r in spread_records)
        population = [p.node_id for p in plain_net.peers]
        plain_imbalance = query_load_imbalance(plain_model.busy_by_peer(), population)
        spread_imbalance = query_load_imbalance(spread_model.busy_by_peer(), population)
        # Same total work, far less of it concentrated on the hottest peer.
        assert spread_imbalance["max"] < plain_imbalance["max"] / 1.5
        group = [p for p in pnet.responsible_group(KEYS[8]) if p.online]
        served = [p for p in group if spread_model.busy_by_peer().get(p.node_id, 0.0) > 0]
        assert len(served) > 1, "diffusion should hit more than one replica"
        # And the latency tail improves because queueing delay shrinks.
        assert summarize(spread_records)["p95"] < summarize(plain_records)["p95"]

    def test_least_busy_picks_the_idle_member(self):
        pnet = _overlay(seed=77, replication=3)
        model = LoadModel(ServiceProfile({"lookup": 1.0}))
        destination = pnet.responsible_group(KEYS[0])[0]
        members = sorted(
            [destination] + [pnet.net.nodes[r] for r in destination.online_replicas()],
            key=lambda p: p.node_id,
        )
        assert len(members) >= 2
        # Pile synthetic backlog on everyone except one member.
        idle = members[-1]
        for peer in members:
            if peer is not idle:
                model.queue(peer.node_id).admit(0.0, 5.0)
        chosen = choose_replica(
            destination, policy="least-busy", rng=random.Random(0), load=model, now=0.0
        )
        assert chosen is idle

    def test_pnet_lookup_diffusion_returns_same_entries(self):
        pnet = _overlay(seed=31, replication=3)
        pnet.replica_diffusion = "random"
        destinations = set()
        for _ in range(12):
            entries, _trace, destination = pnet.lookup_at(KEYS[3], start=pnet.peers[0])
            assert {(e.item_id, e.value) for e in entries} == {
                (f"id-{WORDS[3]}", f"val-{WORDS[3]}")
            }
            destinations.add(destination.node_id)
        assert len(destinations) > 1  # reads actually spread over the group
        pnet.replica_diffusion = "none"
        _entries, _trace, pinned = pnet.lookup_at(KEYS[3], start=pnet.peers[0])
        _entries, _trace, again = pnet.lookup_at(KEYS[3], start=pnet.peers[0])
        assert pinned is again  # route cache pins without diffusion

    def test_lookup_many_diffuses_the_batched_read_path(self):
        """The bulk read path (joins, MQP probes) must spread reads too."""

        def serving_peers(policy):
            pnet = _overlay(seed=31, replication=3)
            pnet.replica_diffusion = policy
            group_ids = {p.node_id for p in pnet.responsible_group(KEYS[3])}
            served = set()
            with pnet.event_driven() as sched:
                for _ in range(12):
                    results, _trace = pnet.lookup_many([KEYS[3]], start=pnet.peers[0])
                    assert {(e.item_id, e.value) for e in results[KEYS[3]]} == {
                        (f"id-{WORDS[3]}", f"val-{WORDS[3]}")
                    }
                served = {d.dst for d in sched.log if d.dst in group_ids}
            return served

        assert len(serving_peers("random")) > 1
        assert len(serving_peers("none")) == 1  # pinned without diffusion

    def test_load_model_backlog_read_does_not_create_queues(self):
        model = LoadModel(ServiceProfile({"op": 1.0}))
        assert model.backlog("ghost", now=0.0) == 0.0
        assert model.busy_by_peer() == {}  # the read left no phantom peer
        model.admit("real", 0.0, "op")
        assert model.backlog("real", now=0.5) == pytest.approx(0.5)
        assert set(model.busy_by_peer()) == {"real"}


class TestChurnUnderLoad:
    def test_partial_route_accounting_survives_dead_hops(self):
        """A failed route's partial-hop replay must stop at a dead hop, not
        raise NodeUnreachableError inside the simulator (driver-crash bug)."""
        from repro.load.drivers import _OpEngine

        pnet = _overlay(seed=31, replication=3)
        with pnet.event_driven() as sched:
            engine = _OpEngine(pnet, random.Random(0))
            a, b, c = pnet.peers[0], pnet.peers[1], pnet.peers[2]
            c.fail()  # the chain's second hop destination is already dead
            engine._account_partial([(a.node_id, b.node_id), (b.node_id, c.node_id)], sched.now)
            sched.run()  # must not raise
            assert [(d.src, d.dst) for d in sched.log] == [(a.node_id, b.node_id)]
            assert sched.pending() == 0

    def test_mid_queue_failure_redirects_queued_work(self):
        """A destination dies while requests are queued on it: the affected
        operations re-route to a replica and still answer."""
        pnet = _overlay(seed=31, replication=3)
        hot_key = KEYS[5]
        gateway = next(p for p in pnet.peers if p not in pnet.responsible_group(hot_key))
        # Discover the peer the gateway's lookups will pin to.
        entries, _trace, victim = pnet.lookup_at(hot_key, start=gateway)
        assert entries
        model = LoadModel(ServiceProfile({"lookup": 0.05, "result": 0.0}))
        churn = [ChurnEvent(time=0.08, node_id=victim.node_id, online=False)]
        with pnet.event_driven(load=model) as sched:
            driver = OpenLoopDriver(
                pnet, [hot_key], rate=120, horizon=0.3, gateways=[gateway], seed=17
            )
            records = driver.run(churn_trace=churn)
            assert sched.pending() == 0
        assert records
        assert all(r.completed is not None for r in records)  # nothing lost
        rerouted = [r for r in records if r.reroutes > 0]
        assert rerouted, "the mid-queue failure must force re-routes"
        assert all(r.ok and r.entries == 1 for r in rerouted)
        assert all(r.ok for r in records)

    def test_session_trace_churn_is_deterministic_and_lossless(self):
        def run():
            pnet = _overlay(seed=31, replication=3)
            model = LoadModel(ServiceProfile(PROFILE))
            trace = generate_session_trace(
                [p.node_id for p in pnet.peers],
                horizon=1.5,
                mean_session=0.8,
                mean_downtime=0.2,
                rng=random.Random(42),
            )
            with pnet.event_driven(load=model) as sched:
                driver = OpenLoopDriver(pnet, KEYS, rate=150, horizon=1.5, key_skew=0.8, seed=23)
                records = driver.run(churn_trace=trace)
                pending = sched.pending()
            outcome = [
                (r.index, r.kind, r.ok, r.reroutes, round(r.completed, 9)) for r in records
            ]
            return outcome, list(sched.log), model.snapshot(), pending

        a = run()
        b = run()
        assert a == b  # identical outcomes, event log, utilization
        outcome, _log, _snap, pending = a
        assert pending == 0, "no scheduler deadlock"
        assert outcome and all(completed is not None for *_rest, completed in outcome)
        assert any(ok for _i, _k, ok, _r, _c in outcome)
