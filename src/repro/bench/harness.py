"""Experiment harness: result tables and small statistics helpers.

Every benchmark prints a paper-style table through :class:`ResultTable`
(fixed-width for the console, also exportable as Markdown for
EXPERIMENTS.md), and EXPERIMENTS.md quotes those tables verbatim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class ResultTable:
    """A titled table of experiment results."""

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(list(values))

    def _formatted(self) -> list[list[str]]:
        out = []
        for row in self.rows:
            formatted = []
            for value in row:
                if isinstance(value, float):
                    formatted.append(f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}")
                else:
                    formatted.append(str(value))
            out.append(formatted)
        return out

    def render(self) -> str:
        body = self._formatted()
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in body)) if body else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [
            f"== {self.title} ==",
            " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def markdown(self) -> str:
        body = self._formatted()
        lines = [
            "| " + " | ".join(self.columns) + " |",
            "|" + "|".join("---" for _ in self.columns) + "|",
        ]
        for row in body:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)


def mean(values: list[float]) -> float:
    """Arithmetic mean (0.0 for an empty list)."""
    return sum(values) / len(values) if values else 0.0


def median(values: list[float]) -> float:
    """Median via the interpolated 50th percentile."""
    return percentile(values, 50.0)


def percentile(values: list[float], p: float) -> float:
    """Linear-interpolated percentile (p in [0, 100])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    interpolated = ordered[low] * (1 - fraction) + ordered[high] * fraction
    # Rounding can escape [low, high] for denormal inputs (e.g. two copies of
    # 5e-324 interpolate to 0.0); clamp to keep the percentile inside the data.
    return min(max(interpolated, ordered[low]), ordered[high])


def fit_log2_slope(sizes: list[int], values: list[float]) -> float:
    """Least-squares slope of ``values`` against ``log2(sizes)``.

    Used by E1 to verify logarithmic growth: a slope of ~1 means one extra
    hop per doubling of the network.
    """
    if len(sizes) != len(values) or len(sizes) < 2:
        raise ValueError("need at least two matching points")
    xs = [math.log2(size) for size in sizes]
    mean_x = mean(xs)
    mean_y = mean(values)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, values))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    return numerator / denominator if denominator else 0.0
