"""The peer load model: service times, FIFO queueing, stats threading.

Covers the load subsystem from the queue arithmetic up through the event
scheduler:

* service profiles and heterogeneous speed factors;
* FIFO queue mechanics (wait = backlog, depth, utilization);
* delivery completion = link latency + queueing delay + service time, with
  exact hand-computed instants on a pinned tiny overlay;
* the zero-profile identity: a zero-cost load model reproduces the plain
  event scheduler byte for byte (messages, hops, completion times, event
  log) — the acceptance criterion that ties E12 back to PR 3;
* ``StatsFrame.snapshot()`` gains queueing fields only when a load model is
  active, and stays byte-for-byte identical for trace-mode runs;
* a hypothesis property: sojourn >= service >= 0 for every admitted job.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load import (
    ZERO_PROFILE,
    LoadModel,
    NodeQueue,
    ServiceProfile,
    draw_speed_factors,
)
from repro.net import ConstantLatency, Network, ZeroLatency
from repro.pgrid import build_network, bulk_load, encode_string
from repro.pgrid.datastore import Entry
from repro.pgrid.network import PGridNetwork

_WORD_RNG = random.Random(202)
WORDS = sorted(
    {
        "".join(_WORD_RNG.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(7))
        for _ in range(30)
    }
)
ITEMS = [(encode_string(w), f"id-{w}", f"val-{w}") for w in WORDS]
KEYS = [key for key, _id, _value in ITEMS]


class TestServiceProfile:
    def test_cost_per_kind_default_and_per_item(self):
        profile = ServiceProfile({"lookup": 0.004}, default=0.001, per_item=0.0005)
        assert profile.cost("lookup") == pytest.approx(0.0045)
        assert profile.cost("lookup", size=10) == pytest.approx(0.009)
        assert profile.cost("unknown") == pytest.approx(0.0015)
        assert not profile.is_zero()
        assert ZERO_PROFILE.is_zero()
        assert ZERO_PROFILE.cost("anything", 999) == 0.0

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            ServiceProfile({"lookup": -0.1})
        with pytest.raises(ValueError):
            ServiceProfile(default=-1.0)
        with pytest.raises(ValueError):
            ServiceProfile(per_item=-0.5)


class TestSpeedFactors:
    def test_constant_uniform_lognormal(self):
        ids = [f"peer-{i}" for i in range(50)]
        constant = draw_speed_factors(ids, distribution="constant")
        assert set(constant.values()) == {1.0}
        uniform = draw_speed_factors(ids, distribution="uniform", low=0.5, high=2.0, seed=1)
        assert all(0.5 <= f <= 2.0 for f in uniform.values())
        lognormal = draw_speed_factors(ids, distribution="lognormal", sigma=0.6, seed=1)
        assert all(f > 0 for f in lognormal.values())
        assert len(set(lognormal.values())) > 1  # genuinely heterogeneous

    def test_deterministic_and_order_independent(self):
        ids = [f"p{i}" for i in range(20)]
        a = draw_speed_factors(ids, seed=7)
        b = draw_speed_factors(list(reversed(ids)), seed=7)
        assert a == b

    def test_rejects_unknown_distribution_and_bad_speeds(self):
        with pytest.raises(ValueError):
            draw_speed_factors(["a"], distribution="gaussian")
        with pytest.raises(ValueError):
            LoadModel(speeds=0.0)
        with pytest.raises(ValueError):
            LoadModel(speeds={"a": -1.0})


class TestNodeQueue:
    def test_fifo_backlog_arithmetic(self):
        queue = NodeQueue()
        # Idle server: no wait.
        start, finish, depth = queue.admit(1.0, 0.5)
        assert (start, finish, depth) == (1.0, 1.5, 0)
        # Arrives while busy: waits for the backlog.
        start, finish, depth = queue.admit(1.2, 0.5)
        assert (start, finish, depth) == (1.5, 2.0, 1)
        # Third job queues behind both.
        start, finish, depth = queue.admit(1.3, 1.0)
        assert (start, finish, depth) == (2.0, 3.0, 2)
        assert queue.backlog(2.5) == pytest.approx(0.5)
        assert queue.backlog(10.0) == 0.0
        # After the backlog drains the server is idle again.
        start, finish, depth = queue.admit(5.0, 0.1)
        assert (start, finish, depth) == (5.0, 5.1, 0)
        assert queue.jobs == 4
        assert queue.busy_time == pytest.approx(2.1)
        assert queue.total_wait == pytest.approx(0.3 + 0.7)
        assert queue.total_sojourn == pytest.approx(queue.total_wait + queue.busy_time)
        assert queue.max_depth == 3

    def test_rejects_negative_service(self):
        with pytest.raises(ValueError):
            NodeQueue().admit(0.0, -1e-9)

    def test_speed_scales_service_time(self):
        model = LoadModel(ServiceProfile({"op": 0.01}), speeds={"fast": 2.0, "slow": 0.5})
        assert model.service_time("fast", "op") == pytest.approx(0.005)
        assert model.service_time("slow", "op") == pytest.approx(0.02)
        assert model.service_time("other", "op") == pytest.approx(0.01)


def _tiny_overlay():
    """Hand-built 3-peer trie with pinned links (same shape as PR 3's tests)."""
    pnet = PGridNetwork(Network(latency_model=ZeroLatency(), seed=0))
    a = pnet.add_peer("a", "00")
    b = pnet.add_peer("b", "01")
    c = pnet.add_peer("c", "1")
    a.routing.add(0, "c")
    a.routing.add(1, "b")
    b.routing.add(0, "c")
    b.routing.add(1, "a")
    c.routing.add(0, "a")
    pnet.net.set_link_latency("a", "b", 0.2)
    pnet.net.set_link_latency("a", "c", 0.5)
    b.store.put(Entry(key="011", item_id="x", value="vb", version=1))
    c.store.put(Entry(key="10", item_id="y", value="vc", version=1))
    return pnet, a


class TestQueueingOnTheScheduler:
    def test_completion_is_link_plus_queue_plus_service(self):
        pnet, a = _tiny_overlay()
        # Every lookup costs 0.3 s at the server; replies are free.
        model = LoadModel(ServiceProfile({"lookup": 0.3}))
        with pnet.event_driven(load=model):
            results, trace = pnet.lookup_many(["011", "10"], start=a)
        # Chain to b: link 0.2, service 0.3 -> request done 0.5; reply (size
        # message, also kind "lookup") arrives 0.7 and is serviced at a by
        # 1.0.  Chain to c: link 0.5 + 0.3 = 0.8; reply arrives 1.3, but a's
        # server is free (its earlier job finished at 1.0), done 1.6.
        assert trace.latency == pytest.approx(1.6)
        assert trace.messages == 4 and trace.hops == 2
        assert {(e.item_id, e.value) for e in results["011"]} == {("x", "vb")}
        queue_a = model.queue("a")
        assert queue_a.jobs == 2 and queue_a.busy_time == pytest.approx(0.6)
        assert queue_a.total_wait == 0.0  # replies never overlapped at a

    def test_queueing_delay_when_two_jobs_collide(self):
        pnet, a = _tiny_overlay()
        model = LoadModel(ServiceProfile({"ping": 1.0}))
        with pnet.event_driven(load=model) as sched:
            done = []
            # Two messages arrive at c at t=0.5 (same link, same instant):
            # the second waits a full service time.
            sched.send_at(0.0, "a", "c", "ping", on_delivered=done.append)
            sched.send_at(0.0, "a", "c", "ping", on_delivered=done.append)
            sched.run()
        assert done == [pytest.approx(1.5), pytest.approx(2.5)]
        assert model.queue("c").total_wait == pytest.approx(1.0)
        assert model.queue("c").max_depth == 2
        samples = model.samples
        assert [s.wait for s in samples] == [pytest.approx(0.0), pytest.approx(1.0)]
        assert all(s.sojourn >= s.service >= 0.0 for s in samples)

    def test_heterogeneous_speeds_make_slow_peers_bottlenecks(self):
        pnet, a = _tiny_overlay()
        model = LoadModel(ServiceProfile({"ping": 0.2}), speeds={"b": 2.0, "c": 0.5})
        with pnet.event_driven(load=model) as sched:
            done = {}
            sched.send_at(0.0, "a", "b", "ping", on_delivered=lambda t: done.update(b=t))
            sched.send_at(0.0, "a", "c", "ping", on_delivered=lambda t: done.update(c=t))
            sched.run()
        assert done["b"] == pytest.approx(0.2 + 0.1)  # fast peer: half the cost
        assert done["c"] == pytest.approx(0.5 + 0.4)  # slow peer: double

    def test_utilization_and_snapshot(self):
        pnet, a = _tiny_overlay()
        model = LoadModel(ServiceProfile({"lookup": 0.3}))
        with pnet.event_driven(load=model):
            pnet.lookup_many(["011", "10"], start=a)
        util = model.utilization(2.0)
        assert util["b"] == pytest.approx(0.15)
        snap = model.snapshot(horizon=2.0)
        assert snap["b"]["jobs"] == 1
        assert snap["b"]["utilization"] == pytest.approx(0.15)
        assert list(snap) == sorted(snap)
        model.reset()
        assert model.snapshot() == {} and model.samples == []


class TestZeroProfileIdentity:
    """A zero-cost load model must reproduce PR 3's event mode exactly."""

    def _run(self, load):
        pnet = build_network(
            32, replication=2, seed=55, split_by="population", latency_model=ConstantLatency(0.05)
        )
        bulk_load(pnet, ITEMS)
        with pnet.event_driven(load=load) as sched:
            results, lookup_trace = pnet.lookup_many(KEYS, start=pnet.peers[0])
            insert_trace = pnet.insert_many(
                [(encode_string(f"fresh{i}"), f"fid{i}", i) for i in range(8)],
                start=pnet.peers[1],
            )
        found = {key: {(e.item_id, e.value) for e in entries} for key, entries in results.items()}
        return list(sched.log), lookup_trace, insert_trace, found

    def test_messages_hops_completions_and_log_identical(self):
        plain = self._run(load=None)
        zeroed = self._run(load=LoadModel(ZERO_PROFILE))
        assert plain[0] == zeroed[0]  # identical delivery log, instant for instant
        assert plain[1] == zeroed[1]  # lookup trace: messages, hops, latency, completion
        assert plain[2] == zeroed[2]  # insert trace
        assert plain[3] == zeroed[3]  # results

    def test_zero_model_still_counts_jobs(self):
        model = LoadModel(ZERO_PROFILE)
        self_run = self._run(load=model)
        assert self_run[0]  # messages flowed
        assert sum(q.jobs for q in model._queues.values()) == len(self_run[0])
        assert all(s.sojourn == 0.0 for s in model.samples)


class TestStatsFrameGating:
    def _trace_mode_snapshot(self):
        pnet = build_network(24, replication=2, seed=66, split_by="population")
        bulk_load(pnet, ITEMS)
        with pnet.net.frame() as frame:
            pnet.lookup_many(KEYS[:10], start=pnet.peers[0])
        return frame.snapshot()

    def test_trace_mode_snapshot_is_unchanged_byte_for_byte(self):
        snap = self._trace_mode_snapshot()
        # The historical shape: exactly these keys, no queueing section.
        assert list(snap) == ["messages", "bytes", "by_kind"]
        rebuilt = {
            "messages": snap["messages"],
            "bytes": snap["bytes"],
            "by_kind": dict(snap["by_kind"]),
        }
        assert json.dumps(snap, sort_keys=True) == json.dumps(rebuilt, sort_keys=True)
        # Two identical runs serialize identically (stable for E1-E11 tables).
        assert json.dumps(snap, sort_keys=True) == json.dumps(
            self._trace_mode_snapshot(), sort_keys=True
        )

    def test_event_mode_without_load_is_also_unchanged(self):
        pnet = build_network(24, replication=2, seed=66, split_by="population")
        bulk_load(pnet, ITEMS)
        with pnet.net.frame() as frame, pnet.event_driven():
            pnet.lookup_many(KEYS[:10], start=pnet.peers[0])
        assert "queueing" not in frame.snapshot()

    def test_load_model_adds_queueing_fields(self):
        pnet = build_network(24, replication=2, seed=66, split_by="population")
        bulk_load(pnet, ITEMS)
        model = LoadModel(ServiceProfile({"lookup": 0.01}))
        with pnet.net.frame() as frame, pnet.event_driven(load=model):
            pnet.lookup_many(KEYS[:10], start=pnet.peers[0])
        snap = frame.snapshot()
        assert "queueing" in snap
        totals = snap["queueing"]
        assert sum(stats["jobs"] for stats in totals.values()) == frame.messages
        assert all(stats["sojourn"] >= stats["busy"] >= 0.0 for stats in totals.values())
        # The global ledger saw the same service totals.
        assert pnet.net.stats.total.snapshot()["queueing"] == totals


@given(
    costs=st.lists(st.floats(0.0, 5.0, allow_nan=False), min_size=1, max_size=40),
    gaps=st.lists(st.floats(0.0, 3.0, allow_nan=False), min_size=1, max_size=40),
    speed=st.floats(0.1, 10.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_property_sojourn_geq_service_geq_zero(costs, gaps, speed):
    """Every admitted job: sojourn >= service >= 0, and FIFO never reorders."""
    model = LoadModel(ServiceProfile({"op": 1.0}), speeds={"n": speed})
    arrival = 0.0
    previous_finish = 0.0
    for cost, gap in zip(costs, gaps):
        arrival += gap
        model.profile.costs["op"] = cost
        start, finish, depth = model.admit("n", arrival, "op")
        assert finish >= start >= arrival >= 0.0
        assert depth >= 0
        assert finish >= previous_finish  # FIFO: completions are monotone
        previous_finish = finish
    for sample in model.samples:
        assert sample.sojourn >= sample.service >= 0.0
        assert sample.wait >= 0.0
        assert sample.sojourn == pytest.approx(sample.wait + sample.service)
