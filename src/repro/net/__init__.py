"""Simulated message-passing network substrate (layer 0 of Fig. 1).

The real UniStore runs on TCP/IP; this package replaces it with a
deterministic, seedable simulation.  The central object is
:class:`~repro.net.network.Network`: peers register under a node id, and every
overlay message goes through :meth:`Network.send`, which

* refuses delivery to offline nodes (:class:`~repro.errors.NodeUnreachableError`),
* samples a per-link latency from the configured latency model, and
* accounts messages/bytes into global and per-query statistics frames.

Query answer times are computed in one of two execution models:

* the *causal trace* model described in DESIGN.md §7 — sequential message
  chains add latencies, parallel fan-outs take the maximum branch latency
  analytically (:class:`~repro.net.trace.Trace`); and
* the *event-driven* model — messages are discrete events on a simulated
  clock (:class:`~repro.net.scheduler.EventScheduler` over
  :class:`~repro.net.simulator.EventSimulator`), so concurrent fan-outs
  genuinely interleave and completion times are measured, not composed.
"""

from repro.net.churn import ChurnModel, ChurnEvent, generate_session_trace
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    PlanetLabLatency,
    UniformLatency,
    ZeroLatency,
)
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import Node
from repro.net.scheduler import Delivery, EventScheduler
from repro.net.simulator import EventSimulator
from repro.net.stats import NetworkStats, QueueLedger, StatsFrame
from repro.net.trace import Trace

__all__ = [
    "Network",
    "Node",
    "Message",
    "Trace",
    "NetworkStats",
    "StatsFrame",
    "QueueLedger",
    "EventSimulator",
    "EventScheduler",
    "Delivery",
    "LatencyModel",
    "ZeroLatency",
    "ConstantLatency",
    "UniformLatency",
    "PlanetLabLatency",
    "ChurnModel",
    "ChurnEvent",
    "generate_session_trace",
]
