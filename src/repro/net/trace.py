"""Causal execution traces.

A :class:`Trace` records the cost of a (possibly distributed) operation as
observed by its initiator: the number of overlay messages on the causal path,
the number of sequential hops on the *critical path*, and the critical-path
latency.  Traces compose:

* ``a.then(b)`` — b causally follows a (latency and hops add),
* ``Trace.parallel([...])`` — branches fan out concurrently (messages add,
  latency/hops take the slowest branch).

This is the execution model all physical operators report through; the
"query answer time" in the benchmarks is ``trace.latency`` of the root
operator.

Traces additionally carry a ``completion_time``: the absolute simulated-time
instant at which the operation's last event fired when it ran in event-driven
mode (see :mod:`repro.net.scheduler`).  Purely analytic traces leave it at
``0.0``.  Under composition the completion time is the *latest* involved
instant — sequential and parallel composition both take the max, because the
field is an absolute timestamp, not a duration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import ClassVar


@dataclass(frozen=True)
class Trace:
    """Cost of one operation: total messages, critical-path hops/latency."""

    messages: int = 0
    hops: int = 0
    latency: float = 0.0
    completion_time: float = 0.0

    ZERO: ClassVar["Trace"]  # populated below

    def then(self, other: "Trace") -> "Trace":
        """Sequential composition: ``other`` starts after ``self`` finishes."""
        return Trace(
            messages=self.messages + other.messages,
            hops=self.hops + other.hops,
            latency=self.latency + other.latency,
            completion_time=max(self.completion_time, other.completion_time),
        )

    @staticmethod
    def parallel(branches: "list[Trace] | tuple[Trace, ...]") -> "Trace":
        """Concurrent composition: all branches start at the same instant."""
        branches = list(branches)
        if not branches:
            return Trace.ZERO
        return Trace(
            messages=sum(b.messages for b in branches),
            hops=max(b.hops for b in branches),
            latency=max(b.latency for b in branches),
            completion_time=max(b.completion_time for b in branches),
        )

    @staticmethod
    def hop(latency: float, at: float = 0.0) -> "Trace":
        """A single message taking ``latency`` seconds (delivered at ``at``)."""
        return Trace(messages=1, hops=1, latency=latency, completion_time=at)

    def finished_at(self, at: float) -> "Trace":
        """Copy of this trace stamped with an absolute completion instant."""
        return replace(self, completion_time=at)

    def __add__(self, other: "Trace") -> "Trace":
        """``+`` is sequential composition (alias of :meth:`then`)."""
        return self.then(other)


Trace.ZERO = Trace(0, 0, 0.0)
