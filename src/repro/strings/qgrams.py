"""q-gram extraction and the count filter for bounded edit distance.

The distributed q-gram index (paper ref. [6]) stores, for every indexed
string, one posting per q-gram.  A similarity predicate ``edist(s, t) <= k``
is answered by fetching the postings of ``t``'s q-grams and keeping only
candidates that share at least :func:`count_filter_threshold` q-grams — a
*sound* filter: a true match is never dropped (proved in Gravano et al.,
VLDB 1999), so only the surviving candidates need exact verification.

Strings are padded with :data:`PAD_CHAR` on both ends (q-1 copies) so that
prefix/suffix characters contribute as many q-grams as interior ones.
"""

from __future__ import annotations

from collections import Counter

#: Padding character prepended/appended to strings before q-gram extraction.
#: ``\x01`` sorts below every printable character and cannot appear in data.
PAD_CHAR = "\x01"


def qgrams(s: str, q: int = 3, pad: bool = True) -> list[str]:
    """Return the list of (overlapping) q-grams of ``s`` in order.

    With ``pad=True`` the string is extended with ``q-1`` pad characters on
    each side, yielding ``len(s) + q - 1`` grams; without padding a string
    shorter than ``q`` yields no grams.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if pad and q > 1:
        s = PAD_CHAR * (q - 1) + s + PAD_CHAR * (q - 1)
    return [s[i : i + q] for i in range(len(s) - q + 1)]


def positional_qgrams(s: str, q: int = 3, pad: bool = True) -> list[tuple[int, str]]:
    """Return ``(position, gram)`` pairs for ``s``.

    Positional q-grams allow a tighter filter (position offsets bounded by the
    edit distance); UniStore's index stores plain grams but the verification
    step can exploit positions.
    """
    return list(enumerate(qgrams(s, q=q, pad=pad)))


def qgram_overlap(a: str, b: str, q: int = 3, pad: bool = True) -> int:
    """Return the size of the (multiset) intersection of the q-grams of ``a`` and ``b``."""
    ca = Counter(qgrams(a, q=q, pad=pad))
    cb = Counter(qgrams(b, q=q, pad=pad))
    return sum((ca & cb).values())


def distinct_count_filter_threshold(query: str, q: int, k: int, pad: bool = True) -> int:
    """Count-filter threshold over *distinct* q-grams.

    UniStore's q-gram index stores one posting per distinct gram of a value,
    so the filter can only count distinct shared grams.  Each edit operation
    destroys at most ``q`` gram occurrences and therefore at most ``q``
    distinct gram types, giving the sound (slightly weaker) bound
    ``|distinct grams(query)| - k*q``.  Clamped to 0 (vacuous ⇒ caller must
    fall back to a scan).
    """
    total = len(set(qgrams(query, q=q, pad=pad)))
    return max(0, total - k * q)


def count_filter_threshold(query: str, q: int, k: int, pad: bool = True) -> int:
    """Minimum number of shared q-grams a string must have with ``query`` to
    possibly satisfy ``edit_distance <= k``.

    A single edit operation destroys at most ``q`` q-grams, so a candidate
    within distance ``k`` of a padded query with ``len(query) + q - 1`` grams
    shares at least ``len(query) + q - 1 - k*q`` of them.  The returned value
    is clamped to 0: a non-positive threshold means the filter is vacuous and
    every indexed string is a candidate (the caller should fall back to a
    scan or verify everything).
    """
    total = len(query) + q - 1 if (pad and q > 1) else max(0, len(query) - q + 1)
    return max(0, total - k * q)
