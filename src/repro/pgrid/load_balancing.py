"""Storage load balancing (paper §2, ref. [2]).

P-Grid handles "nearly arbitrary data skews" by decoupling the trie shape
from the key distribution: where data is dense, replica groups *split* their
path one bit deeper (halving the data each side holds); where data is sparse,
groups stay shallow and surplus peers *migrate* to overloaded regions to
enable further splits.  This module implements that dynamic as an iterative
protocol over an existing overlay:

* :func:`split_group` — one split of a replica group with >= 2 peers;
* :func:`rebalance` — repeat splits (recruiting donors from underloaded
  groups when an overloaded group has no partner) until every group's data
  fits the storage threshold or no move can help.

Message accounting: data handed over during splits/migrations is sent as
``balance`` messages, so E3 can also report the balancing traffic.
"""

from __future__ import annotations

import random

from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer


def group_load(peers: list[PGridPeer]) -> int:
    """Data volume of a replica group (replicas hold copies; take the max)."""
    return max((p.load for p in peers), default=0)


def split_group(pnet: PGridNetwork, path: str) -> bool:
    """Split the replica group at ``path`` one level deeper.

    Requires at least two peers in the group (each side needs an owner).
    Peers are divided between ``path+'0'`` and ``path+'1'``; each side keeps
    the entries its new path covers and hands the rest to the other side.
    Returns False when the group cannot split.
    """
    group = [p for p in pnet.peers if p.path == path]
    if len(group) < 2:
        return False
    group.sort(key=lambda p: p.node_id)
    half = len(group) // 2
    zeros, ones = group[:half], group[half:]
    level = len(path)

    for side, bit in ((zeros, "0"), (ones, "1")):
        for peer in side:
            peer.set_path(path + bit)
    for peer in zeros + ones:
        keep, give = peer.store.partition(path + "0")
        wanted = keep if peer.path[level] == "0" else give
        unwanted = give if wanted is keep else keep
        peer.store.clear()
        for entry in wanted:
            peer.store.put(entry)
        # Hand entries of the other side to one peer there; replication
        # inside the receiving side is restored by replica sync below.
        if unwanted:
            target = ones[0] if peer in zeros else zeros[0]
            pnet.net.send(peer.node_id, target.node_id, "balance", len(unwanted))
            for entry in unwanted:
                target.store.put(entry)

    # Rebuild replica lists and cross-side routing references.
    for side, other in ((zeros, ones), (ones, zeros)):
        for peer in side:
            peer.replicas = [p.node_id for p in side if p is not peer]
            for ref in other:
                peer.routing.add(level, ref.node_id)
    # Synchronise data within each side (cheap local copies between replicas).
    for side in (zeros, ones):
        merged = {}
        for peer in side:
            for entry in peer.store:
                identity = (entry.key, entry.item_id)
                current = merged.get(identity)
                if current is None or entry.version > current.version:
                    merged[identity] = entry
        for peer in side:
            for entry in merged.values():
                peer.store.put(entry)
    return True


def migrate_peer(pnet: PGridNetwork, donor: PGridPeer, target_path: str) -> None:
    """Move ``donor`` into the replica group at ``target_path``.

    The donor abandons its current group (which must retain at least one
    peer), copies the target group's data and adopts a member's references.
    """
    group = [p for p in pnet.peers if p.path == target_path and p is not donor]
    if not group:
        raise ValueError(f"no peers at path {target_path!r} to join")
    host = group[0]
    for former in pnet.peers:
        if former is not donor and former.path == donor.path:
            former.remove_replica(donor.node_id)
    donor.set_path(target_path)
    donor.store.clear()
    transferred = 0
    for entry in host.store:
        donor.store.put(entry)
        transferred += 1
    pnet.net.send(host.node_id, donor.node_id, "balance", max(1, transferred))
    donor.routing = type(donor.routing)(fanout=pnet.fanout)
    donor.adopt_refs(host)
    donor.replicas = []
    for member in group:
        member.add_replica(donor.node_id)
        donor.add_replica(member.node_id)


def rebalance(
    pnet: PGridNetwork,
    capacity: int,
    max_rounds: int = 64,
    rng: random.Random | None = None,
) -> int:
    """Split/migrate until every group's load is <= ``capacity`` (or stuck).

    Returns the number of splits performed.  ``capacity`` is the storage
    threshold of ref. [2]: the number of entries a single peer is willing to
    hold.
    """
    rng = rng or pnet.rng
    splits = 0
    for _round in range(max_rounds):
        groups = pnet.leaf_groups()
        overloaded = sorted(
            (path for path, peers in groups.items() if group_load(peers) > capacity),
            key=lambda path: -group_load(groups[path]),
        )
        if not overloaded:
            break
        progressed = False
        for path in overloaded:
            peers = groups[path]
            if len(peers) >= 2:
                if split_group(pnet, path):
                    splits += 1
                    progressed = True
                continue
            donor = _find_donor(pnet, capacity, exclude_path=path)
            if donor is not None:
                migrate_peer(pnet, donor, path)
                if split_group(pnet, path):
                    splits += 1
                progressed = True
        if not progressed:
            break
    return splits


def _find_donor(pnet: PGridNetwork, capacity: int, exclude_path: str) -> PGridPeer | None:
    """An online peer from the least-loaded group that can spare a member."""
    groups = pnet.leaf_groups()
    candidates = [
        (group_load(peers), path, peers)
        for path, peers in groups.items()
        if path != exclude_path and len(peers) >= 2
    ]
    if not candidates:
        return None
    candidates.sort(key=lambda item: (item[0], item[1]))
    load, _path, peers = candidates[0]
    if load > capacity:
        return None  # nobody has slack
    donors = [p for p in peers if p.online]
    return donors[0] if donors else None


def imbalance_stats(values: list[float]) -> dict[str, float]:
    """Max / mean / max-over-mean / Gini over a list of per-peer loads."""
    loads = sorted(values)
    if not loads or sum(loads) == 0:
        return {"max": 0.0, "mean": 0.0, "max_over_mean": 0.0, "gini": 0.0}
    total = sum(loads)
    n = len(loads)
    mean = total / n
    # Gini coefficient over the sorted loads.
    weighted = 0.0
    for index, load in enumerate(loads, start=1):
        weighted += index * load
    gini = (2 * weighted) / (n * total) - (n + 1) / n
    return {
        "max": float(loads[-1]),
        "mean": mean,
        "max_over_mean": loads[-1] / mean if mean else 0.0,
        "gini": gini,
    }


def load_imbalance(pnet: PGridNetwork) -> dict[str, float]:
    """Summary statistics of per-peer storage load (metric of exp. E3)."""
    return imbalance_stats([float(p.load) for p in pnet.peers])


def query_load_imbalance(
    busy_by_peer: dict[str, float], population: list[str] | None = None
) -> dict[str, float]:
    """E3's imbalance metric applied to *query* load (service seconds).

    Takes the per-peer busy-time map of a
    :class:`~repro.load.model.LoadModel` (``load.busy_by_peer()``) — the
    runtime counterpart of storage load: how unevenly the processing work of
    a driven workload landed on the peers.  Benchmark E12 reports it before
    and after replica diffusion.

    ``population`` pins the peer set the statistic is computed over: peers
    in it that serviced nothing count as 0.0 load (a load map alone only
    lists peers that received messages, which would make a single hot peer
    look perfectly balanced).
    """
    if population is None:
        loads = list(busy_by_peer.values())
    else:
        loads = [busy_by_peer.get(node_id, 0.0) for node_id in population]
    return imbalance_stats(loads)
