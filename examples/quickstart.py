"""Quickstart: stand up a UniStore overlay, insert data, run VQL queries.

Reproduces the paper's Figure-2 scenario: two logical tuples are vertically
decomposed into 6 triples, indexed three ways (OID, A#v, v) and spread over
an 8-peer P-Grid — then queried through every index.

Run:  python examples/quickstart.py
"""

from repro import UniStore


def main() -> None:
    # An 8-peer overlay, like Figure 2 of the paper.
    store = UniStore.build(num_peers=8, replication=1, seed=42)

    # The two example tuples of Figure 2 (schema: OID, title, confname, year).
    store.insert_tuple(
        {"title": "Similarity...", "confname": "ICDE 2006 - WS", "year": 2006},
        oid="a12",
    )
    store.insert_tuple(
        {"title": "Progressive...", "confname": "ICDE 2005", "year": 2005},
        oid="v34",
    )
    postings = sum(peer.load for peer in store.pnet.peers)
    print(f"2 tuples -> 6 triples -> {postings} index postings "
          f"on {len(store.pnet)} peers (paper: 18)\n")

    queries = {
        "reproduce tuple a12 (OID index)":
            "SELECT ?attr, ?val WHERE {('a12', ?attr, ?val)}",
        "exact match (A#v index)":
            "SELECT ?oid WHERE {(?oid, 'year', 2005)}",
        "range query year >= 2005":
            "SELECT ?oid, ?y WHERE {(?oid, 'year', ?y) FILTER ?y >= 2005}",
        "value search, attribute unknown (v index)":
            "SELECT ?oid, ?attr WHERE {(?oid, ?attr, 'ICDE 2005')}",
        "prefix/substring search":
            "SELECT ?oid, ?c WHERE {(?oid, 'confname', ?c) FILTER prefix(?c, 'ICDE 2006')}",
    }
    for label, vql in queries.items():
        result = store.execute(vql)
        print(f"-- {label}")
        print(f"   {vql}")
        print("   " + result.as_table().replace("\n", "\n   "))
        print(f"   [{result.messages} msgs, {result.trace.hops} hops, "
              f"{result.answer_time * 1000:.0f} ms simulated]\n")


if __name__ == "__main__":
    main()
