"""Churn and failure injection.

Two usage modes:

* **Static failure sweep** (experiment E7): :meth:`ChurnModel.fail_fraction`
  takes a random subset of peers offline in one shot, modelling a snapshot of
  a network where a fraction of nodes is dead.
* **Session traces** (dynamic churn): :func:`generate_session_trace` produces
  alternating up/down intervals from exponential session/downtime
  distributions, which :meth:`ChurnModel.apply_trace` replays through the
  discrete-event simulator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.node import Node
from repro.net.simulator import EventSimulator


@dataclass(frozen=True)
class ChurnEvent:
    """A scheduled availability flip for one node."""

    time: float
    node_id: str
    online: bool


def generate_session_trace(
    node_ids: list[str],
    horizon: float,
    mean_session: float,
    mean_downtime: float,
    rng: random.Random,
) -> list[ChurnEvent]:
    """Generate up/down flip events for every node until ``horizon``.

    Each node alternates exponentially-distributed online sessions and
    offline gaps, starting online at a random phase so failures are not
    synchronized.
    """
    if mean_session <= 0 or mean_downtime <= 0:
        raise ValueError("mean session and downtime must be > 0")
    events: list[ChurnEvent] = []
    for node_id in node_ids:
        t = rng.uniform(0, mean_session)  # random initial phase, node starts up
        online = True
        while t < horizon:
            online = not online
            events.append(ChurnEvent(time=t, node_id=node_id, online=online))
            mean = mean_session if online else mean_downtime
            t += rng.expovariate(1.0 / mean)
    events.sort(key=lambda e: (e.time, e.node_id))
    return events


class ChurnModel:
    """Applies failures to a population of nodes."""

    def __init__(self, nodes: list[Node], seed: int = 0):
        if not nodes:
            raise ValueError("churn model needs at least one node")
        self.nodes = list(nodes)
        self.rng = random.Random(seed)

    def fail_fraction(self, fraction: float) -> list[Node]:
        """Take ``fraction`` of the (currently online) nodes offline.

        Returns the failed nodes so callers can later :meth:`recover` them.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        online = [n for n in self.nodes if n.online]
        count = int(round(fraction * len(online)))
        victims = self.rng.sample(online, count)
        for node in victims:
            node.fail()
        return victims

    def recover_all(self) -> None:
        for node in self.nodes:
            node.recover()

    def apply_trace(self, sim: EventSimulator, events: list[ChurnEvent]) -> None:
        """Schedule every churn event on the simulator."""
        by_id = {n.node_id: n for n in self.nodes}
        for event in events:
            node = by_id.get(event.node_id)
            if node is None:
                continue
            action = node.recover if event.online else node.fail
            sim.schedule_at(event.time, action)
