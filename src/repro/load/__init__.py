"""Peer load subsystem: service times, queueing, and load-aware execution.

Layers a per-peer workload model over the event kernel of
:mod:`repro.net.scheduler`:

* :mod:`repro.load.model` — service-time profiles, heterogeneous speed
  factors, FIFO node queues (:class:`LoadModel` is what you attach to the
  scheduler: ``pnet.event_driven(load=model)``);
* :mod:`repro.load.drivers` — open-loop (Poisson) and closed-loop workload
  drivers that keep many operations in flight on one shared clock;
* :mod:`repro.load.diffusion` — replica-based query-load diffusion, the
  first load-aware behaviour (benchmark E12 measures its knee shift);
* :mod:`repro.load.shedding` — admission control (reject/defer past a
  queue budget) and piggybacked queue-depth hints, the load-control loop
  benchmark E12d measures under overload.
"""

from repro.load.diffusion import POLICIES, choose_replica, diffuse_route, pick_member, replica_set
from repro.load.drivers import (
    MAX_REJECT_RETRIES,
    MAX_REROUTES,
    ClosedLoopDriver,
    OpenLoopDriver,
    OpRecord,
    completed_latencies,
    goodput,
    summarize,
)
from repro.load.shedding import (
    AdmissionPolicy,
    DeadlineAdmission,
    HintRegistry,
    HintTable,
    ProbabilisticAdmission,
    ThresholdAdmission,
    pick_least_hinted,
)
from repro.load.model import (
    ZERO_PROFILE,
    LoadModel,
    NodeQueue,
    ServiceProfile,
    ServiceSample,
    draw_speed_factors,
)

__all__ = [
    "LoadModel",
    "NodeQueue",
    "ServiceProfile",
    "ServiceSample",
    "ZERO_PROFILE",
    "draw_speed_factors",
    "OpenLoopDriver",
    "ClosedLoopDriver",
    "OpRecord",
    "completed_latencies",
    "summarize",
    "MAX_REROUTES",
    "MAX_REJECT_RETRIES",
    "goodput",
    "POLICIES",
    "choose_replica",
    "diffuse_route",
    "pick_member",
    "replica_set",
    "AdmissionPolicy",
    "ThresholdAdmission",
    "ProbabilisticAdmission",
    "DeadlineAdmission",
    "HintTable",
    "HintRegistry",
    "pick_least_hinted",
]
