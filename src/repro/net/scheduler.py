"""Event-driven message transport: routed operations in simulated time.

The causal-trace model (:mod:`repro.net.trace`) composes fan-out latency
*analytically* — ``Trace.parallel`` takes the max over branches without ever
interleaving them.  :class:`EventScheduler` is the execution engine for the
alternative model: messages become events on a shared
:class:`~repro.net.simulator.EventSimulator` heap, hop chains are callback
chains (each delivery schedules the next hop), and concurrent fan-outs
genuinely interleave on one simulated clock.  A fan-out over k destinations
therefore *completes at the max* of its per-destination chains because that
is when its last event fires — the paper's parallel-lookup latency argument,
reproduced mechanically instead of assumed.

Determinism: the simulator breaks time ties FIFO, every latency sample comes
from the network's seeded RNGs, and deliveries are appended to
:attr:`EventScheduler.log` in firing order — so the same seed replays the
identical event sequence (asserted by the scheduler tests).

The scheduler shares the network's validation, latency sampling and stats
ledger: a message scheduled here is accounted exactly like one sent through
:meth:`Network.send`, just timestamped with its simulated delivery instant.

With a :class:`~repro.load.model.LoadModel` attached, delivery is no longer
completion: an arrived message enters the destination's FIFO work queue and
its ``on_delivered`` callback fires at the *finish* of service, so queueing
delay and service time flow into every downstream hop and completion time
(latency = link + queue + service).  With no load model — or a zero-cost
profile — finish equals arrival and the event sequence is byte-identical to
the load-free scheduler.

Two opt-in load-control layers ride on top (:mod:`repro.load.shedding`):

* **admission control** — when the destination's
  :class:`~repro.load.shedding.AdmissionPolicy` declines a delivered
  message, the scheduler either *defers* it (re-offered after a penalty;
  force-admitted after ``max_defers``, so deferred work is never lost) or
  *rejects* it: a NACK message of kind ``"reject"`` travels back to the
  sender — accounted like any other message — and the caller's
  ``on_rejected`` callback fires at its arrival, typically to retry another
  replica.  A reject with no ``on_rejected`` handler is parked (deferred)
  instead, so plain data operations stay lossless.  Rejects and deferrals
  are counted in :class:`~repro.net.stats.NetworkStats`.
* **hint piggybacking** — with a
  :class:`~repro.load.shedding.HintRegistry` attached, every message
  (data, reply and NACK alike) is stamped with the sender's advertised
  queue depth at departure, and the receiver records it in its hint table
  at arrival.  Observation is passive — no extra events, messages or RNG
  draws — so attaching a registry leaves the event sequence untouched
  until some policy *consults* the hints.

With ``admission=None`` and no registry both layers vanish and the event
sequence is byte-identical to PR 4's scheduler (asserted by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import NodeUnreachableError
from repro.net.simulator import EventSimulator
from repro.net.trace import Trace

if TYPE_CHECKING:
    from repro.load.model import LoadModel
    from repro.load.shedding import HintRegistry
    from repro.net.network import Network

#: Message kind of the admission-control NACK sent back to a rejected sender.
REJECT_KIND = "reject"

#: Callback invoked with the delivery instant of a message or chain.
Completion = Callable[[float], None]

#: ``(src, dst, kind, size)`` messages, as accepted by :meth:`EventScheduler.fanout`.
Sends = list[tuple[str, str, str, int]]

#: One routed wave: ``(hops, kind, size, on_arrival)``; see :meth:`EventScheduler.run_chains`.
ChainSpec = tuple[list[tuple[str, str]], str, int, Callable[[float], Sends]]


@dataclass(frozen=True)
class Delivery:
    """One delivered message, as recorded in the scheduler's event log.

    ``hint`` is the piggybacked queue-depth metadata: the sender's
    advertised depth at departure, or ``None`` when no hint registry is
    attached — so hint-free logs compare equal to their historical shape.
    """

    time: float
    src: str
    dst: str
    kind: str
    size: int
    hint: float | None = None


class EventScheduler:
    """Schedules overlay messages as discrete events over a network.

    One scheduler wraps one :class:`~repro.net.network.Network` plus one
    :class:`EventSimulator`.  Operations schedule their message graphs
    (:meth:`send_at`, :meth:`chain`, :meth:`fanout`) and then :meth:`run`
    drains the heap; the clock is monotone across operations, so back-to-back
    calls compose sequentially in simulated time while everything scheduled
    before a drain overlaps.
    """

    def __init__(
        self,
        network: "Network",
        simulator: EventSimulator | None = None,
        load: "LoadModel | None" = None,
    ):
        self.net = network
        self.sim = simulator or EventSimulator()
        self.load = load
        self.log: list[Delivery] = []

    @property
    def hints(self) -> "HintRegistry | None":
        """The network-attached hint registry (single source of truth, so the
        scheduler and routing — which only sees the network — always agree).
        Attach one via ``pnet.event_driven(..., hints=True)`` or by setting
        ``network.hints`` directly."""
        return getattr(self.net, "hints", None)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    def send_at(
        self,
        time: float,
        src: str,
        dst: str,
        kind: str,
        size: int = 1,
        on_delivered: Completion | None = None,
        on_rejected: Completion | None = None,
    ) -> float:
        """Schedule one message departing ``src`` at ``time``; return arrival.

        Validation and latency sampling happen at scheduling time (identical
        to :meth:`Network.send`); accounting and the ``on_delivered`` callback
        happen when the delivery event fires.  A local send (``src == dst``)
        is free and unlogged, like its synchronous counterpart, but the
        callback still goes through the simulator so completion ordering is
        uniform.

        With a load model attached, the arrived message is offered to the
        destination's work queue and ``on_delivered`` fires at its service
        *finish* instant rather than at arrival (local sends stay free — no
        message is processed).  The returned value remains the network
        arrival: queueing happens after it.

        If the destination's admission policy *rejects* the message and
        ``on_rejected`` is given, a NACK travels back to ``src`` and
        ``on_rejected`` fires with its arrival instant (the caller retries
        elsewhere); without a handler the rejected job is parked and
        re-offered like a deferral, so it is never lost.  With a hint
        registry attached, the message departs stamped with ``src``'s
        advertised queue depth, observed by ``dst`` on arrival.
        """
        if src == dst:
            if on_delivered is not None:
                self.sim.schedule_at(time, lambda: on_delivered(time))
            return time
        dst_node = self.net.nodes.get(dst)
        if dst_node is None:
            raise NodeUnreachableError(dst, "unknown node")
        if not dst_node.online:
            raise NodeUnreachableError(dst, "node offline")
        latency = self.net.link_latency(src, dst)
        latency += self.net.latency_model.sample_jitter(self.net.rng)
        arrival = time + latency
        # Piggybacked metadata is stamped at departure: the hint describes
        # the sender's queue as the message leaves, not as it lands.
        hint: float | None = None
        if self.hints is not None and self.load is not None:
            hint = self.load.advertised_depth(src, time)

        def deliver() -> None:
            self.net.stats.record(kind, size, at=arrival)
            self.log.append(Delivery(arrival, src, dst, kind, size, hint))
            if self.hints is not None and hint is not None:
                self.hints.observe(dst, src, hint, arrival)
            if self.load is None:
                if on_delivered is not None:
                    on_delivered(arrival)
                return
            self._offer(src, dst, arrival, kind, size, arrival, on_delivered, on_rejected, 0)

        self.sim.schedule_at(arrival, deliver)
        return arrival

    def _offer(
        self,
        src: str,
        dst: str,
        at: float,
        kind: str,
        size: int,
        arrival: float,
        on_delivered: Completion | None,
        on_rejected: Completion | None,
        defers: int,
    ) -> None:
        """Offer a delivered message to ``dst``'s admission gate at ``at``.

        ``arrival`` is the original network arrival (service stats measure
        queueing delay from it, so park time stays visible); ``at`` advances
        past it on each deferral, ``defers`` counting the park rounds so far.
        The policy is always consulted on the first offer; a *parked* job is
        force-admitted once its park rounds reach ``max(max_defers, 1)``, so
        even ``max_defers=0`` sheds on first contact but can never strand a
        job that had nowhere to bounce.
        """
        load = self.load
        assert load is not None
        policy = load.policy(dst)
        if policy is not None and defers >= max(policy.max_defers, 1):
            # Parked often enough: force-admit so parked work always drains.
            start, finish, depth = load.admit(dst, at, kind, size)
            verdict = "accept"
        else:
            verdict, start, finish, depth = load.offer(dst, at, kind, size, parked=defers > 0)
        if verdict == "accept":
            self.net.stats.record_service(dst, start - arrival, finish - start, depth)
            if on_delivered is None:
                return
            if finish <= arrival:
                # Zero-cost service on an idle queue: complete inline, so the
                # event sequence matches the load-free scheduler exactly.
                on_delivered(arrival)
            else:
                self.sim.schedule_at(finish, lambda: on_delivered(finish))
            return
        if verdict == "reject":  # only possible on the first, unparked offer
            self.net.stats.record_reject(dst)
            if on_rejected is not None:
                try:
                    # The NACK is a real, accounted message (it carries the
                    # rejector's depth hint back to the sender).
                    self.send_at(at, dst, src, REJECT_KIND, 1, on_delivered=on_rejected)
                except NodeUnreachableError:
                    # Sender churned away; fire the callback directly so the
                    # operation's bookkeeping still completes.
                    self.sim.schedule_at(at, lambda: on_rejected(at))
                return
            # Nobody to tell: park the job like a deferral so it is not lost.
        else:
            self.net.stats.record_defer(dst)
        retry = at + policy.defer_penalty
        self.sim.schedule_at(
            retry,
            lambda: self._offer(
                src, dst, retry, kind, size, arrival, on_delivered, on_rejected, defers + 1
            ),
        )

    def chain(
        self,
        hops: list[tuple[str, str]],
        kind: str,
        size: int = 1,
        at: float | None = None,
        on_done: Completion | None = None,
    ) -> None:
        """Schedule a hop sequence as a callback chain starting at ``at``.

        Each delivery schedules the next hop, so independent chains
        interleave hop-by-hop on the shared clock.  ``on_done`` fires with
        the arrival instant of the last hop (or with the start instant for
        an empty chain — still via the simulator, to keep ordering uniform).
        """
        start = self.now if at is None else at

        def step(index: int, time: float) -> None:
            if index == len(hops):
                if on_done is not None:
                    on_done(time)
                return
            src, dst = hops[index]
            self.send_at(
                time,
                src,
                dst,
                kind,
                size,
                on_delivered=lambda arrival: step(index + 1, arrival),
            )

        if not hops:
            if on_done is not None:
                self.sim.schedule_at(start, lambda: on_done(start))
            return
        step(0, start)

    def fanout(
        self,
        sends: list[tuple[str, str, str, int]],
        at: float | None = None,
    ) -> Trace:
        """Schedule ``(src, dst, kind, size)`` messages concurrently and drain.

        All messages depart at the same instant; the returned trace completes
        at the max arrival — the event-driven counterpart of
        ``Trace.parallel`` over single hops.
        """
        start = self.now if at is None else at
        completions: list[float] = []
        accounted = 0
        for src, dst, kind, size in sends:
            if src != dst:
                accounted += 1
            self.send_at(start, src, dst, kind, size, on_delivered=completions.append)
        self.run()
        finish = max(completions, default=start)
        return Trace(
            messages=accounted,
            hops=1 if accounted else 0,
            latency=finish - start,
            completion_time=finish,
        )

    def run_chains(
        self,
        chains: list[ChainSpec],
        untracked: list[tuple[list[tuple[str, str]], str, int]] | tuple = (),
    ) -> Trace:
        """Run hop chains concurrently from ``now`` and measure the wave.

        Each chain is ``(hops, kind, size, on_arrival)``: the hops depart as
        a callback chain, and when the destination is reached ``on_arrival``
        runs the destination-side work and returns follow-up sends
        (``(src, dst, kind, size)`` — replica pushes, a reply, a forward).
        The chain completes when its last follow-up is delivered (or at
        arrival when there is none); the wave completes at the max over all
        chains.  ``untracked`` chains are scheduled and accounted but never
        complete — the partial hops of failed routes.

        This is the shared scaffold behind the event-driven modes of
        ``insert_many`` / ``lookup_many`` and the rehash join's shipping
        wave, so their message/hop accounting cannot drift apart.
        """
        start_time = self.now
        completions: list[float] = []
        totals = {"messages": 0, "critical": 0}
        for hops, kind, size, on_arrival in chains:
            totals["messages"] += len(hops)
            totals["critical"] = max(totals["critical"], len(hops))

            def arrived(
                time: float,
                hops: list[tuple[str, str]] = hops,
                on_arrival: Callable = on_arrival,
            ) -> None:
                sends = on_arrival(time)
                if not sends:
                    completions.append(time)
                    return
                totals["messages"] += len(sends)
                totals["critical"] = max(totals["critical"], len(hops) + 1)
                for src, dst, send_kind, send_size in sends:
                    self.send_at(
                        time,
                        src,
                        dst,
                        send_kind,
                        send_size,
                        on_delivered=completions.append,
                    )

            self.chain(hops, kind, size, at=start_time, on_done=arrived)
        for hops, kind, size in untracked:
            self.chain(hops, kind, size, at=start_time)
        self.run()
        finish = max(completions, default=start_time)
        return Trace(
            messages=totals["messages"],
            hops=totals["critical"],
            latency=finish - start_time,
            completion_time=finish,
        )

    def run(self, until: float | None = None) -> None:
        """Drain scheduled events (up to ``until``), advancing the clock."""
        self.sim.run(until)

    def pending(self) -> int:
        """Number of events still queued on the simulator."""
        return self.sim.pending()
