"""Unit and property tests for the Levenshtein implementations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings import edit_distance, edit_distance_within

WORDS = st.text(alphabet="abcdef", max_size=12)


class TestEditDistanceBasics:
    def test_identical_strings(self):
        assert edit_distance("icde", "icde") == 0

    def test_empty_vs_word(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_both_empty(self):
        assert edit_distance("", "") == 0

    def test_single_substitution(self):
        assert edit_distance("cat", "car") == 1

    def test_single_insertion(self):
        assert edit_distance("cat", "cart") == 1

    def test_single_deletion(self):
        assert edit_distance("cart", "cat") == 1

    def test_paper_example_vldb_icde(self):
        # Used in the paper's FILTER example: edist(?sr,'ICDE')<3
        assert edit_distance("VLDB", "ICDE") == 3

    def test_kitten_sitting(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_transposition_costs_two(self):
        # Plain Levenshtein has no transposition operation.
        assert edit_distance("ab", "ba") == 2


class TestEditDistanceWithin:
    def test_exact_match_bound_zero(self):
        assert edit_distance_within("abc", "abc", 0) == 0

    def test_mismatch_bound_zero(self):
        assert edit_distance_within("abc", "abd", 0) is None

    def test_negative_bound(self):
        assert edit_distance_within("a", "a", -1) is None

    def test_within_bound(self):
        assert edit_distance_within("kitten", "sitting", 3) == 3

    def test_just_outside_bound(self):
        assert edit_distance_within("kitten", "sitting", 2) is None

    def test_length_difference_prunes_early(self):
        assert edit_distance_within("a", "a" * 50, 3) is None

    def test_empty_against_short(self):
        assert edit_distance_within("", "ab", 2) == 2
        assert edit_distance_within("", "abc", 2) is None


class TestEditDistanceProperties:
    @given(WORDS, WORDS)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(WORDS)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(WORDS, WORDS)
    def test_length_difference_lower_bound(self, a, b):
        assert edit_distance(a, b) >= abs(len(a) - len(b))

    @given(WORDS, WORDS)
    def test_max_length_upper_bound(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))

    @given(WORDS, WORDS, WORDS)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(WORDS, WORDS, st.integers(min_value=0, max_value=6))
    def test_banded_agrees_with_full(self, a, b, k):
        full = edit_distance(a, b)
        banded = edit_distance_within(a, b, k)
        if full <= k:
            assert banded == full
        else:
            assert banded is None

    @given(WORDS, st.integers(min_value=0, max_value=3))
    def test_positive_distance_for_distinct(self, a, extra):
        b = a + "z" * (extra + 1)
        assert edit_distance(a, b) == extra + 1
