"""The distributed triple store — the paper's "Triple Manager" + "Storage
Service" pair (Fig. 1, layers 2-3).

``DistributedTripleStore`` publishes each triple under the three default
indexes (plus, optionally, a q-gram similarity index over string values) and
offers the retrieval primitives the physical query operators build on:

* exact access — :meth:`by_oid`/:meth:`by_oids`, :meth:`by_attribute_value`,
  :meth:`by_value`;
* ordered access — :meth:`attribute_range` (``Ai >= vi`` queries),
  :meth:`attribute_prefix`, :meth:`value_prefix` (substring/prefix search);
* maintenance — :meth:`insert`/:meth:`insert_tuple`/:meth:`insert_tuples_batch`
  (all message-accounted through the overlay's destination-grouped bulk
  inserts), :meth:`update_value`, :meth:`delete`, and oracle
  :meth:`bulk_insert` for benchmark setup.

Every method returns the causal :class:`~repro.net.trace.Trace` alongside its
result, so upper layers can compose full query-plan costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.net.trace import Trace
from repro.pgrid.construction import bulk_load
from repro.pgrid.keys import KeyRange
from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer
from repro.pgrid.range_query import range_query_sequential, range_query_shower
from repro.strings.qgrams import qgrams
from repro.triples.index import (
    IndexKind,
    av_attribute_range,
    av_key,
    av_string_prefix_range,
    av_value_range,
    oid_key,
    qgram_key,
    v_key,
    v_string_prefix_range,
    v_value_range,
)
from repro.triples.triple import Triple, Value, triples_from_tuple


@dataclass(frozen=True)
class Posting:
    """What is physically stored in the DHT: an index-tagged triple copy."""

    kind: IndexKind
    triple: Triple


def _item_id(kind: IndexKind, triple: Triple, extra: str = "") -> str:
    suffix = f"\x03{extra}" if extra else ""
    return f"{kind.value}\x03{triple.identity()}{suffix}"


class DistributedTripleStore:
    """Triple storage layer over a P-Grid overlay."""

    def __init__(
        self,
        pnet: PGridNetwork,
        enable_qgram_index: bool = False,
        qgram_q: int = 3,
        qgram_attributes: set[str] | None = None,
    ):
        self.pnet = pnet
        self.enable_qgram_index = enable_qgram_index
        self.qgram_q = qgram_q
        self.qgram_attributes = qgram_attributes

    # -- posting construction --------------------------------------------------

    def postings(self, triple: Triple) -> list[tuple[str, str, Posting]]:
        """All ``(key, item_id, posting)`` a triple is published under."""
        entries = [
            (oid_key(triple.oid), _item_id(IndexKind.OID, triple), Posting(IndexKind.OID, triple)),
            (
                av_key(triple.attribute, triple.value),
                _item_id(IndexKind.AV, triple),
                Posting(IndexKind.AV, triple),
            ),
            (v_key(triple.value), _item_id(IndexKind.V, triple), Posting(IndexKind.V, triple)),
        ]
        if self._qgram_indexed(triple):
            assert isinstance(triple.value, str)
            for gram in set(qgrams(triple.value, q=self.qgram_q)):
                entries.append(
                    (
                        qgram_key(gram),
                        _item_id(IndexKind.QGRAM, triple, extra=gram),
                        Posting(IndexKind.QGRAM, triple),
                    )
                )
        return entries

    def _qgram_indexed(self, triple: Triple) -> bool:
        if not self.enable_qgram_index or not isinstance(triple.value, str):
            return False
        return self.qgram_attributes is None or triple.attribute in self.qgram_attributes

    # -- maintenance -------------------------------------------------------------

    def insert(self, triple: Triple, start: PGridPeer | None = None) -> Trace:
        """Publish one triple under all its indexes (one grouped bulk insert).

        All postings travel through :meth:`PGridNetwork.insert_many`, so
        postings whose keys land in the same region share a single route.
        """
        return self.pnet.insert_many(self.postings(triple), start=start)

    def insert_tuple(
        self, oid: str, values: dict[str, Value], start: PGridPeer | None = None
    ) -> tuple[list[Triple], Trace]:
        """Vertically decompose and publish a logical tuple."""
        triples = triples_from_tuple(oid, values)
        items = [posting for t in triples for posting in self.postings(t)]
        return triples, self.pnet.insert_many(items, start=start)

    def insert_tuples_batch(
        self,
        tuples: list[tuple[str, dict[str, Value]]],
        start: PGridPeer | None = None,
    ) -> tuple[list[Triple], Trace]:
        """Message-accounted batch publish of many ``(oid, values)`` tuples.

        Every posting of the whole batch goes through ONE destination-grouped
        bulk insert, so the routed messages amortize across tuples — the
        batched-ingest lever of the E9b benchmark (contrast with
        :meth:`bulk_insert`, which is an *oracle* placement without messages).
        """
        triples: list[Triple] = []
        items: list[tuple[str, str, Posting]] = []
        for oid, values in tuples:
            decomposed = triples_from_tuple(oid, values)
            triples.extend(decomposed)
            for triple in decomposed:
                items.extend(self.postings(triple))
        return triples, self.pnet.insert_many(items, start=start)

    def bulk_insert(self, triples: list[Triple]) -> None:
        """Oracle placement of many triples (no routing messages); setup only."""
        items = []
        for triple in triples:
            for key, item_id, posting in self.postings(triple):
                items.append((key, item_id, posting))
        bulk_load(self.pnet, items)

    def delete(self, triple: Triple, start: PGridPeer | None = None) -> Trace:
        """Withdraw a triple from every index."""
        start = start or self.pnet.random_online_peer()
        branches = []
        for key, item_id, _posting in self.postings(triple):
            _removed, trace = self.pnet.delete(key, item_id, start=start)
            branches.append(trace)
        return Trace.parallel(branches)

    def update_value(
        self, triple: Triple, new_value: Value, start: PGridPeer | None = None
    ) -> tuple[Triple, Trace]:
        """Replace the value of a fact (same OID + attribute).

        The OID-index posting is versioned in place; the old A#v / v /
        q-gram postings move to new keys, so they are deleted and re-inserted.
        """
        replacement = Triple(triple.oid, triple.attribute, new_value)
        delete_trace = self.delete(triple, start=start)
        insert_trace = self.insert(replacement, start=start)
        return replacement, Trace.parallel([delete_trace, insert_trace])

    # -- exact retrieval -----------------------------------------------------------

    def by_oid(self, oid: str, start: PGridPeer | None = None) -> tuple[list[Triple], Trace]:
        """All triples of one logical tuple ("efficient reproduction of origin data")."""
        by_oid, trace = self.by_oids([oid], start=start)
        return by_oid[oid], trace

    def by_oids(
        self, oids, start: PGridPeer | None = None
    ) -> tuple[dict[str, list[Triple]], Trace]:
        """Reassemble many logical tuples with one grouped multi-key lookup.

        OIDs whose index keys share a responsible region cost one route and
        one reply between them; returns ``(triples_by_oid, trace)``.
        """
        keys = {oid: oid_key(oid) for oid in oids}
        entries_by_key, trace = self.pnet.lookup_many(keys.values(), start=start)
        return {
            oid: self._triples(entries_by_key.get(key, []), IndexKind.OID)
            for oid, key in keys.items()
        }, trace

    def by_attribute_value(
        self, attribute: str, value: Value, start: PGridPeer | None = None
    ) -> tuple[list[Triple], Trace]:
        """Triples with ``attribute == value`` via the A#v index."""
        entries, trace = self.pnet.lookup(av_key(attribute, value), start=start)
        return self._triples(entries, IndexKind.AV), trace

    def by_value(self, value: Value, start: PGridPeer | None = None) -> tuple[list[Triple], Trace]:
        """Triples with the given value under *any* attribute, via the v index."""
        entries, trace = self.pnet.lookup(v_key(value), start=start)
        return self._triples(entries, IndexKind.V), trace

    # -- ordered retrieval -----------------------------------------------------------

    def attribute_range(
        self,
        attribute: str,
        low: Value | None = None,
        high: Value | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        algorithm: str = "shower",
        start: PGridPeer | None = None,
    ) -> tuple[list[Triple], Trace, bool]:
        """Triples with ``low <op> attribute.value <op> high`` (A#v range scan)."""
        key_range = av_value_range(attribute, low, high, low_inclusive, high_inclusive)
        return self._range(key_range, IndexKind.AV, algorithm, start)

    def attribute_all(
        self, attribute: str, algorithm: str = "shower", start: PGridPeer | None = None
    ) -> tuple[list[Triple], Trace, bool]:
        """Every triple of one attribute (full A#v subtree scan)."""
        return self._range(av_attribute_range(attribute), IndexKind.AV, algorithm, start)

    def attribute_prefix(
        self,
        attribute: str,
        prefix: str,
        algorithm: str = "shower",
        start: PGridPeer | None = None,
    ) -> tuple[list[Triple], Trace, bool]:
        """Triples whose string value starts with ``prefix`` (per attribute)."""
        key_range = av_string_prefix_range(attribute, prefix)
        return self._range(key_range, IndexKind.AV, algorithm, start)

    def value_range(
        self,
        low: Value | None = None,
        high: Value | None = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        algorithm: str = "shower",
        start: PGridPeer | None = None,
    ) -> tuple[list[Triple], Trace, bool]:
        """Attribute-agnostic value range over the v index."""
        key_range = v_value_range(low, high, low_inclusive, high_inclusive)
        return self._range(key_range, IndexKind.V, algorithm, start)

    def value_prefix(
        self, prefix: str, algorithm: str = "shower", start: PGridPeer | None = None
    ) -> tuple[list[Triple], Trace, bool]:
        """Prefix search over all string values, attribute unknown."""
        return self._range(v_string_prefix_range(prefix), IndexKind.V, algorithm, start)

    # -- q-gram index access (used by the similarity operators) -----------------------

    def qgram_postings(
        self, gram: str, start: PGridPeer | None = None
    ) -> tuple[list[Triple], Trace]:
        """All triples indexed under one q-gram."""
        if not self.enable_qgram_index:
            raise StorageError("q-gram index is not enabled on this store")
        entries, trace = self.pnet.lookup(qgram_key(gram), start=start)
        return self._triples(entries, IndexKind.QGRAM), trace

    # -- internals ---------------------------------------------------------------------

    def _range(
        self,
        key_range: KeyRange,
        kind: IndexKind,
        algorithm: str,
        start: PGridPeer | None,
    ) -> tuple[list[Triple], Trace, bool]:
        if algorithm == "shower":
            entries, trace, complete = range_query_shower(self.pnet, key_range, start=start)
        elif algorithm == "sequential":
            entries, trace, complete = range_query_sequential(self.pnet, key_range, start=start)
        else:
            raise ValueError(f"unknown range algorithm {algorithm!r}")
        return self._triples(entries, kind), trace, complete

    @staticmethod
    def _triples(entries, kind: IndexKind) -> list[Triple]:
        """Extract, filter by index kind, and deduplicate triples from entries."""
        seen: set[tuple[str, str, Value]] = set()
        result: list[Triple] = []
        for entry in entries:
            posting = entry.value
            if not isinstance(posting, Posting) or posting.kind is not kind:
                continue
            key = posting.triple.as_tuple()
            if key in seen:
                continue
            seen.add(key)
            result.append(posting.triple)
        return sorted(result)
