"""E11 — overlapped fan-out latency under event-driven execution.

The paper's answer-time argument assumes a parallel region fan-out completes
in the *max*, not the sum, of its per-destination hop chains.  The causal
trace model asserts that analytically (``Trace.parallel``); this experiment
verifies it mechanically: the same batched ``lookup_many`` runs (a) as a
sequence of single lookups composed causally, (b) as the analytic parallel
composition, and (c) on the event-driven scheduler, where the chains are
real interleaved events on a simulated clock.

Link latencies are *pinned* up front from a seeded lognormal (PlanetLab-like
median 40 ms, heavy tail, no jitter), so twin overlays share identical links
regardless of first-touch order and (b) and (c) must agree exactly — any
drift would mean the scheduler mis-measures.  The reported speedup is
(a) / (c): what overlapping the fan-out buys over sequential composition.

E11b repeats the comparison for range queries (shower fan-out vs sequential
min-max traversal), and E11c runs the full conference query mix in both
execution models.  Set ``UNISTORE_QUICK=1`` for the CI smoke configuration.
"""

from __future__ import annotations

import math
import os
import random

import pytest

from repro import UniStore
from repro.bench import ConferenceWorkload, ResultTable, mean, median
from repro.net.latency import ZeroLatency
from repro.net.trace import Trace
from repro.pgrid import build_network, bulk_load, encode_string
from repro.pgrid.keys import KeyRange
from repro.pgrid.network import PGridNetwork
from repro.pgrid.range_query import range_query_sequential, range_query_shower

from conftest import emit

QUICK = bool(os.environ.get("UNISTORE_QUICK"))

OVERLAY_SIZES = [64] if QUICK else [64, 128, 256]
NUM_KEYS = 32
LINK_SEED = 1911
MEDIAN_LATENCY = 0.040
SIGMA = 0.95


def _words(count: int, seed: int = 2718) -> list[str]:
    """Random tokens — spread across the key space so fan-outs hit many regions."""
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    return sorted({"".join(rng.choice(alphabet) for _ in range(7)) for _ in range(count)})


WORDS = _words(NUM_KEYS)
ITEMS = [(encode_string(w), f"id-{w}", f"val-{w}") for w in WORDS]
KEYS = [key for key, _id, _value in ITEMS]


def _pin_links(pnet: PGridNetwork, seed: int = LINK_SEED) -> None:
    """Assign every directed link a fixed lognormal latency.

    Pinning decouples link latencies from the order in which the execution
    models first touch them, so twin overlays are comparable link-for-link.
    """
    rng = random.Random(seed)
    mu = math.log(MEDIAN_LATENCY)
    ids = [peer.node_id for peer in pnet.peers]
    for src in ids:
        for dst in ids:
            if src != dst:
                pnet.net.set_link_latency(src, dst, rng.lognormvariate(mu, SIGMA), symmetric=False)


def _overlay(num_peers: int, seed: int) -> PGridNetwork:
    pnet = build_network(
        num_peers,
        replication=2,
        seed=seed,
        split_by="population",
        latency_model=ZeroLatency(),  # every real link is pinned below
    )
    _pin_links(pnet)
    bulk_load(pnet, ITEMS)
    return pnet


def test_e11_fanout_max_vs_sum(benchmark):
    table = ResultTable(
        "E11: parallel fan-out latency — sequential composition vs overlapped "
        f"({NUM_KEYS} probe keys; pinned PlanetLab-like links)",
        ["peers", "seq s", "analytic max s", "event-driven s", "msgs", "speedup"],
    )
    last_event_net = None
    for num_peers in OVERLAY_SIZES:
        seed = 3000 + num_peers
        seq_net = _overlay(num_peers, seed)
        trace_net = _overlay(num_peers, seed)
        event_net = _overlay(num_peers, seed)

        sequential = Trace.ZERO
        for key in KEYS:
            _entries, one = seq_net.lookup(key, start=seq_net.peers[0])
            sequential = sequential.then(one)

        _results, analytic = trace_net.lookup_many(KEYS, start=trace_net.peers[0])
        with event_net.event_driven():
            _results, overlapped = event_net.lookup_many(KEYS, start=event_net.peers[0])

        # The scheduler must *measure* what the trace model *asserts*: the
        # fan-out completes at the max of its per-region chains.
        assert overlapped.latency == pytest.approx(analytic.latency, rel=1e-9)
        assert overlapped.messages == analytic.messages
        assert overlapped.latency < sequential.latency
        speedup = sequential.latency / overlapped.latency
        assert speedup > 1.5, f"overlap buys too little at {num_peers} peers"
        table.add_row(
            num_peers,
            sequential.latency,
            analytic.latency,
            overlapped.latency,
            overlapped.messages,
            speedup,
        )
        last_event_net = event_net
    emit(table)

    def probe():
        with last_event_net.event_driven():
            last_event_net.lookup_many(KEYS, start=last_event_net.peers[0])

    benchmark.pedantic(probe, rounds=3, iterations=1)


def test_e11b_range_query_shower_overlap(benchmark):
    table = ResultTable(
        "E11b: range query latency — shower fan-out overlapped vs sequential walk",
        ["peers", "algorithm", "model", "latency s", "msgs", "rows"],
    )
    key_range = KeyRange(encode_string(WORDS[2]), encode_string(WORDS[-3]))
    for num_peers in OVERLAY_SIZES:
        seed = 5000 + num_peers
        rows = []
        for algorithm, runner in (
            ("shower", range_query_shower),
            ("sequential", range_query_sequential),
        ):
            trace_net = _overlay(num_peers, seed)
            entries_t, trace_t, complete_t = runner(trace_net, key_range, start=trace_net.peers[0])
            event_net = _overlay(num_peers, seed)
            with event_net.event_driven():
                entries_e, trace_e, complete_e = runner(
                    event_net, key_range, start=event_net.peers[0]
                )
            assert complete_t and complete_e
            assert len(entries_t) == len(entries_e)
            assert trace_t.messages == trace_e.messages
            rows.append((algorithm, trace_t, trace_e, len(entries_e)))
            table.add_row(
                num_peers, algorithm, "trace", trace_t.latency, trace_t.messages, len(entries_t)
            )
            table.add_row(
                num_peers, algorithm, "event", trace_e.latency, trace_e.messages, len(entries_e)
            )
        # The shower's measured overlap must agree with its analytic max.
        # (Whether it beats the serial walk depends on range width — the
        # paper's trade-off — so that column is reported, not asserted.)
        shower_t, shower_e = rows[0][1], rows[0][2]
        assert shower_e.latency == pytest.approx(shower_t.latency, rel=1e-9)
    emit(table)

    final_net = _overlay(OVERLAY_SIZES[-1], 5000 + OVERLAY_SIZES[-1])

    def shower():
        with final_net.event_driven():
            range_query_shower(final_net, key_range, start=final_net.peers[0])

    benchmark.pedantic(shower, rounds=3, iterations=1)


def test_e11c_query_mix_event_vs_trace():
    num_peers = 64
    seed = 7100

    def build():
        store = UniStore.build(
            num_peers=num_peers,
            replication=2,
            seed=seed,
            latency_model=ZeroLatency(),
            enable_qgram_index=True,
        )
        _pin_links(store.pnet)
        workload = ConferenceWorkload(
            num_authors=40, num_publications=80, num_conferences=12, seed=seed
        )
        workload.load_into(store)
        return store, workload

    trace_store, workload = build()
    event_store, _workload = build()
    runs = 2 if QUICK else 6
    table = ResultTable(
        f"E11c: query answer times, {num_peers} peers — causal trace vs event-driven",
        ["query class", "trace median s", "event median s", "mean msgs"],
    )
    for name, vql in workload.query_mix().items():
        trace_latencies, event_latencies, messages = [], [], []
        for _ in range(runs):
            result_t = trace_store.execute(vql)
            with event_store.event_driven():
                result_e = event_store.execute(vql)
            assert result_t.sorted_rows() == result_e.sorted_rows(), name
            trace_latencies.append(result_t.answer_time)
            event_latencies.append(result_e.answer_time)
            messages.append(float(result_e.messages))
        table.add_row(name, median(trace_latencies), median(event_latencies), mean(messages))
        # Both models must stay in the paper's "couple of seconds" band.
        assert median(event_latencies) < 3.0, name
    emit(table)
