"""Physical operators (paper §2: "several physical implementations ... each
beneficial in special situations").

Every logical operator has one or more executable strategies here; the
optimizer (:mod:`repro.optimizer`) picks between them with the cost model.
"""

from repro.physical.base import ExecutionContext, OpResult, PhysicalOperator
from repro.physical.joins import IndexNestedLoopJoin, RehashJoin, ShipJoin
from repro.physical.misc import (
    CollectOp,
    DifferenceOp,
    FilterOp,
    IntersectionOp,
    LeftJoinOp,
    LimitOp,
    ProjectOp,
    SortOp,
    UnionOp,
)
from repro.physical.ranking import SkylineOp, TopNOp
from repro.physical.scans import (
    AttributeScan,
    AvLookupScan,
    AvPrefixScan,
    AvRangeScan,
    BroadcastScan,
    OidClusterScan,
    OidLookupScan,
    QGramScan,
    VLookupScan,
    VPrefixScan,
    VRangeScan,
)
from repro.physical.simops import NaiveSimilarityJoin, QGramSimilarityJoin

__all__ = [
    "ExecutionContext",
    "OpResult",
    "PhysicalOperator",
    "OidLookupScan",
    "OidClusterScan",
    "AvLookupScan",
    "AvRangeScan",
    "AvPrefixScan",
    "AttributeScan",
    "VLookupScan",
    "VRangeScan",
    "VPrefixScan",
    "QGramScan",
    "BroadcastScan",
    "ShipJoin",
    "IndexNestedLoopJoin",
    "RehashJoin",
    "NaiveSimilarityJoin",
    "QGramSimilarityJoin",
    "TopNOp",
    "SkylineOp",
    "FilterOp",
    "ProjectOp",
    "SortOp",
    "LimitOp",
    "UnionOp",
    "IntersectionOp",
    "DifferenceOp",
    "LeftJoinOp",
    "CollectOp",
]
