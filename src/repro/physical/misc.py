"""Remaining physical operators: filter, projection, sort/limit, set ops,
left join, and the root collector.

These are "flow" operators: FilterOp and ProjectOp run *in place* at the
producing peers (free of network cost — this is the pushdown payoff); the
blocking operators (sort, distinct, set ops, left join) gather at the
coordinator first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.trace import Trace
from repro.algebra.expressions import satisfies
from repro.algebra.semantics import Binding, join_key, merge_bindings, order_sort_key
from repro.physical.base import ExecutionContext, OpResult, PhysicalOperator
from repro.vql.ast import Expression, OrderItem, Var


@dataclass
class FilterOp(PhysicalOperator):
    """σ evaluated wherever the rows currently are (no traffic)."""

    child: PhysicalOperator
    predicate: Expression = None  # type: ignore[assignment]

    strategy = "in-place"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> OpResult:
        result = self.child.execute(ctx)
        groups = []
        for peer_id, rows in result.groups:
            kept = [row for row in rows if satisfies(self.predicate, row)]
            if kept:
                groups.append((peer_id, kept))
        return OpResult(groups, result.trace, result.complete)

    def _label(self) -> str:
        return f"FilterOp σ[{self.predicate}]"


@dataclass
class ProjectOp(PhysicalOperator):
    """π applied at the producers (column pruning saves shipping width);
    DISTINCT, being global, deduplicates after gathering at the coordinator."""

    child: PhysicalOperator
    variables: tuple[Var, ...] = ()
    distinct: bool = False

    strategy = "in-place"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> OpResult:
        result = self.child.execute(ctx)
        names = [v.name for v in self.variables]
        if names:
            result = OpResult(
                [
                    (peer_id, [{name: row.get(name) for name in names} for row in rows])
                    for peer_id, rows in result.groups
                ],
                result.trace,
                result.complete,
            )
        if not self.distinct:
            return result
        home = result.at_coordinator(ctx, kind="project-ship")
        seen: set[tuple] = set()
        unique: list[Binding] = []
        for row in home.all_bindings():
            key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
            if key not in seen:
                seen.add(key)
                unique.append(row)
        return OpResult(
            groups=[(ctx.coordinator.node_id, unique)] if unique else [],
            trace=home.trace,
            complete=home.complete,
        )

    def _label(self) -> str:
        names = ", ".join(f"?{v.name}" for v in self.variables) if self.variables else "*"
        return f"ProjectOp π[{names}]{' DISTINCT' if self.distinct else ''}"


@dataclass
class SortOp(PhysicalOperator):
    """Full ORDER BY — blocking, runs at the coordinator."""

    child: PhysicalOperator
    items: tuple[OrderItem, ...] = ()

    strategy = "coordinator"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> OpResult:
        home = self.child.execute(ctx).at_coordinator(ctx, kind="sort-ship")
        rows = sorted(home.all_bindings(), key=order_sort_key(self.items))
        return OpResult(
            groups=[(ctx.coordinator.node_id, rows)] if rows else [],
            trace=home.trace,
            complete=home.complete,
        )


@dataclass
class LimitOp(PhysicalOperator):
    """LIMIT/OFFSET at the coordinator (inputs are already ordered or unordered-any)."""

    child: PhysicalOperator
    count: int | None = None
    offset: int = 0

    strategy = "coordinator"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> OpResult:
        home = self.child.execute(ctx).at_coordinator(ctx, kind="limit-ship")
        end = None if self.count is None else self.offset + self.count
        rows = home.all_bindings()[self.offset : end]
        return OpResult(
            groups=[(ctx.coordinator.node_id, rows)] if rows else [],
            trace=home.trace,
            complete=home.complete,
        )


@dataclass
class UnionOp(PhysicalOperator):
    """Bag union: children run in parallel, groups simply pool."""

    inputs: tuple[PhysicalOperator, ...] = ()

    strategy = "parallel"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return self.inputs

    def execute(self, ctx: ExecutionContext) -> OpResult:
        results = [child.execute(ctx) for child in self.inputs]
        groups = [group for result in results for group in result.groups]
        return OpResult(
            groups,
            Trace.parallel([r.trace for r in results]),
            all(r.complete for r in results),
        )


@dataclass
class IntersectionOp(PhysicalOperator):
    """∩ on the shared variables, at the coordinator."""

    inputs: tuple[PhysicalOperator, ...] = ()

    strategy = "coordinator"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return self.inputs

    def execute(self, ctx: ExecutionContext) -> OpResult:
        homes = [child.execute(ctx).at_coordinator(ctx, kind="setop-ship") for child in self.inputs]
        trace = Trace.parallel([h.trace for h in homes])
        complete = all(h.complete for h in homes)
        if not homes or any(not h.all_bindings() for h in homes):
            return OpResult(groups=[], trace=trace, complete=complete)
        variable_sets = []
        for home in homes:
            names: set[str] = set()
            for row in home.all_bindings():
                names |= set(row)
            variable_sets.append(names)
        shared = sorted(set.intersection(*variable_sets))
        key_sets = []
        rows_by_key: dict[tuple, Binding] = {}
        for home in homes:
            keys = set()
            for row in home.all_bindings():
                key = join_key(row, shared)
                keys.add(key)
                rows_by_key.setdefault(key, {name: row.get(name) for name in shared})
            key_sets.append(keys)
        rows = [rows_by_key[k] for k in set.intersection(*key_sets)]
        return OpResult(
            groups=[(ctx.coordinator.node_id, rows)] if rows else [],
            trace=trace,
            complete=complete,
        )


@dataclass
class DifferenceOp(PhysicalOperator):
    """∖ at the coordinator."""

    left: PhysicalOperator = None  # type: ignore[assignment]
    right: PhysicalOperator = None  # type: ignore[assignment]

    strategy = "coordinator"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def execute(self, ctx: ExecutionContext) -> OpResult:
        left_home = self.left.execute(ctx).at_coordinator(ctx, kind="setop-ship")
        right_home = self.right.execute(ctx).at_coordinator(ctx, kind="setop-ship")
        left_rows = left_home.all_bindings()
        right_rows = right_home.all_bindings()
        left_vars = set().union(*(set(b) for b in left_rows)) if left_rows else set()
        right_vars = set().union(*(set(b) for b in right_rows)) if right_rows else set()
        shared = sorted(left_vars & right_vars)
        right_keys = {join_key(row, shared) for row in right_rows}
        rows = [row for row in left_rows if join_key(row, shared) not in right_keys]
        return OpResult(
            groups=[(ctx.coordinator.node_id, rows)] if rows else [],
            trace=Trace.parallel([left_home.trace, right_home.trace]),
            complete=left_home.complete and right_home.complete,
        )


@dataclass
class LeftJoinOp(PhysicalOperator):
    """OPTIONAL (left outer join) at the coordinator."""

    left: PhysicalOperator = None  # type: ignore[assignment]
    right: PhysicalOperator = None  # type: ignore[assignment]

    strategy = "coordinator"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def execute(self, ctx: ExecutionContext) -> OpResult:
        left_home = self.left.execute(ctx).at_coordinator(ctx, kind="join-ship")
        right_home = self.right.execute(ctx).at_coordinator(ctx, kind="join-ship")
        left_rows = left_home.all_bindings()
        right_rows = right_home.all_bindings()
        left_vars = set().union(*(set(b) for b in left_rows)) if left_rows else set()
        right_vars = set().union(*(set(b) for b in right_rows)) if right_rows else set()
        shared = sorted(left_vars & right_vars)
        from collections import defaultdict

        table = defaultdict(list)
        for row in right_rows:
            table[join_key(row, shared)].append(row)
        rows: list[Binding] = []
        for row in left_rows:
            matches = table.get(join_key(row, shared), [])
            if matches:
                rows.extend(merge_bindings(row, m) for m in matches)
            else:
                rows.append(dict(row))
        return OpResult(
            groups=[(ctx.coordinator.node_id, rows)] if rows else [],
            trace=Trace.parallel([left_home.trace, right_home.trace]),
            complete=left_home.complete and right_home.complete,
        )


@dataclass
class CollectOp(PhysicalOperator):
    """Root operator: deliver everything to the coordinator."""

    child: PhysicalOperator = None  # type: ignore[assignment]

    strategy = "root"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def execute(self, ctx: ExecutionContext) -> OpResult:
        return self.child.execute(ctx).at_coordinator(ctx, kind="result")
