"""Cost-based physical planning.

Walks a (rewritten) logical plan bottom-up, generating every applicable
physical strategy per node, costing each with the :class:`CostModel`, and
keeping the cheapest — unless a :class:`PlannerConfig` override forces a
specific strategy (that is how the E4 benchmark compares strategies and how
"influencing the integrated optimizer" from the demo script is realized).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanningError
from repro.algebra.expressions import (
    EdistConstraint,
    PrefixConstraint,
    RangeConstraint,
    extract_constraints,
)
from repro.algebra.operators import (
    Difference,
    Intersection,
    Join,
    LeftJoin,
    Limit,
    LogicalPlan,
    OrderBy,
    PatternScan,
    Projection,
    Selection,
    SimilarityJoin,
    Skyline,
    TopN,
    Union,
)
from repro.optimizer.cost_model import Cost, CostModel
from repro.optimizer.statistics import CatalogStatistics
from repro.physical import (
    AttributeScan,
    OidClusterScan,
    AvLookupScan,
    AvPrefixScan,
    AvRangeScan,
    BroadcastScan,
    CollectOp,
    DifferenceOp,
    FilterOp,
    IndexNestedLoopJoin,
    IntersectionOp,
    LeftJoinOp,
    LimitOp,
    NaiveSimilarityJoin,
    OidLookupScan,
    PhysicalOperator,
    ProjectOp,
    QGramScan,
    QGramSimilarityJoin,
    RehashJoin,
    ShipJoin,
    SkylineOp,
    SortOp,
    TopNOp,
    UnionOp,
    VLookupScan,
    VPrefixScan,
    VRangeScan,
)
from repro.vql.ast import Literal, TriplePattern, Var


@dataclass
class PlannerConfig:
    """Optimizer knobs; ``None`` means "let the cost model decide"."""

    join_strategy: str | None = None  # "ship" | "index-nl" | "rehash"
    range_algorithm: str | None = None  # "shower" | "sequential"
    ranking_prune: bool | None = None  # local pruning for top-N/skyline
    use_qgram: bool | None = None  # q-gram strategy for similarity predicates
    latency_weight: float = 1.0
    message_weight: float = 0.001


@dataclass
class Planned:
    """A physical operator plus the estimates the parent needs."""

    op: PhysicalOperator
    cost: Cost
    rows: float
    producers: float = 1.0


class Planner:
    """Logical plan → cheapest physical plan."""

    def __init__(
        self,
        stats: CatalogStatistics,
        config: PlannerConfig | None = None,
        qgram_available: bool = False,
        qgram_q: int = 3,
    ):
        self.stats = stats
        self.config = config or PlannerConfig()
        self.model = CostModel(
            stats,
            latency_weight=self.config.latency_weight,
            message_weight=self.config.message_weight,
        )
        self.qgram_available = qgram_available
        self.qgram_q = qgram_q

    # -- entry point ------------------------------------------------------------

    def plan(self, logical: LogicalPlan) -> PhysicalOperator:
        """Produce the executable physical plan (rooted at a collector)."""
        planned = self._plan(logical)
        return CollectOp(planned.op)

    def plan_with_cost(self, logical: LogicalPlan) -> tuple[PhysicalOperator, Cost]:
        planned = self._plan(logical)
        return CollectOp(planned.op), planned.cost

    def plan_scan(self, scan: PatternScan) -> Planned:
        """Plan a single pattern scan — the physical access path plus its
        estimates, without a collector root.

        Public entry point for callers that execute scans piecemeal (the
        mutant-query-plan executor re-plans one pending scan per stop).
        """
        return self._plan_scan(scan)

    # -- dispatch ------------------------------------------------------------------

    def _plan(self, node: LogicalPlan) -> Planned:
        if isinstance(node, PatternScan):
            return self._plan_scan(node)
        if isinstance(node, Selection):
            child = self._plan(node.child)
            return Planned(
                FilterOp(child.op, node.predicate),
                child.cost,
                rows=max(0.0, child.rows * 0.5),
                producers=child.producers,
            )
        if isinstance(node, Projection):
            child = self._plan(node.child)
            extra = (self.model.ship_rows(child.rows, child.producers) if node.distinct else Cost())
            producers = 1.0 if node.distinct else child.producers
            return Planned(
                ProjectOp(child.op, node.variables, node.distinct),
                child.cost.then(extra),
                rows=child.rows,
                producers=producers,
            )
        if isinstance(node, Join):
            return self._plan_join(node)
        if isinstance(node, SimilarityJoin):
            return self._plan_similarity_join(node)
        if isinstance(node, LeftJoin):
            left = self._plan(node.left)
            right = self._plan(node.right)
            cost = left.cost.alongside(right.cost).then(
                self.model.ship_join(left.rows, left.producers, right.rows, right.producers)
            )
            return Planned(LeftJoinOp(left.op, right.op), cost, rows=max(left.rows, 1.0))
        if isinstance(node, Union):
            children = [self._plan(child) for child in node.inputs]
            cost = Cost()
            for child in children:
                cost = cost.alongside(child.cost)
            return Planned(
                UnionOp(tuple(child.op for child in children)),
                cost,
                rows=sum(child.rows for child in children),
                producers=sum(child.producers for child in children),
            )
        if isinstance(node, Intersection):
            children = [self._plan(child) for child in node.inputs]
            cost = Cost()
            for child in children:
                cost = cost.alongside(child.cost)
                cost = cost.then(self.model.ship_rows(child.rows, child.producers))
            rows = min((child.rows for child in children), default=0.0)
            return Planned(IntersectionOp(tuple(c.op for c in children)), cost, rows=rows)
        if isinstance(node, Difference):
            left = self._plan(node.left)
            right = self._plan(node.right)
            cost = left.cost.alongside(right.cost).then(
                self.model.ship_rows(left.rows + right.rows, left.producers + right.producers)
            )
            return Planned(DifferenceOp(left.op, right.op), cost, rows=left.rows)
        if isinstance(node, OrderBy):
            child = self._plan(node.child)
            cost = child.cost.then(self.model.ship_rows(child.rows, child.producers))
            return Planned(SortOp(child.op, node.items), cost, rows=child.rows)
        if isinstance(node, Limit):
            child = self._plan(node.child)
            cost = child.cost.then(self.model.ship_rows(child.rows, child.producers))
            count = node.count if node.count is not None else child.rows
            return Planned(
                LimitOp(child.op, node.count, node.offset), cost, rows=min(child.rows, count)
            )
        if isinstance(node, TopN):
            child = self._plan(node.child)
            prune = self.config.ranking_prune if self.config.ranking_prune is not None else True
            shipped = (
                min(child.rows, child.producers * (node.n + node.offset))
                if prune
                else child.rows
            )
            cost = child.cost.then(self.model.ranked_collection(child.producers, shipped))
            return Planned(
                TopNOp(child.op, node.items, node.n, node.offset, prune=prune),
                cost,
                rows=float(node.n),
            )
        if isinstance(node, Skyline):
            child = self._plan(node.child)
            prune = self.config.ranking_prune if self.config.ranking_prune is not None else True
            shipped = child.rows**0.6 * child.producers**0.4 if prune else child.rows
            cost = child.cost.then(self.model.ranked_collection(child.producers, shipped))
            return Planned(
                SkylineOp(child.op, node.items, prune=prune),
                cost,
                rows=max(1.0, child.rows**0.5),
            )
        raise PlanningError(f"no physical strategy for {type(node).__name__}")

    # -- scans ------------------------------------------------------------------------

    def _plan_scan(self, node: PatternScan) -> Planned:
        pattern = node.pattern
        filters = node.filters
        subject_lit = isinstance(pattern.subject, Literal)
        predicate_lit = isinstance(pattern.predicate, Literal)
        object_lit = isinstance(pattern.object, Literal)
        constraints = []
        for expr in filters:
            constraints.extend(extract_constraints(expr))
        object_var = pattern.object.name if isinstance(pattern.object, Var) else None
        algorithm = self.config.range_algorithm

        if subject_lit:
            rows = self.stats.estimate_pattern(pattern)
            return Planned(OidLookupScan(pattern, filters), self.model.lookup(), rows=rows)

        if predicate_lit:
            attribute = str(pattern.predicate.value)  # type: ignore[union-attr]
            attr_count = self.stats.attribute_count(attribute)
            total = max(1, self.stats.total_triples)

            if object_lit:
                rows = attr_count * self.stats.eq_selectivity(attribute)
                return Planned(AvLookupScan(pattern, filters), self.model.lookup(), rows=rows)

            # Constraints on the object variable refine the A#v access path.
            eq = _equality_value(constraints, object_var)
            if eq is not None:
                # An equality filter pins the A#v key; scan the single-point
                # range so the variable still gets bound from the triples.
                rows = attr_count * self.stats.eq_selectivity(attribute)
                return Planned(
                    AvRangeScan(pattern, filters, low=eq, high=eq, algorithm=algorithm),
                    self.model.lookup(),
                    rows=rows,
                )

            edist = _edist_constraint(constraints, object_var)
            if edist is not None and self.qgram_available:
                use_qgram = self.config.use_qgram if self.config.use_qgram is not None else True
                if use_qgram:
                    grams = len(edist.text) + self.qgram_q - 1
                    cost = self.model.qgram_probe(grams)
                    return Planned(
                        QGramScan(
                            pattern,
                            filters,
                            text=edist.text,
                            max_distance=edist.max_distance,
                            q=self.qgram_q,
                        ),
                        cost,
                        rows=max(1.0, attr_count * 0.01),
                    )

            prefix = _prefix_constraint(constraints, object_var)
            if prefix is not None and prefix.prefix:
                fraction = (attr_count / total) * 0.1
                cost = self.model.range_scan(fraction, algorithm or "shower", attr_count * 0.1)
                return Planned(
                    AvPrefixScan(pattern, filters, prefix=prefix.prefix, algorithm=algorithm),
                    cost,
                    rows=attr_count * 0.1,
                    producers=self.stats.expected_leaves(fraction),
                )

            low, low_inc, high, high_inc = _range_bounds(constraints, object_var)
            if low is not None or high is not None:
                selectivity = self.stats.range_selectivity(attribute, low, high)
                fraction = (attr_count / total) * max(selectivity, 1e-6)
                rows = attr_count * selectivity
                cost = self.model.range_scan(fraction, algorithm or "shower", rows)
                return Planned(
                    AvRangeScan(
                        pattern,
                        filters,
                        low=low,
                        high=high,
                        low_inclusive=low_inc,
                        high_inclusive=high_inc,
                        algorithm=algorithm,
                    ),
                    cost,
                    rows=rows,
                    producers=self.stats.expected_leaves(fraction),
                )

            fraction = attr_count / total
            cost = self.model.range_scan(fraction, algorithm or "shower", attr_count)
            return Planned(
                AttributeScan(pattern, filters, algorithm=algorithm),
                cost,
                rows=float(attr_count),
                producers=self.stats.expected_leaves(fraction),
            )

        if object_lit:
            rows = self.stats.estimate_pattern(pattern)
            return Planned(VLookupScan(pattern, filters), self.model.lookup(), rows=rows)

        if object_var is not None:
            prefix = _prefix_constraint(constraints, object_var)
            if prefix is not None and prefix.prefix:
                fraction = 0.05
                cost = self.model.range_scan(fraction, algorithm or "shower", 10)
                return Planned(
                    VPrefixScan(pattern, filters, prefix=prefix.prefix, algorithm=algorithm),
                    cost,
                    rows=self.stats.total_triples * 0.05,
                    producers=self.stats.expected_leaves(fraction),
                )
            low, low_inc, high, high_inc = _range_bounds(constraints, object_var)
            if low is not None or high is not None:
                fraction = 0.2
                cost = self.model.range_scan(fraction, algorithm or "shower", 10)
                return Planned(
                    VRangeScan(
                        pattern,
                        filters,
                        low=low,
                        high=high,
                        low_inclusive=low_inc,
                        high_inclusive=high_inc,
                        algorithm=algorithm,
                    ),
                    cost,
                    rows=self.stats.total_triples * 0.2,
                    producers=self.stats.expected_leaves(fraction),
                )

        fraction = 1.0
        cost = self.model.range_scan(fraction, algorithm or "shower", self.stats.total_triples)
        return Planned(
            BroadcastScan(pattern, filters, algorithm=algorithm),
            cost,
            rows=float(self.stats.total_triples),
            producers=float(self.stats.num_groups),
        )

    # -- joins ------------------------------------------------------------------------

    def _plan_join(self, node: Join) -> Planned:
        left = self._plan(node.left)
        shared = sorted(node.join_variables())
        candidates: list[Planned] = []

        # Strategy 0: a star over one subject variable can be answered in one
        # pass over the OID index, keeping complete tuples distributed.
        star = _collect_star(node)
        if star is not None and self.config.join_strategy in (None, "oid-cluster"):
            subject, patterns, star_filters = star
            rows = min(
                (
                    float(self.stats.attribute_count(str(p.predicate.value)))
                    for p in patterns
                    if isinstance(p.predicate, Literal)
                ),
                default=float(self.stats.distinct_oids),
            )
            fraction = 0.4  # the OID index's share of the posting space
            cost = self.model.range_scan(fraction, "shower", rows)
            candidates.append(
                Planned(
                    OidClusterScan(
                        patterns=tuple(patterns),
                        filters=tuple(star_filters),
                        subject_variable=subject,
                    ),
                    cost,
                    rows=rows,
                    producers=self.stats.expected_leaves(fraction),
                )
            )
            if self.config.join_strategy == "oid-cluster":
                return candidates[0]

        # Strategy 1: ship both sides to the coordinator.
        right = self._plan(node.right)
        join_rows = self._estimate_join_rows(node, left.rows, right.rows)
        ship_cost = left.cost.alongside(right.cost).then(
            self.model.ship_join(left.rows, left.producers, right.rows, right.producers)
        )
        candidates.append(
            Planned(ShipJoin(left.op, right.op, tuple(shared)), ship_cost, rows=join_rows)
        )

        # Strategy 2: index nested loop — right side must be a bare pattern.
        right_scan = _as_pattern_scan(node.right)
        if right_scan is not None and shared and _index_nl_applicable(right_scan.pattern, shared):
            probes = max(1.0, left.rows)
            nl_cost = left.cost.then(
                self.model.ship_rows(left.rows, left.producers)
            ).then(self.model.index_nl_join(probes))
            candidates.append(
                Planned(
                    IndexNestedLoopJoin(
                        left.op,
                        right.op,
                        right_pattern=right_scan.pattern,
                        right_filters=right_scan.filters,
                    ),
                    nl_cost,
                    rows=join_rows,
                )
            )

        # Strategy 3: symmetric re-hash at rendezvous peers.
        if shared:
            rehash_cost = left.cost.alongside(right.cost).then(
                self.model.rehash_join(left.rows, right.rows, join_rows)
            )
            candidates.append(
                Planned(RehashJoin(left.op, right.op, tuple(shared)), rehash_cost, rows=join_rows)
            )

        forced = self.config.join_strategy
        if forced is not None:
            for candidate in candidates:
                if candidate.op.strategy == forced:
                    return candidate
            raise PlanningError(f"forced join strategy {forced!r} is not applicable here")
        return min(candidates, key=lambda planned: self.model.value(planned.cost))

    def _plan_similarity_join(self, node: SimilarityJoin) -> Planned:
        left = self._plan(node.left)
        right = self._plan(node.right)
        rows = max(1.0, left.rows * 0.05)

        candidates: list[Planned] = []
        naive_cost = left.cost.alongside(right.cost).then(
            self.model.ship_join(left.rows, left.producers, right.rows, right.producers)
        )
        candidates.append(
            Planned(
                NaiveSimilarityJoin(
                    left.op, right.op, node.left_variable, node.right_variable, node.max_distance
                ),
                naive_cost,
                rows=rows,
            )
        )
        right_scan = _as_pattern_scan(node.right)
        if (
            right_scan is not None
            and self.qgram_available
            and isinstance(right_scan.pattern.object, Var)
            and right_scan.pattern.object.name == node.right_variable.name
        ):
            grams_per_probe = 8 + self.qgram_q - 1  # average word
            qgram_cost = left.cost.then(
                self.model.qgram_probe(grams_per_probe).scaled(max(1.0, left.rows))
            )
            candidates.append(
                Planned(
                    QGramSimilarityJoin(
                        left.op,
                        right_pattern=right_scan.pattern,
                        right_filters=right_scan.filters,
                        left_variable=node.left_variable,
                        right_variable=node.right_variable,
                        max_distance=node.max_distance,
                        q=self.qgram_q,
                    ),
                    qgram_cost,
                    rows=rows,
                )
            )
        use_qgram = self.config.use_qgram
        if use_qgram is True and len(candidates) > 1:
            return candidates[1]
        if use_qgram is False:
            return candidates[0]
        return min(candidates, key=lambda planned: self.model.value(planned.cost))

    def _estimate_join_rows(self, node: Join, left_rows: float, right_rows: float) -> float:
        """Containment-assumption estimate over the shared variables."""
        shared = node.join_variables()
        if not shared:
            return left_rows * right_rows
        distinct = max(left_rows, right_rows, 1.0)
        for scan in (node.left, node.right):
            pattern_scan = _as_pattern_scan(scan)
            if pattern_scan is not None and isinstance(pattern_scan.pattern.predicate, Literal):
                attribute = str(pattern_scan.pattern.predicate.value)
                distinct = min(distinct, self.stats.attribute_distinct(attribute))
        return max(0.0, left_rows * right_rows / max(distinct, 1.0))


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _collect_star(node: LogicalPlan) -> tuple[str, list[TriplePattern], list] | None:
    """Detect a join subtree whose leaves all share one subject variable.

    Returns ``(subject_var, patterns, filters)`` when the whole subtree is a
    star over a single subject with at least two patterns; pushed-down and
    residual predicates become the star's filters.  Otherwise None.
    """
    patterns: list[TriplePattern] = []
    filters: list = []

    def walk(current: LogicalPlan) -> bool:
        if isinstance(current, PatternScan):
            patterns.append(current.pattern)
            filters.extend(current.filters)
            return True
        if isinstance(current, Selection):
            filters.append(current.predicate)
            return walk(current.child)
        if isinstance(current, Join):
            return walk(current.left) and walk(current.right)
        return False

    if not walk(node) or len(patterns) < 2:
        return None
    subjects = {p.subject.name if isinstance(p.subject, Var) else None for p in patterns}
    if len(subjects) != 1 or None in subjects:
        return None
    return subjects.pop(), patterns, filters


def _as_pattern_scan(node: LogicalPlan) -> PatternScan | None:
    if isinstance(node, PatternScan):
        return node
    if isinstance(node, Selection) and isinstance(node.child, PatternScan):
        # A selection over a scan is still probe-able; merge the predicate.
        scan = node.child
        return PatternScan(scan.pattern, scan.filters + (node.predicate,))
    return None


def _index_nl_applicable(pattern: TriplePattern, shared: list[str]) -> bool:
    """The shared variable must be probe-able via an index on the right side."""
    if len(shared) != 1:
        return False
    name = shared[0]
    if isinstance(pattern.subject, Var) and pattern.subject.name == name:
        return True
    if isinstance(pattern.object, Var) and pattern.object.name == name:
        return True
    return False


def _equality_value(constraints, variable: str | None):
    if variable is None:
        return None
    for constraint in constraints:
        if (
            isinstance(constraint, RangeConstraint)
            and constraint.variable == variable
            and constraint.op == "="
        ):
            return constraint.value
    return None


def _edist_constraint(constraints, variable: str | None) -> EdistConstraint | None:
    if variable is None:
        return None
    for constraint in constraints:
        if isinstance(constraint, EdistConstraint) and constraint.variable == variable:
            return constraint
    return None


def _prefix_constraint(constraints, variable: str | None) -> PrefixConstraint | None:
    if variable is None:
        return None
    for constraint in constraints:
        if isinstance(constraint, PrefixConstraint) and constraint.variable == variable:
            return constraint
    return None


def _range_bounds(constraints, variable: str | None):
    """Combine range constraints into (low, low_inclusive, high, high_inclusive)."""
    low = high = None
    low_inc = high_inc = True
    if variable is None:
        return low, low_inc, high, high_inc
    for constraint in constraints:
        if not isinstance(constraint, RangeConstraint) or constraint.variable != variable:
            continue
        value = constraint.value
        if constraint.op in (">", ">="):
            if low is None or _tighter_low(value, constraint.op == ">", low, not low_inc):
                low, low_inc = value, constraint.op == ">="
        elif constraint.op in ("<", "<="):
            if high is None or _tighter_high(value, constraint.op == "<", high, not high_inc):
                high, high_inc = value, constraint.op == "<="
    return low, low_inc, high, high_inc


def _tighter_low(value, strict, current, current_strict) -> bool:
    try:
        if value > current:
            return True
        if value == current and strict and not current_strict:
            return True
    except TypeError:
        return False
    return False


def _tighter_high(value, strict, current, current_strict) -> bool:
    try:
        if value < current:
            return True
        if value == current and strict and not current_strict:
            return True
    except TypeError:
        return False
    return False
