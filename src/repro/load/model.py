"""Per-peer service times and FIFO queueing.

The event kernel of PR 3 made fan-out latency a *measured* quantity, but a
peer was still an infinitely fast server: a delivered message completed the
instant it arrived, so load never fed back into latency.  This module models
the missing half.  Every node gets

* a **service-time model** — a :class:`ServiceProfile` mapping message kinds
  to processing cost (seconds per message plus an optional per-item cost for
  sized batch messages), scaled by a per-peer **speed factor** (heterogeneous
  hardware, drawn from a configurable distribution by
  :func:`draw_speed_factors`); and
* a **FIFO work queue** — a :class:`NodeQueue` whose single server processes
  admitted messages in arrival order.  A message arriving at ``t`` starts
  service at ``max(t, busy_until)`` and finishes ``service`` seconds later,
  so a delivery's completion becomes *link latency + queueing delay + service
  time* instead of link latency alone.

:class:`LoadModel` bundles profile, speeds and the per-node queues.  The
event scheduler (:mod:`repro.net.scheduler`) calls :meth:`LoadModel.offer`
for every delivered message — the admission gate in front of
:meth:`LoadModel.admit` — and fires the completion callback at the finish
instant; with a zero profile every finish equals its arrival and the event
sequence is byte-identical to running without a load model (asserted by
tests and benchmark E12).

Saturated peers need not accept every job: pass ``admission=`` an
:class:`~repro.load.shedding.AdmissionPolicy` (or a per-peer dict of them)
and :meth:`NodeQueue.offer` consults it before admitting, returning a
``reject`` or ``defer`` verdict once the peer is past its queue-depth or
sojourn budget.  With ``admission=None`` (the default) every offer accepts
and the behaviour is exactly the PR 4 model.

Everything is deterministic: queues are plain arithmetic over the arrival
order the simulator already fixes, and speed factors come from a seeded RNG.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from repro.load.shedding import ACCEPT, DEFER, AdmissionPolicy


@dataclass(frozen=True)
class ServiceSample:
    """One serviced message: where it queued and how long each phase took."""

    node_id: str
    kind: str
    size: int
    arrival: float
    start: float
    finish: float

    @property
    def wait(self) -> float:
        """Queueing delay: time between arrival and start of service."""
        return self.start - self.arrival

    @property
    def service(self) -> float:
        """Pure processing time."""
        return self.finish - self.start

    @property
    def sojourn(self) -> float:
        """Total time in the system (wait + service)."""
        return self.finish - self.arrival


class ServiceProfile:
    """Processing cost per message kind, in seconds on a speed-1.0 peer.

    ``cost(kind, size) = base[kind] + per_item * size`` — the per-item term
    models batch messages (a region's sub-batch costs proportionally more to
    apply than a single probe).  Kinds without an explicit base fall back to
    ``default``.
    """

    def __init__(
        self,
        costs: dict[str, float] | None = None,
        default: float = 0.0,
        per_item: float = 0.0,
    ):
        costs = dict(costs or {})
        for kind, cost in costs.items():
            if cost < 0:
                raise ValueError(f"service cost for {kind!r} must be >= 0, got {cost}")
        if default < 0 or per_item < 0:
            raise ValueError("default and per_item costs must be >= 0")
        self.costs = costs
        self.default = default
        self.per_item = per_item

    def cost(self, kind: str, size: int = 1) -> float:
        """Seconds of work one message of ``kind`` and ``size`` demands."""
        return self.costs.get(kind, self.default) + self.per_item * max(0, size)

    def is_zero(self) -> bool:
        """True when every message costs nothing (the PR 3 behaviour)."""
        return self.default == 0.0 and self.per_item == 0.0 and not any(self.costs.values())


#: The no-op profile: peers are infinitely fast servers again.
ZERO_PROFILE = ServiceProfile()


def draw_speed_factors(
    node_ids: list[str],
    distribution: str = "lognormal",
    sigma: float = 0.4,
    low: float = 0.5,
    high: float = 2.0,
    seed: int = 0,
) -> dict[str, float]:
    """Heterogeneous per-peer speed factors (service time = cost / speed).

    ``lognormal`` (median 1.0, shape ``sigma``) models the long tail of slow
    machines in deployed P2P populations; ``uniform`` draws from
    ``[low, high]``; ``constant`` gives a homogeneous 1.0 fleet.  Node ids
    are sorted before sampling so the mapping depends only on the membership
    set and the seed, not on insertion order.
    """
    rng = random.Random(seed)
    factors: dict[str, float] = {}
    for node_id in sorted(node_ids):
        if distribution == "constant":
            factors[node_id] = 1.0
        elif distribution == "uniform":
            if not 0 < low <= high:
                raise ValueError("need 0 < low <= high")
            factors[node_id] = rng.uniform(low, high)
        elif distribution == "lognormal":
            factors[node_id] = rng.lognormvariate(0.0, sigma)
        else:
            raise ValueError(f"unknown speed distribution {distribution!r}")
    return factors


@dataclass
class NodeQueue:
    """One peer's FIFO work queue: a single server draining in arrival order.

    The simulator already delivers events in time order (FIFO on ties), so
    the queue reduces to arithmetic: track when the server frees up
    (``busy_until``) and the finish instants of admitted-but-unfinished jobs
    (for the queue-depth metric).  No extra simulator events are needed for
    bookkeeping — completions are scheduled by the caller.
    """

    #: EWMA weight for the advertised (smoothed) queue depth.
    EWMA_ALPHA = 0.5

    busy_until: float = 0.0
    jobs: int = 0
    busy_time: float = 0.0
    total_wait: float = 0.0
    total_sojourn: float = 0.0
    max_depth: int = 0
    rejected: int = 0
    deferred: int = 0
    ewma_depth: float = 0.0
    _finishes: deque = field(default_factory=deque)

    def admit(self, arrival: float, service: float) -> tuple[float, float, int]:
        """Admit one job; return ``(start, finish, depth_on_arrival)``.

        ``depth_on_arrival`` counts the jobs already in the system (queued or
        in service) when this one arrived — the M/G/1-style backlog the new
        job waits behind.
        """
        if service < 0:
            raise ValueError(f"service time must be >= 0, got {service}")
        while self._finishes and self._finishes[0] <= arrival:
            self._finishes.popleft()
        depth = len(self._finishes)
        start = max(arrival, self.busy_until)
        finish = start + service
        self.busy_until = finish
        self._finishes.append(finish)
        self.jobs += 1
        self.busy_time += service
        self.total_wait += start - arrival
        self.total_sojourn += finish - arrival
        self.max_depth = max(self.max_depth, depth + 1)
        self.ewma_depth += self.EWMA_ALPHA * ((depth + 1) - self.ewma_depth)
        return start, finish, depth

    def offer(
        self,
        arrival: float,
        service: float,
        policy: "AdmissionPolicy | None" = None,
        parked: bool = False,
    ) -> tuple[str, float, float, int]:
        """The admission gate in front of :meth:`admit`.

        Consults ``policy`` with the queue state the arriving job would see
        (depth and backlog); on ``accept`` the job is admitted exactly as by
        :meth:`admit` and ``("accept", start, finish, depth)`` is returned.
        On ``reject``/``defer`` *nothing is admitted* — the queue state is
        untouched apart from the shed counters — and start/finish echo the
        arrival instant.  With ``policy=None`` every offer accepts, so the
        admission layer is invisible unless explicitly configured.

        ``parked=True`` marks the re-offer of a job already parked at this
        peer: a parked job can only wait longer or get in, so any decline is
        returned (and counted) as a deferral — one message therefore counts
        at most one rejection, however many park rounds follow.
        """
        if policy is not None:
            depth = self.depth_at(arrival)
            verdict = policy.decide(depth, self.backlog(arrival), service)
            if verdict != ACCEPT:
                if parked or verdict == DEFER:
                    self.deferred += 1
                    return DEFER, arrival, arrival, depth
                self.rejected += 1
                return verdict, arrival, arrival, depth
        start, finish, depth = self.admit(arrival, service)
        return ACCEPT, start, finish, depth

    def backlog(self, now: float) -> float:
        """Seconds of admitted work still ahead of a job arriving ``now``."""
        return max(0.0, self.busy_until - now)

    def depth_at(self, now: float) -> int:
        """Jobs in the system (queued or in service) at instant ``now``."""
        while self._finishes and self._finishes[0] <= now:
            self._finishes.popleft()
        return len(self._finishes)

    def advertised_depth(self, now: float) -> float:
        """The depth this peer piggybacks on outgoing messages.

        ``min(EWMA, instantaneous)``: smoothed against one-delivery spikes
        but never *overstating* the current backlog — the conservative half
        of the hint-staleness invariant (a hint is always <= the subject's
        true peak depth since the piggyback).
        """
        return min(self.ewma_depth, float(self.depth_at(now)))


class LoadModel:
    """Service-time model + per-node queues for one overlay.

    Attach to an event scheduler (``EventScheduler(..., load=model)`` or
    ``pnet.event_driven(load=model)``) and every delivered message is routed
    through :meth:`admit`; the scheduler fires downstream callbacks at the
    finish instant, so queueing delay and service time propagate into hop
    chains, fan-outs and full query traces.
    """

    def __init__(
        self,
        profile: ServiceProfile | None = None,
        speeds: dict[str, float] | float = 1.0,
        record_samples: bool = True,
        admission: "AdmissionPolicy | dict[str, AdmissionPolicy] | None" = None,
    ):
        self.profile = profile or ZERO_PROFILE
        if isinstance(admission, dict):
            self._admission_default: AdmissionPolicy | None = None
            self._admission_by_node = dict(admission)
        else:
            self._admission_default = admission
            self._admission_by_node = {}
        if isinstance(speeds, (int, float)):
            if speeds <= 0:
                raise ValueError("speed factor must be > 0")
            self._default_speed = float(speeds)
            self._speeds: dict[str, float] = {}
        else:
            for node_id, factor in speeds.items():
                if factor <= 0:
                    raise ValueError(f"speed factor for {node_id!r} must be > 0")
            self._default_speed = 1.0
            self._speeds = dict(speeds)
        self.record_samples = record_samples
        self.samples: list[ServiceSample] = []
        self._queues: dict[str, NodeQueue] = {}

    def speed(self, node_id: str) -> float:
        return self._speeds.get(node_id, self._default_speed)

    def service_time(self, node_id: str, kind: str, size: int = 1) -> float:
        """Seconds ``node_id`` needs to process one ``kind`` message."""
        return self.profile.cost(kind, size) / self.speed(node_id)

    def queue(self, node_id: str) -> NodeQueue:
        queue = self._queues.get(node_id)
        if queue is None:
            queue = self._queues[node_id] = NodeQueue()
        return queue

    def backlog(self, node_id: str, now: float) -> float:
        """Seconds of admitted work queued at ``node_id`` (non-mutating:
        peers that never serviced anything stay out of the metrics)."""
        queue = self._queues.get(node_id)
        return queue.backlog(now) if queue is not None else 0.0

    def queue_depth(self, node_id: str, now: float) -> int:
        """Jobs in ``node_id``'s system at ``now`` (0 for untouched peers)."""
        queue = self._queues.get(node_id)
        return queue.depth_at(now) if queue is not None else 0

    def advertised_depth(self, node_id: str, now: float) -> float:
        """The smoothed depth ``node_id`` piggybacks on outgoing messages."""
        queue = self._queues.get(node_id)
        return queue.advertised_depth(now) if queue is not None else 0.0

    def policy(self, node_id: str) -> "AdmissionPolicy | None":
        """The admission policy governing ``node_id`` (None = accept all)."""
        return self._admission_by_node.get(node_id, self._admission_default)

    def offer(
        self, node_id: str, arrival: float, kind: str, size: int = 1, parked: bool = False
    ) -> tuple[str, float, float, int]:
        """Offer one delivered message to ``node_id``'s admission gate.

        Returns ``(verdict, start, finish, depth)``; only an ``"accept"``
        verdict mutates the queue and records a sample (see
        :meth:`NodeQueue.offer`, including the ``parked`` re-offer flag).
        """
        service = self.service_time(node_id, kind, size)
        verdict, start, finish, depth = self.queue(node_id).offer(
            arrival, service, self.policy(node_id), parked=parked
        )
        if verdict == "accept" and self.record_samples:
            self.samples.append(ServiceSample(node_id, kind, size, arrival, start, finish))
        return verdict, start, finish, depth

    def admit(
        self, node_id: str, arrival: float, kind: str, size: int = 1
    ) -> tuple[float, float, int]:
        """Queue one delivered message; return ``(start, finish, depth)``."""
        service = self.service_time(node_id, kind, size)
        start, finish, depth = self.queue(node_id).admit(arrival, service)
        if self.record_samples:
            self.samples.append(ServiceSample(node_id, kind, size, arrival, start, finish))
        return start, finish, depth

    # -- metrics -------------------------------------------------------------

    def busy_by_peer(self) -> dict[str, float]:
        """Total service seconds burned per peer — the query-load currency."""
        return {node_id: queue.busy_time for node_id, queue in self._queues.items()}

    def utilization(self, horizon: float) -> dict[str, float]:
        """Fraction of ``horizon`` each peer spent serving (can exceed 1.0
        when the offered load outruns the peer — the saturation signal)."""
        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        return {
            node_id: queue.busy_time / horizon for node_id, queue in self._queues.items()
        }

    def sojourns(self, node_id: str | None = None) -> list[float]:
        """Recorded per-message sojourn times (optionally for one peer)."""
        return [
            s.sojourn for s in self.samples if node_id is None or s.node_id == node_id
        ]

    def snapshot(self, horizon: float | None = None) -> dict:
        """Stable per-peer summary (sorted keys; suitable for determinism tests)."""
        out: dict = {}
        for node_id in sorted(self._queues):
            queue = self._queues[node_id]
            stats = {
                "jobs": queue.jobs,
                "busy": round(queue.busy_time, 9),
                "wait": round(queue.total_wait, 9),
                "sojourn": round(queue.total_sojourn, 9),
                "max_depth": queue.max_depth,
            }
            # Shed counters appear only when shedding happened, so runs
            # without an admission policy keep their historical snapshot.
            if queue.rejected:
                stats["rejected"] = queue.rejected
            if queue.deferred:
                stats["deferred"] = queue.deferred
            if horizon:
                stats["utilization"] = round(queue.busy_time / horizon, 9)
            out[node_id] = stats
        return out

    def reset(self) -> None:
        """Drop all queues and samples (speeds and profile are kept)."""
        self.samples.clear()
        self._queues.clear()
