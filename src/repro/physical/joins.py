"""Physical join strategies (paper §2/§4: "identical queries ... different
performance results depending on the current data load, network state").

Three implementations of the logical ⋈, differing in data flow:

* :class:`ShipJoin` — both inputs ship to the coordinator, which hash-joins
  locally.  Latency = slower input + one shipping wave; total traffic carries
  *all* rows of both sides.  Best when inputs are small or the coordinator
  needs everything anyway.

* :class:`IndexNestedLoopJoin` — only the left input runs; for each distinct
  join value, the right pattern is resolved with a direct A#v (or OID) index
  lookup.  Traffic ∝ distinct left values × O(log N); unbeatable for small,
  selective left sides, hopeless for large fan-out.

* :class:`RehashJoin` — the PIER-style symmetric re-hash: every producer
  ships each of its rows' join groups *directly* to the rendezvous peer
  responsible for the join value's key; rendezvous peers join their share and
  send only matches to the coordinator.  Traffic ∝ |L|+|R| but fully
  parallel, and non-matching rows never cross the coordinator's link.

All three compute exactly the multiset the reference executor computes; only
cost differs — that is what experiment E4 sweeps.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import PlanningError, RoutingError
from repro.net.trace import Trace
from repro.algebra.semantics import (
    Binding,
    join_key,
    merge_bindings,
)
from repro.physical.base import (
    ExecutionContext,
    OpResult,
    PhysicalOperator,
    match_postings,
)
from repro.pgrid.routing import point_key, replay_hops, route_hops
from repro.triples.index import IndexKind, av_key, oid_key, v_key
from repro.vql.ast import Expression, Literal, TriplePattern, Var


@dataclass
class _JoinBase(PhysicalOperator):
    left: PhysicalOperator
    right: PhysicalOperator

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    @staticmethod
    def _shared_variables(left_rows: list[Binding], right_rows: list[Binding]) -> list[str]:
        left_vars = set().union(*(set(b) for b in left_rows)) if left_rows else set()
        right_vars = set().union(*(set(b) for b in right_rows)) if right_rows else set()
        return sorted(left_vars & right_vars)


@dataclass
class ShipJoin(_JoinBase):
    """Ship both sides to the coordinator, hash join locally."""

    join_variables: tuple[str, ...] = ()

    strategy = "ship"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        left_result = self.left.execute(ctx)
        right_result = self.right.execute(ctx)
        left_home = left_result.at_coordinator(ctx, kind="join-ship")
        right_home = right_result.at_coordinator(ctx, kind="join-ship")
        left_rows = left_home.all_bindings()
        right_rows = right_home.all_bindings()
        shared = list(self.join_variables) or self._shared_variables(left_rows, right_rows)
        joined = _hash_join(left_rows, right_rows, shared)
        trace = Trace.parallel([left_home.trace, right_home.trace])
        return OpResult(
            groups=[(ctx.coordinator.node_id, joined)] if joined else [],
            trace=trace,
            complete=left_result.complete and right_result.complete,
        )


@dataclass
class IndexNestedLoopJoin(_JoinBase):
    """Left side runs; right side is resolved by per-value index lookups.

    ``right`` must be a *pattern spec* — this strategy does not execute the
    right operator; it consults the right pattern's index directly.  The
    shared variable must appear in the right pattern's subject (OID lookup)
    or object with literal predicate (A#v lookup) or object alone (v lookup).
    """

    right_pattern: TriplePattern | None = None
    right_filters: tuple[Expression, ...] = ()

    strategy = "index-nl"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        if self.right_pattern is None:
            raise PlanningError("IndexNestedLoopJoin needs the right pattern spec")
        left_result = self.left.execute(ctx).at_coordinator(ctx, kind="join-ship")
        left_rows = left_result.all_bindings()
        if not left_rows:
            # An empty outer side joins to nothing; there is no position to
            # probe (and no need to).
            return OpResult([], left_result.trace, left_result.complete)
        pattern = self.right_pattern
        position, shared_name = self._lookup_position(pattern, left_rows)

        joined: list[Binding] = []
        cache: dict[object, list[Binding]] = {}
        key_for_value: dict[object, tuple[str, IndexKind]] = {}
        for value in {row.get(shared_name) for row in left_rows if shared_name in row}:
            key, kind = self._index_key(pattern, position, value)
            if key is None:
                cache[value] = []
                continue
            key_for_value[value] = (key, kind)
        # One destination-grouped multi-key lookup instead of a routed
        # lookup per distinct value — probes to the same region share a route.
        probe_trace = Trace.ZERO
        entries_by_key: dict[str, list] = {}
        if key_for_value:
            entries_by_key, probe_trace = ctx.pnet.lookup_many(
                [key for key, _kind in key_for_value.values()],
                start=ctx.coordinator,
                kind="join-lookup",
            )
        for value, (key, kind) in key_for_value.items():
            cache[value] = match_postings(
                entries_by_key.get(key, []),
                pattern,
                kind,
                shared_name,
                value,
                self.right_filters,
            )
        for row in left_rows:
            for match in cache.get(row.get(shared_name), ()):
                if _consistent(row, match):
                    joined.append(merge_bindings(row, match))
        trace = left_result.trace.then(probe_trace)
        return OpResult(
            groups=[(ctx.coordinator.node_id, joined)] if joined else [],
            trace=trace,
            complete=left_result.complete,
        )

    def _lookup_position(self, pattern: TriplePattern, left_rows: list[Binding]) -> tuple[str, str]:
        """Which position of the right pattern the shared variable sits in."""
        left_vars = set().union(*(set(b) for b in left_rows)) if left_rows else set()
        if isinstance(pattern.subject, Var) and pattern.subject.name in left_vars:
            return "subject", pattern.subject.name
        if isinstance(pattern.object, Var) and pattern.object.name in left_vars:
            return "object", pattern.object.name
        raise PlanningError(
            "IndexNestedLoopJoin: shared variable must be the right pattern's "
            "subject or object"
        )

    def _index_key(
        self, pattern: TriplePattern, position: str, value
    ) -> tuple[str | None, IndexKind]:
        if position == "subject":
            # OIDs are strings; coerce like the MQP probe so non-string join
            # values probe the same key instead of being dropped.
            return oid_key(str(value)), IndexKind.OID
        if isinstance(pattern.predicate, Literal):
            return av_key(str(pattern.predicate.value), value), IndexKind.AV
        return v_key(value), IndexKind.V

    def _label(self) -> str:
        return f"IndexNestedLoopJoin[{self.right_pattern}]"


@dataclass
class RehashJoin(_JoinBase):
    """Symmetric re-hash join at rendezvous peers (Mutant-Query-Plan style
    distributed join; cf. PIER)."""

    join_variables: tuple[str, ...] = ()

    strategy = "rehash"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        left_result = self.left.execute(ctx)
        right_result = self.right.execute(ctx)
        left_rows_all = left_result.all_bindings()
        right_rows_all = right_result.all_bindings()
        shared = list(self.join_variables) or self._shared_variables(left_rows_all, right_rows_all)
        if not shared:
            # Cartesian products cannot rendezvous — fall back to shipping.
            ship = ShipJoin(self.left, self.right)
            return ship.execute(ctx)

        arrivals: dict[str, dict[str, list[tuple[Binding, bool]]]] = defaultdict(
            lambda: defaultdict(list)
        )
        complete = left_result.complete and right_result.complete
        # First pass: discover every bucket's route (no messages yet), so the
        # shipping wave can then be charged in whichever execution model is
        # active — analytic replay, or interleaved events at a common start.
        plans: list[tuple[list[tuple[str, str]], tuple[str, str, int] | None]] = []
        failed_routes: list[list[tuple[str, str]]] = []
        for result, is_left in ((left_result, True), (right_result, False)):
            for peer_id, rows in result.groups:
                by_value: dict[tuple, list[Binding]] = defaultdict(list)
                for row in rows:
                    if any(name not in row for name in shared):
                        continue
                    by_value[join_key(row, shared)].append(row)
                producer = ctx.pnet.net.nodes[peer_id]
                for value_key, bucket in by_value.items():
                    # Point routing: every producer must land in the SAME
                    # leaf group for a value, even when the trie is split
                    # deeper than the rendezvous key.
                    rendezvous_key = point_key(v_key(_rendezvous_value(value_key)))
                    try:
                        dest, hops = route_hops(producer, rendezvous_key, rng=ctx.rng)
                    except RoutingError as error:
                        complete = False
                        failed_routes.append(getattr(error, "hops", []))
                        continue
                    # Routing may land on any replica of the responsible
                    # group; both sides must meet at the SAME peer, so
                    # canonicalize to the group's smallest online member
                    # (one extra intra-group hop when needed).
                    candidates = [dest.node_id, *dest.online_replicas()]
                    rendezvous_id = min(candidates)
                    if rendezvous_id != dest.node_id:
                        payload = (dest.node_id, rendezvous_id, len(bucket))
                    elif dest is not producer:
                        payload = (producer.node_id, dest.node_id, len(bucket))
                    else:
                        payload = None
                    plans.append((hops, payload))
                    for row in bucket:
                        arrivals[rendezvous_id][str(value_key)].append((row, is_left))

        arrival_trace = self._ship_buckets(ctx, plans, failed_routes)
        base = Trace.parallel([left_result.trace, right_result.trace]).then(arrival_trace)

        joined_all: list[Binding] = []
        result_sends: list[tuple[str, str, str, int]] = []
        for dest_id, by_value in arrivals.items():
            local_matches: list[Binding] = []
            for _value, pairs in by_value.items():
                lefts = [row for row, is_left in pairs if is_left]
                rights = [row for row, is_left in pairs if not is_left]
                local_matches.extend(_hash_join(lefts, rights, shared))
            if local_matches:
                result_sends.append(
                    (dest_id, ctx.coordinator.node_id, "join-result", len(local_matches))
                )
                joined_all.extend(local_matches)
        trace = base.then(ctx.pnet.ship_many(result_sends)) if result_sends else base
        return OpResult(
            groups=[(ctx.coordinator.node_id, joined_all)] if joined_all else [],
            trace=trace,
            complete=complete,
        )

    @staticmethod
    def _ship_buckets(
        ctx: ExecutionContext,
        plans: list[tuple[list[tuple[str, str]], tuple[str, str, int] | None]],
        failed_routes: list[list[tuple[str, str]]],
    ) -> Trace:
        """Charge the per-bucket rendezvous shipping wave.

        Causal-trace mode replays every bucket's hops analytically and takes
        the slowest branch; event-driven mode starts all chains at the same
        instant so producers race on the simulated clock, and the wave
        completes at the measured max.  Partial hops of failed routes are
        accounted (they were sent) but never complete, matching the
        best-effort semantics of the synchronous path.
        """
        pnet = ctx.pnet
        scheduler = pnet.scheduler
        if scheduler is None:
            branches = []
            for hops, payload in plans:
                trace = replay_hops(pnet.net, hops, "join-rehash", 1)
                if payload is not None:
                    src, dst, size = payload
                    trace = trace.then(pnet.net.send(src, dst, "join-rehash", size))
                branches.append(trace)
            for hops in failed_routes:
                replay_hops(pnet.net, hops, "join-rehash", 1)
            return Trace.parallel(branches) if branches else Trace.ZERO

        chains = []
        for hops, payload in plans:

            def arrived(
                _time: float, payload: tuple[str, str, int] | None = payload
            ) -> list[tuple[str, str, str, int]]:
                if payload is None:
                    return []
                src, dst, size = payload
                return [(src, dst, "join-rehash", size)]

            chains.append((hops, "join-rehash", 1, arrived))
        untracked = [(hops, "join-rehash", 1) for hops in failed_routes]
        return scheduler.run_chains(chains, untracked=untracked)


def _rendezvous_value(value_key: tuple) -> str:
    """Deterministic string form of a join key for rendezvous routing."""
    return "\x03".join(repr(v) for v in value_key)


def _consistent(a: Binding, b: Binding) -> bool:
    return all(b.get(name, value) == value for name, value in a.items() if name in b)


def _hash_join(
    left_rows: list[Binding], right_rows: list[Binding], shared: list[str]
) -> list[Binding]:
    if not shared:
        return [merge_bindings(l, r) for l in left_rows for r in right_rows]
    if len(right_rows) < len(left_rows):
        left_rows, right_rows = right_rows, left_rows
    table: dict[tuple, list[Binding]] = defaultdict(list)
    for row in left_rows:
        table[join_key(row, shared)].append(row)
    result: list[Binding] = []
    for row in right_rows:
        for match in table.get(join_key(row, shared), ()):
            if _consistent(match, row):
                result.append(merge_bindings(match, row))
    return result
