"""Chord baseline: ring routing, replication, and the range-index trie."""

import math
import random
import string

import pytest

from repro.chord import ChordRangeIndex, ChordRing
from repro.chord.node import RING, chord_hash, in_interval
from repro.pgrid import KeyRange, encode_string


def _words(count, seed):
    rng = random.Random(seed)
    return sorted(
        {"".join(rng.choice(string.ascii_lowercase) for _ in range(5)) for _ in range(count)}
    )


class TestIntervalHelper:
    def test_plain_interval(self):
        assert in_interval(5, 2, 8)
        assert not in_interval(9, 2, 8)

    def test_inclusive_hi(self):
        assert in_interval(8, 2, 8, inclusive_hi=True)
        assert not in_interval(8, 2, 8, inclusive_hi=False)

    def test_wrapping_interval(self):
        assert in_interval(1, RING - 5, 3)
        assert in_interval(RING - 1, RING - 5, 3)
        assert not in_interval(100, RING - 5, 3)

    def test_full_ring_when_equal(self):
        assert in_interval(12345, 7, 7)

    def test_hash_is_stable_and_bounded(self):
        assert chord_hash("key") == chord_hash("key")
        assert 0 <= chord_hash("key") < RING


class TestRing:
    def test_put_get_roundtrip(self):
        ring = ChordRing(32, seed=1)
        for index, word in enumerate(_words(50, 1)):
            ring.put(f"k{index}", word)
        for index, word in enumerate(_words(50, 1)):
            value, _trace = ring.get(f"k{index}")
            assert value == word

    def test_missing_key(self):
        ring = ChordRing(8, seed=2)
        value, _trace = ring.get("never-stored")
        assert value is None

    def test_hops_logarithmic(self):
        ring = ChordRing(128, seed=3)
        hops = []
        for index in range(60):
            ring.put(f"k{index}", index)
            _value, trace = ring.get(f"k{index}")
            hops.append(trace.hops)
        assert sum(hops) / len(hops) <= 2 * math.log2(128)

    def test_single_node_ring(self):
        ring = ChordRing(1, seed=4)
        ring.put("a", 1)
        value, trace = ring.get("a")
        assert value == 1

    def test_replication_survives_primary_failure(self):
        ring = ChordRing(32, seed=5, replication=3)
        ring.put("precious", "data")
        owner, _trace = ring.find_successor(ring.random_online_node(), chord_hash("precious"))
        owner.fail()
        value, _trace = ring.get("precious")
        assert value == "data"

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ChordRing(0)
        with pytest.raises(ValueError):
            ChordRing(4, replication=0)

    def test_consistent_hashing_destroys_order(self):
        # Adjacent strings land far apart: the motivation for the extra trie.
        ids = [chord_hash(w) for w in ["aaa", "aab", "aac", "aad"]]
        gaps = [abs(a - b) for a, b in zip(ids, ids[1:])]
        assert max(gaps) > RING // 100


class TestRangeIndex:
    def _build(self, num_nodes=32, words=None, seed=7, leaf_capacity=8):
        ring = ChordRing(num_nodes, seed=seed, replication=2)
        index = ChordRangeIndex(ring, leaf_capacity=leaf_capacity)
        words = words if words is not None else _words(120, seed)
        for position, word in enumerate(words):
            index.insert(encode_string(word), f"i{position}", word)
        return ring, index, words

    def test_range_query_exact(self):
        _ring, index, words = self._build()
        expected = sorted(w for w in words if w.startswith("a"))
        results, _trace, _visited = index.range_query(KeyRange.subtree(encode_string("a")))
        assert sorted(v for _k, _i, v in results) == expected

    def test_open_interval(self):
        _ring, index, words = self._build()
        key_range = KeyRange(encode_string("f"), encode_string("q"))
        expected = sorted(w for w in words if "f" <= w < "q")
        results, _trace, _visited = index.range_query(key_range)
        assert sorted(v for _k, _i, v in results) == expected

    def test_leaves_split_on_overflow(self):
        _ring, index, _words = self._build(leaf_capacity=4)
        root, _trace = index.ring.get("trie:")
        assert root["leaf"] is False  # must have split at least once

    def test_range_costs_more_messages_than_pgrid(self):
        """The paper's architectural claim (§2), as an executable assertion."""
        words = _words(150, 11)
        ring, index, _ = self._build(num_nodes=32, words=words, seed=11)
        from repro.pgrid import build_network, bulk_load, range_query_shower

        keys = [encode_string(w) for w in words]
        pnet = build_network(32, data_keys=keys, replication=2, seed=11)
        bulk_load(pnet, [(k, w, w) for k, w in zip(keys, words)])

        key_range = KeyRange.subtree(encode_string("a"))
        _r1, chord_trace, _v = index.range_query(key_range)
        _r2, pgrid_trace, _c = range_query_shower(pnet, key_range)
        assert chord_trace.messages > pgrid_trace.messages

    def test_insert_maintenance_cost_grows_with_depth(self):
        ring = ChordRing(16, seed=13, replication=1)
        index = ChordRangeIndex(ring, leaf_capacity=2)
        shallow = index.insert(encode_string("aa"), "x1", "aa")
        for position, word in enumerate(_words(40, 13)):
            index.insert(encode_string(word), f"y{position}", word)
        deep = index.insert(encode_string("zz"), "x2", "zz")
        assert deep.messages > shallow.messages
