"""E6 — ranking operators: "top-N and skylines" over distributed data
(paper §2-4), including the paper's own example skyline query.

Both operators are distributive, so each peer can prune locally before
shipping (local top-n / local skyline) — the ``local-prune`` strategy —
versus naively centralizing everything.  Reported: shipped payload units and
latency, for growing author populations, plus the verbatim paper query.
"""

from __future__ import annotations


from repro import UniStore
from repro.bench import ConferenceWorkload, ResultTable
from repro.optimizer import PlannerConfig

from conftest import emit

POPULATIONS = [50, 150, 400]

PAPER_QUERY = """
SELECT ?name,?age,?cnt
WHERE {(?a,'name',?name) (?a,'age',?age)
 (?a,'num_of_pubs',?cnt)
 (?a,'has_published',?title) (?p,'title',?title)
 (?p,'published_in',?conf) (?c,'confname',?conf)
 (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
}
ORDER BY SKYLINE OF ?age MIN, ?cnt MAX
"""


def _build(num_authors: int, seed: int = 66):
    store = UniStore.build(num_peers=64, replication=2, seed=seed, enable_qgram_index=True)
    workload = ConferenceWorkload(
        num_authors=num_authors,
        num_publications=num_authors * 2,
        num_conferences=16,
        seed=seed,
    )
    workload.load_into(store)
    return store


def _shipped(store, vql, prune: bool):
    with store.pnet.net.frame() as frame:
        result = store.execute(vql, config=PlannerConfig(ranking_prune=prune))
    return frame.bytes, result


SKYLINE_QUERY = (
    "SELECT ?name,?age,?cnt WHERE {(?a,'name',?name) (?a,'age',?age) "
    "(?a,'num_of_pubs',?cnt)} ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"
)
TOPN_QUERY = (
    "SELECT ?name,?cnt WHERE {(?a,'name',?name) (?a,'num_of_pubs',?cnt)} "
    "ORDER BY ?cnt DESC LIMIT 10"
)


def test_e6_ranking_local_pruning(benchmark):
    table = ResultTable(
        "E6: distributed ranking — local pruning vs naive centralization",
        ["authors", "operator", "strategy", "shipped units", "latency s", "rows"],
    )
    improvements = []
    keep = None
    for population in POPULATIONS:
        store = _build(population)
        for operator, vql in (("skyline", SKYLINE_QUERY), ("top-10", TOPN_QUERY)):
            pruned_bytes, pruned = _shipped(store, vql, prune=True)
            naive_bytes, naive = _shipped(store, vql, prune=False)
            assert sorted(map(repr, pruned.rows)) == sorted(map(repr, naive.rows)) or (
                operator == "top-10"
                and sorted(r["cnt"] for r in pruned.rows)
                == sorted(r["cnt"] for r in naive.rows)
            )
            table.add_row(population, operator, "local-prune", pruned_bytes,
                          pruned.answer_time, len(pruned.rows))
            table.add_row(population, operator, "naive", naive_bytes,
                          naive.answer_time, len(naive.rows))
            improvements.append(naive_bytes / max(1, pruned_bytes))
        keep = store
    emit(table)

    # Local pruning must never ship more, and should clearly win at scale.
    assert all(ratio >= 1.0 for ratio in improvements)
    assert max(improvements) > 1.3

    benchmark.pedantic(lambda: keep.execute(SKYLINE_QUERY), rounds=5, iterations=1)


def test_e6_paper_example_query(benchmark):
    """The verbatim §2 query: skyline of ICDE authors, youngest vs most
    published, with an edit-distance filter on the series."""
    store = _build(80, seed=67)
    result = store.execute(PAPER_QUERY)
    reference = store.execute(PAPER_QUERY, mode="reference")
    assert sorted(map(repr, result.rows)) == sorted(map(repr, reference.rows))
    assert result.rows, "the paper query should find ICDE authors"

    from repro.algebra.semantics import dominates, skyline_values
    from repro.vql import parse

    items = parse(PAPER_QUERY).skyline
    vectors = [skyline_values(r, items) for r in result.rows]
    for a in vectors:
        assert not any(dominates(b, a, items) for b in vectors)

    table = ResultTable(
        "E6b: the paper's example query (Fig. 4 scenario)",
        ["metric", "value"],
    )
    table.add_row("skyline rows", len(result.rows))
    table.add_row("messages", result.messages)
    table.add_row("latency s", result.answer_time)
    emit(table)

    benchmark.pedantic(lambda: store.execute(PAPER_QUERY), rounds=3, iterations=1)
