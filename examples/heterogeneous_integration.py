"""Schema heterogeneity and mappings — the data-integration story (paper §2).

Two communities publish publication data under *different* schemas
(``dblp:`` vs ``ilm:`` namespaces).  Correspondences are inserted as ordinary
metadata triples; they can be queried explicitly like any data, and with
``expand_mappings=True`` the system consults them automatically to widen a
query across both schemas — "or even automatically by the system, to
retrieve relevant data without needing the user to interact".

Run:  python examples/heterogeneous_integration.py
"""

from repro import UniStore


def main() -> None:
    store = UniStore.build(num_peers=32, replication=2, seed=11)

    # Community A publishes with dblp:-style attribute names.
    for title, venue in [
        ("Mutant Query Plans", "ICDE"),
        ("Indexing Overlay Networks", "VLDB"),
    ]:
        store.insert_tuple({"dblp:title": title, "dblp:venue": venue})

    # Community B uses its own schema for the same kind of facts.
    for title, venue in [
        ("Cost-Aware Similarity Queries", "P2P"),
        ("Universal Storage on DHTs", "ICDE"),
    ]:
        store.insert_tuple({"ilm:papertitle": title, "ilm:conference": venue})

    print("=== Without mappings: each query sees only its own schema ===")
    result = store.execute("SELECT ?t WHERE {(?p,'dblp:title',?t)}")
    print(result.as_table(), "\n")

    # Anyone may contribute correspondences; they are just metadata triples.
    store.add_mapping("dblp:title", "ilm:papertitle", confidence=0.95)
    store.add_mapping("dblp:venue", "ilm:conference", confidence=0.9)

    print("=== Mappings are queryable metadata (same operators, same store) ===")
    meta = store.execute("SELECT ?m, ?src WHERE {(?m,'map:src',?src)}")
    print(meta.as_table(), "\n")

    print("=== With expand_mappings=True the system unifies both schemas ===")
    unified = store.execute("SELECT ?t WHERE {(?p,'dblp:title',?t)}", expand_mappings=True)
    print(unified.as_table(), "\n")

    print("=== Cross-schema join through a mapped attribute ===")
    joined = store.execute(
        "SELECT ?t, ?v WHERE {(?p,'dblp:title',?t) (?p,'dblp:venue',?v)}",
        expand_mappings=True,
    )
    print(joined.as_table())
    print(
        f"\n[mapping resolution + query: {joined.messages} msgs, "
        f"{joined.answer_time * 1000:.0f} ms simulated]"
    )


if __name__ == "__main__":
    main()
