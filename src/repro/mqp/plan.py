"""Mutant Query Plans (paper §2, ref. [7] Papadimos & Maier).

A mutant query plan is a *self-contained message*: the still-unevaluated
parts of a query plan plus the partial results produced so far.  The plan
travels through the overlay; each peer that receives it evaluates whatever it
can locally, grafts the results into the plan, re-optimizes the remainder,
and forwards it.  UniStore extends the concept with DHT-aware operator
selection at every hop.

This module defines the plan state object and its wire format (plain dicts —
the paper's system used XML; the information content is identical), so that
plans really are serializable messages, not Python object graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.algebra.operators import PatternScan
from repro.algebra.semantics import Binding
from repro.vql.ast import (
    BoolOp,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
    Not,
    TriplePattern,
    Var,
)


@dataclass
class MutantQueryPlan:
    """The migrating query state: pending work + embedded partial results."""

    pending: list[PatternScan]
    residual_filters: list[Expression] = field(default_factory=list)
    bindings: list[Binding] | None = None  # None = no pattern evaluated yet
    location: str = ""  # peer id currently holding the plan
    hops_travelled: int = 0

    def is_done(self) -> bool:
        return not self.pending

    # -- wire format ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "pending": [
                {
                    "pattern": _term_triple_to_dict(scan.pattern),
                    "filters": [expression_to_dict(f) for f in scan.filters],
                }
                for scan in self.pending
            ],
            "residual_filters": [expression_to_dict(f) for f in self.residual_filters],
            "bindings": self.bindings,
            "location": self.location,
            "hops_travelled": self.hops_travelled,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MutantQueryPlan":
        return cls(
            pending=[
                PatternScan(
                    _term_triple_from_dict(item["pattern"]),
                    tuple(expression_from_dict(f) for f in item["filters"]),
                )
                for item in data["pending"]
            ],
            residual_filters=[expression_from_dict(f) for f in data["residual_filters"]],
            bindings=data["bindings"],
            location=data["location"],
            hops_travelled=data["hops_travelled"],
        )


# ---------------------------------------------------------------------------
# Expression / pattern (de)serialization
# ---------------------------------------------------------------------------


def expression_to_dict(expr: Expression) -> dict:
    if isinstance(expr, Var):
        return {"kind": "var", "name": expr.name}
    if isinstance(expr, Literal):
        return {"kind": "lit", "value": expr.value}
    if isinstance(expr, Comparison):
        return {
            "kind": "cmp",
            "op": expr.op,
            "left": expression_to_dict(expr.left),
            "right": expression_to_dict(expr.right),
        }
    if isinstance(expr, BoolOp):
        return {
            "kind": "bool",
            "op": expr.op,
            "operands": [expression_to_dict(o) for o in expr.operands],
        }
    if isinstance(expr, Not):
        return {"kind": "not", "operand": expression_to_dict(expr.operand)}
    if isinstance(expr, FunctionCall):
        return {
            "kind": "call",
            "name": expr.name,
            "args": [expression_to_dict(a) for a in expr.args],
        }
    raise TypeError(f"not serializable: {expr!r}")


def expression_from_dict(data: dict) -> Expression:
    kind = data["kind"]
    if kind == "var":
        return Var(data["name"])
    if kind == "lit":
        return Literal(data["value"])
    if kind == "cmp":
        return Comparison(
            data["op"],
            expression_from_dict(data["left"]),
            expression_from_dict(data["right"]),
        )
    if kind == "bool":
        return BoolOp(data["op"], tuple(expression_from_dict(o) for o in data["operands"]))
    if kind == "not":
        return Not(expression_from_dict(data["operand"]))
    if kind == "call":
        return FunctionCall(data["name"], tuple(expression_from_dict(a) for a in data["args"]))
    raise ValueError(f"unknown expression kind {kind!r}")


def _term_to_dict(term) -> dict:
    return expression_to_dict(term)


def _term_triple_to_dict(pattern: TriplePattern) -> dict:
    return {
        "subject": _term_to_dict(pattern.subject),
        "predicate": _term_to_dict(pattern.predicate),
        "object": _term_to_dict(pattern.object),
    }


def _term_triple_from_dict(data: dict) -> TriplePattern:
    return TriplePattern(
        expression_from_dict(data["subject"]),  # type: ignore[arg-type]
        expression_from_dict(data["predicate"]),  # type: ignore[arg-type]
        expression_from_dict(data["object"]),  # type: ignore[arg-type]
    )
