"""The simulated network: registration, delivery, latency, accounting.

``Network`` is deliberately synchronous: ``send`` validates that source and
destination are online, samples the link latency, accounts the message, and
returns a single-hop :class:`~repro.net.trace.Trace`.  Protocol logic (what
the destination *does* with the message) stays in the overlay code, which
composes the returned traces into causal execution trees.  This keeps
thousand-peer simulations fast while preserving exactly the quantities the
paper reports: message counts, hop counts and critical-path answer time.

For genuinely concurrent fan-outs there is an event-driven sibling,
:class:`~repro.net.scheduler.EventScheduler`, which schedules messages as
discrete events over the same network (same validation, same latency
sampling, same stats ledger) and measures completion times on a simulated
clock instead of composing them analytically.  The scheduler optionally
carries a per-peer queueing layer (:mod:`repro.load.model`): with a load
model attached, a delivery completes at link latency + queueing delay +
service time, so hot peers become genuine latency bottlenecks.

``Network`` also hosts cross-cutting overlay policy flags that routing
consults via ``peer.network`` (currently :attr:`Network.route_warming`, the
piggybacked route-cache warming switch).
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Iterator

from repro.errors import NodeUnreachableError
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.node import Node
from repro.net.stats import NetworkStats, StatsFrame
from repro.net.trace import Trace


class Network:
    """A set of registered nodes plus a latency model and a stats ledger."""

    def __init__(self, latency_model: LatencyModel | None = None, seed: int = 0):
        self.latency_model = latency_model or ConstantLatency(0.05)
        self.rng = random.Random(seed)
        self.stats = NetworkStats()
        self.nodes: dict[str, Node] = {}
        self._link_latency: dict[tuple[str, str], float] = {}
        #: When True, routed messages piggyback the learned destination so
        #: transit peers warm their route caches (see repro.pgrid.routing).
        self.route_warming = False
        #: Optional :class:`~repro.load.shedding.HintRegistry`.  When set,
        #: event-scheduled messages piggyback the sender's queue depth and
        #: hint-aware choices (diffusion, routing ties, reject retries) read
        #: from it.  ``pnet.event_driven(..., hints=True)`` manages this.
        self.hints = None

    # -- membership ---------------------------------------------------------

    def register(self, node: Node) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node

    def node(self, node_id: str) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise NodeUnreachableError(node_id, "unknown node") from None

    def is_online(self, node_id: str) -> bool:
        node = self.nodes.get(node_id)
        return node is not None and node.online

    def online_nodes(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.online]

    def __len__(self) -> int:
        return len(self.nodes)

    # -- latency ------------------------------------------------------------

    def link_latency(self, src: str, dst: str) -> float:
        """Base latency of the directed link, sampled once then memoized."""
        if src == dst:
            return 0.0
        key = (src, dst)
        base = self._link_latency.get(key)
        if base is None:
            base = self.latency_model.sample_base(self.rng)
            self._link_latency[key] = base
        return base

    def set_link_latency(self, src: str, dst: str, seconds: float, symmetric: bool = True) -> None:
        """Pin the base latency of a link (tests/benchmarks with known delays)."""
        if seconds < 0:
            raise ValueError("latency must be >= 0")
        self._link_latency[(src, dst)] = seconds
        if symmetric:
            self._link_latency[(dst, src)] = seconds

    # -- delivery -----------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, size: int = 1) -> Trace:
        """Deliver one message; return its single-hop trace.

        Raises :class:`NodeUnreachableError` if the destination is offline or
        unknown.  A local "send" (``src == dst``) is free and unaccounted —
        operators use it when the initiating peer is itself responsible for
        a key.
        """
        if src == dst:
            return Trace.ZERO
        dst_node = self.nodes.get(dst)
        if dst_node is None:
            raise NodeUnreachableError(dst, "unknown node")
        if not dst_node.online:
            raise NodeUnreachableError(dst, "node offline")
        latency = self.link_latency(src, dst) + self.latency_model.sample_jitter(self.rng)
        self.stats.record(kind, size)
        return Trace.hop(latency)

    # -- accounting ---------------------------------------------------------

    @contextmanager
    def frame(self) -> Iterator[StatsFrame]:
        """Scope a stats frame: all messages sent inside are attributed to it."""
        frame = self.stats.push_frame()
        try:
            yield frame
        finally:
            self.stats.pop_frame(frame)
