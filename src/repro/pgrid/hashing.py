"""Order- and prefix-preserving hashing into the binary key space.

P-Grid's distinguishing feature (paper §2) is that its hash function preserves
the order of keys, so range and prefix queries map to contiguous trie regions.
We realize this with fixed-width encodings:

* **Strings** — 8 bits per character (code points clamped to 255).  Because
  every character has the same width, ``encode_string(s)`` is a bit-prefix of
  ``encode_string(s + t)``, and lexicographic string order equals fractional
  key order.  This is what makes substring/prefix search "native" in P-Grid.
* **Numbers** — 64-bit offset-binary IEEE-754: flip the sign bit of the
  float's big-endian bits for non-negatives, flip *all* bits for negatives.
  The resulting bit string orders exactly like the numbers themselves.

Values of mixed type get a 1-bit type tag (numbers sort before strings, an
arbitrary but total convention).
"""

from __future__ import annotations

import math
import struct

#: Character used by the triple layer to join attribute and value in the
#: A#v index.  Encoded as code point 2 — above the q-gram pad, below any
#: printable character — so ``attr SEP value`` keys for one attribute form a
#: contiguous subtree that no other attribute's keys can enter.
KEY_SEPARATOR = "\x02"


def encode_string(s: str) -> str:
    """Encode a string as bits, 8 per character, order-preserving."""
    out = []
    for ch in s:
        code = min(ord(ch), 255)
        out.append(format(code, "08b"))
    return "".join(out)


def encode_number(x: float | int) -> str:
    """Encode a number as 64 bits whose lexicographic order is numeric order.

    Uses the standard IEEE-754 total-order trick.  Integers beyond 2**53 lose
    precision (documented limitation of the float-backed key space).  NaN is
    rejected — it has no place in an ordered key space.
    """
    value = float(x)
    if math.isnan(value):
        raise ValueError("NaN cannot be encoded as an ordered key")
    if value == 0.0:
        value = 0.0  # normalize -0.0, which is numerically equal to +0.0
    (bits,) = struct.unpack(">Q", struct.pack(">d", value))
    if bits & (1 << 63):  # negative: flip everything
        bits = ~bits & (2**64 - 1)
    else:  # non-negative: flip the sign bit
        bits |= 1 << 63
    return format(bits, "064b")


def encode_value(v: object) -> str:
    """Encode a typed value with a leading type tag (number=0, string=1)."""
    if isinstance(v, bool):
        # bool is an int subclass; treat as number for a total order.
        return "0" + encode_number(int(v))
    if isinstance(v, (int, float)):
        return "0" + encode_number(v)
    if isinstance(v, str):
        return "1" + encode_string(v)
    raise TypeError(f"unsupported value type for key encoding: {type(v).__name__}")


def after_key(key: str) -> str:
    """The smallest usable exclusive upper bound just above point ``key``.

    Appends ``00000001``: strictly above ``key`` itself, but still below the
    encoding of any *extension* of the encoded value, because the triple
    layer rejects characters with code points < 3 (q-gram pad ``\\x01`` and
    :data:`KEY_SEPARATOR` ``\\x02`` are reserved), so a one-character
    extension appends at least ``00000011``.  This is what makes
    ``value <= v`` ranges exact under the prefix-preserving encoding.
    """
    return key + "00000001"


def string_prefix_key(prefix: str) -> str:
    """Key-space prefix covering all strings that start with ``prefix``.

    Because the encoding is fixed-width per character, the subtree rooted at
    ``'1' + encode_string(prefix)`` contains exactly the string values with
    that prefix.
    """
    return "1" + encode_string(prefix)
