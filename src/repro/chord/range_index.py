"""A distributed segment trie over Chord — the "additional structure" that
ring DHTs need for range queries (paper §2).

The trie partitions the *order-preserving* bit-key space (the same encoding
P-Grid hashes with), but its nodes live **inside Chord**: trie node with
bit-prefix ``p`` is stored under the Chord key ``"trie:" + p``.  Consequences
the E8 experiment measures:

* every trie-node access is a full O(log N)-hop Chord lookup;
* an insert descends from the root — O(depth) lookups plus a write;
* a range query touches every trie node overlapping the range, each at
  O(log N) hops, versus P-Grid's native O(log N + leaves).

Leaves hold up to ``leaf_capacity`` data keys and split when they overflow,
exactly like a batch-free B-trie.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ExecutionError
from repro.net.trace import Trace
from repro.chord.node import ChordNode
from repro.chord.ring import ChordRing
from repro.pgrid.keys import KeyRange

#: Chord key prefix under which trie nodes are stored.
TRIE_KEY = "trie:"


def _node_key(prefix: str) -> str:
    return TRIE_KEY + prefix


def _total_items(leaf: dict) -> int:
    """Number of postings stored in a leaf trie node."""
    return sum(len(postings) for postings in leaf["items"].values())


class ChordRangeIndex:
    """Distributed segment trie stored in a Chord ring."""

    def __init__(self, ring: ChordRing, leaf_capacity: int = 32, max_depth: int = 64):
        if leaf_capacity < 1:
            raise ValueError("leaf capacity must be >= 1")
        self.ring = ring
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        root = {"leaf": True, "items": {}}
        self.ring.put(_node_key(""), root)

    # -- helpers ---------------------------------------------------------------

    def _fetch(self, prefix: str, start: ChordNode) -> tuple[dict | None, Trace]:
        value, trace = self.ring.get(_node_key(prefix), start=start)
        return value, trace  # type: ignore[return-value]

    def _store(self, prefix: str, node: dict, start: ChordNode) -> Trace:
        return self.ring.put(_node_key(prefix), node, start=start)

    # -- operations --------------------------------------------------------------

    def insert(
        self, bit_key: str, item_id: str, value: Any, start: ChordNode | None = None
    ) -> Trace:
        """Insert one item; returns the full maintenance trace.

        Descends from the trie root (one Chord lookup per level), appends to
        the leaf, and splits it when it overflows.
        """
        start = start or self.ring.random_online_node()
        prefix = ""
        trace = Trace.ZERO
        for _depth in range(self.max_depth + 1):
            node, hop = self._fetch(prefix, start)
            trace = trace.then(hop)
            if node is None:
                raise ExecutionError(f"trie node {prefix!r} missing from Chord")
            if not node["leaf"]:
                if len(bit_key) <= len(prefix):
                    # Key exhausted at an internal node: keep it on the '0' edge.
                    bit_key = bit_key + "0" * (len(prefix) + 1 - len(bit_key))
                prefix = prefix + bit_key[len(prefix)]
                continue
            node["items"].setdefault(bit_key, []).append((item_id, value))
            trace = trace.then(self._store(prefix, node, start))
            if _total_items(node) > self.leaf_capacity and len(prefix) < self.max_depth:
                trace = trace.then(self._split(prefix, node, start))
            return trace
        raise ExecutionError("trie insert exceeded maximum depth")

    def _split(self, prefix: str, node: dict, start: ChordNode) -> Trace:
        """Split an overflowing leaf into two children."""
        children: dict[str, dict] = {
            "0": {"leaf": True, "items": {}},
            "1": {"leaf": True, "items": {}},
        }
        depth = len(prefix)
        for bit_key, postings in node["items"].items():
            bit = bit_key[depth] if len(bit_key) > depth else "0"
            children[bit]["items"][bit_key] = postings
        trace = Trace.ZERO
        for bit, child in children.items():
            trace = trace.then(self._store(prefix + bit, child, start))
        trace = trace.then(self._store(prefix, {"leaf": False}, start))
        return trace

    def range_query(
        self, key_range: KeyRange, start: ChordNode | None = None
    ) -> tuple[list[tuple[str, str, Any]], Trace, int]:
        """All ``(bit_key, item_id, value)`` with bit_key in ``key_range``.

        Returns the matches, the causal trace, and the number of trie nodes
        visited (the "extra structure" cost E8 reports).  Sibling subtrees
        are descended in parallel.
        """
        start = start or self.ring.random_online_node()
        return self._range_visit("", key_range, start)

    def _range_visit(
        self, prefix: str, key_range: KeyRange, start: ChordNode
    ) -> tuple[list[tuple[str, str, Any]], Trace, int]:
        node, trace = self._fetch(prefix, start)
        if node is None:
            return [], trace, 1
        if node["leaf"]:
            matches = [
                (bit_key, item_id, value)
                for bit_key, postings in node["items"].items()
                if key_range.contains(bit_key)
                for item_id, value in postings
            ]
            return matches, trace, 1
        results: list[tuple[str, str, Any]] = []
        branches: list[Trace] = []
        visited = 1
        for bit in ("0", "1"):
            child = prefix + bit
            if not key_range.intersects_path(child):
                continue
            sub_results, sub_trace, sub_visited = self._range_visit(child, key_range, start)
            results.extend(sub_results)
            branches.append(sub_trace)
            visited += sub_visited
        return results, trace.then(Trace.parallel(branches)), visited
