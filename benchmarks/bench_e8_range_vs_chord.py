"""E8 — "P-Grid supports efficient substring search and range queries
through its basic infrastructure, where other DHTs require additional
structures (e.g., in Chord an additional trie-structure is constructed on
top of its ring-based overlay network to support range queries)" (paper §2).

Same data, same range queries, two substrates:

* P-Grid: ranges are contiguous trie regions — shower (parallel) and
  sequential (min-max) algorithms run on the base overlay;
* Chord: consistent hashing destroys order, so a distributed segment trie
  is maintained *inside* the ring; every trie-node access costs a full
  O(log N) Chord lookup, and inserts pay trie-maintenance messages.

Reported per range width: query messages, latency, and (for Chord) the
per-insert index maintenance overhead that P-Grid simply does not have.
"""

from __future__ import annotations

import random
import string

import pytest

from repro.bench import ResultTable, mean
from repro.chord import ChordRangeIndex, ChordRing
from repro.pgrid import (
    KeyRange,
    build_network,
    bulk_load,
    encode_string,
    range_query_sequential,
    range_query_shower,
)

from conftest import emit

NUM_NODES = 64
NUM_WORDS = 600
#: (label, lo, hi) — widening string ranges.
RANGES = [
    ("1 letter", "a", "b"),
    ("4 letters", "a", "e"),
    ("13 letters", "a", "n"),
    ("all", "a", "{"),  # '{' sorts after 'z'
]


def _words(seed: int) -> list[str]:
    rng = random.Random(seed)
    return sorted(
        {"".join(rng.choice(string.ascii_lowercase) for _ in range(6)) for _ in range(NUM_WORDS)}
    )


@pytest.fixture(scope="module")
def substrates():
    words = _words(81)
    keys = [encode_string(w) for w in words]

    pnet = build_network(NUM_NODES, data_keys=keys, replication=2, seed=81)
    bulk_load(pnet, [(k, w, w) for k, w in zip(keys, words)])

    ring = ChordRing(NUM_NODES, seed=81, replication=2)
    index = ChordRangeIndex(ring, leaf_capacity=16)
    maintenance = []
    for position, word in enumerate(words):
        trace = index.insert(encode_string(word), f"i{position}", word)
        maintenance.append(float(trace.messages))
    return pnet, ring, index, words, mean(maintenance)


def test_e8_range_queries_pgrid_vs_chord(benchmark, substrates):
    pnet, _ring, index, words, maintenance = substrates
    table = ResultTable(
        "E8: range queries — P-Grid native vs Chord + distributed trie (64 nodes)",
        ["range", "matches", "substrate", "messages", "latency s"],
    )
    advantage = {}
    for label, lo, hi in RANGES:
        key_range = KeyRange(encode_string(lo), encode_string(hi))
        expected = sorted(w for w in words if lo <= w < hi)

        entries, shower_trace, complete = range_query_shower(pnet, key_range)
        assert complete and sorted(e.value for e in entries) == expected
        table.add_row(label, len(expected), "pgrid shower", shower_trace.messages,
                      shower_trace.latency)

        entries, seq_trace, complete = range_query_sequential(pnet, key_range)
        assert complete and sorted(e.value for e in entries) == expected
        table.add_row(label, len(expected), "pgrid sequential", seq_trace.messages,
                      seq_trace.latency)

        results, chord_trace, visited = index.range_query(key_range)
        assert sorted(v for _k, _i, v in results) == expected
        table.add_row(
            label,
            len(expected),
            f"chord+trie ({visited} trie nodes)",
            chord_trace.messages,
            chord_trace.latency,
        )
        advantage[label] = chord_trace.messages / max(1, shower_trace.messages)
    table.add_row("(insert)", "", "chord trie maintenance / item", maintenance, "")
    table.add_row("(insert)", "", "pgrid maintenance / item", 0, "")
    emit(table)

    # The architectural claim: the ring pays more messages at every width,
    # plus a maintenance tax P-Grid doesn't have at all.
    assert all(ratio > 1.0 for ratio in advantage.values()), advantage
    assert maintenance > 5

    key_range = KeyRange(encode_string("a"), encode_string("e"))
    benchmark(lambda: range_query_shower(pnet, key_range))


def test_e8_substring_search_native(benchmark, substrates):
    """Substring/prefix search is a key-space prefix in P-Grid; Chord's hash
    scatters extensions of a prefix uniformly (shown via placement spread)."""
    pnet, ring, _index, words, _maintenance = substrates
    prefix = words[0][:2]
    expected = sorted(w for w in words if w.startswith(prefix))
    key_range = KeyRange.subtree(encode_string(prefix))
    entries, trace, complete = range_query_shower(pnet, key_range)
    assert complete and sorted(e.value for e in entries) == expected

    # In P-Grid all matches live in few leaf groups; in Chord the same words
    # hash to nodes spread across the whole ring.
    pgrid_homes = {
        peer.node_id
        for word in expected
        for peer in pnet.responsible_group(encode_string(word))
    }
    from repro.chord.node import chord_hash

    chord_homes = set()
    for word in expected:
        owner, _t = ring.find_successor(ring.nodes[0], chord_hash(word))
        chord_homes.add(owner.node_id)
    table = ResultTable(
        "E8b: placement locality of a prefix's matches",
        ["substrate", "matches", "distinct hosting nodes"],
    )
    table.add_row("pgrid", len(expected), len(pgrid_homes) // 2)  # / replicas
    table.add_row("chord", len(expected), len(chord_homes))
    emit(table)
    if len(expected) >= 4:
        assert len(chord_homes) >= len(pgrid_homes) // 2

    benchmark(lambda: range_query_shower(pnet, key_range))
