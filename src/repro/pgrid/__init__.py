"""P-Grid structured overlay (paper ref. [1], §2).

The DHT layer of UniStore: a virtual binary trie whose leaves are peers,
prefix routing with logarithmic guarantees, an order/prefix-preserving hash
function (so range and substring queries are native), structural replication,
storage-threshold load balancing, loosely-consistent updates, and overlay
merging.
"""

from repro.pgrid.construction import (
    balanced_paths,
    bootstrap_exchange,
    build_network,
    bulk_load,
    data_split_paths,
    wire_routing_tables,
)
from repro.pgrid.datastore import DataStore, Entry
from repro.pgrid.hashing import (
    KEY_SEPARATOR,
    after_key,
    encode_number,
    encode_string,
    encode_value,
    string_prefix_key,
)
from repro.pgrid.keys import (
    KeyRange,
    common_prefix_length,
    compare_keys,
    flip,
    increment_path,
    is_complete_partition,
    is_prefix_free,
    key_fraction,
    responsible,
)
from repro.pgrid.load_balancing import load_imbalance, rebalance, split_group
from repro.pgrid.merge import join_peer, merge_overlays
from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer, RoutingTable
from repro.pgrid.range_query import range_query_sequential, range_query_shower
from repro.pgrid.replication import (
    ensure_replication,
    min_replication,
    online_coverage,
    replication_factor,
)
from repro.pgrid.routing import (
    RouteCache,
    point_key,
    replay_hops,
    route,
    route_hops,
)
from repro.pgrid.updates import anti_entropy_round, staleness, sync_pair

__all__ = [
    "PGridNetwork",
    "PGridPeer",
    "RoutingTable",
    "DataStore",
    "Entry",
    "KeyRange",
    "build_network",
    "bulk_load",
    "bootstrap_exchange",
    "wire_routing_tables",
    "balanced_paths",
    "data_split_paths",
    "route",
    "route_hops",
    "replay_hops",
    "point_key",
    "RouteCache",
    "range_query_shower",
    "range_query_sequential",
    "rebalance",
    "split_group",
    "load_imbalance",
    "join_peer",
    "merge_overlays",
    "ensure_replication",
    "replication_factor",
    "min_replication",
    "online_coverage",
    "anti_entropy_round",
    "sync_pair",
    "staleness",
    "encode_string",
    "encode_number",
    "encode_value",
    "after_key",
    "string_prefix_key",
    "KEY_SEPARATOR",
    "responsible",
    "compare_keys",
    "common_prefix_length",
    "flip",
    "increment_path",
    "key_fraction",
    "is_prefix_free",
    "is_complete_partition",
]
