"""Destination-grouped bulk operations and replica convergence.

Covers the batched routing layer end to end: ``insert_many``/``lookup_many``
correctness and trace accounting (never worse than the unbatched
equivalent), plus the loose-consistency behavior of ``update``/``delete``
when part of a replica group is offline.
"""

import pytest

from repro.net.trace import Trace
from repro.pgrid import (
    anti_entropy_round,
    build_network,
    bulk_load,
    encode_string,
    staleness,
)

WORDS = [f"word{i:03d}" for i in range(40)]


def _items(words=WORDS):
    return [(encode_string(w), f"id-{w}", f"val-{w}") for w in words]


def _overlay(seed):
    return build_network(32, replication=2, seed=seed, split_by="population")


class TestInsertMany:
    def test_same_data_as_unbatched_for_fewer_messages(self):
        batched_net, unbatched_net = _overlay(11), _overlay(11)
        items = _items()
        with batched_net.net.frame() as batched_frame:
            trace = batched_net.insert_many(items, start=batched_net.peers[0])
        with unbatched_net.net.frame() as unbatched_frame:
            for key, item_id, value in items:
                unbatched_net.insert(key, value, item_id=item_id, start=unbatched_net.peers[0])

        def stored(pnet):
            return {(e.key, e.item_id, e.value) for e in pnet.all_entries()}

        assert stored(batched_net) == stored(unbatched_net)
        assert batched_frame.messages <= unbatched_frame.messages
        assert trace.messages == batched_frame.messages  # trace == ledger

    def test_entries_reach_every_online_replica(self):
        pnet = _overlay(12)
        items = _items(WORDS[:10])
        pnet.insert_many(items, start=pnet.peers[0])
        for key, item_id, value in items:
            for peer in pnet.responsible_group(key):
                entry = peer.store.get_entry(key, item_id)
                assert entry is not None and entry.value == value

    def test_empty_batch_is_free(self):
        pnet = _overlay(13)
        with pnet.net.frame() as frame:
            trace = pnet.insert_many([])
        assert trace == Trace.ZERO
        assert frame.messages == 0


class TestLookupMany:
    @pytest.fixture()
    def loaded(self):
        pnet = _overlay(21)
        bulk_load(pnet, _items())
        return pnet

    def test_per_key_results_match_single_lookups(self, loaded):
        start = loaded.peers[0]
        keys = [encode_string(w) for w in WORDS] + [encode_string("missing")]
        results, trace = loaded.lookup_many(keys, start=start)
        assert trace.messages > 0
        for key in keys:
            expected, _trace = loaded.lookup(key, start=start)
            got = {(e.item_id, e.value) for e in results[key]}
            assert got == {(e.item_id, e.value) for e in expected}
        assert results[encode_string("missing")] == []

    def test_messages_not_worse_than_unbatched(self):
        batched_net, unbatched_net = _overlay(22), _overlay(22)
        bulk_load(batched_net, _items())
        bulk_load(unbatched_net, _items())
        keys = [encode_string(w) for w in WORDS]
        with batched_net.net.frame() as batched_frame:
            _results, trace = batched_net.lookup_many(keys, start=batched_net.peers[0])
        with unbatched_net.net.frame() as unbatched_frame:
            for key in keys:
                unbatched_net.lookup(key, start=unbatched_net.peers[0])
        assert batched_frame.messages <= unbatched_frame.messages
        assert trace.messages == batched_frame.messages

    def test_empty_key_set_is_free(self, loaded):
        results, trace = loaded.lookup_many([])
        assert results == {} and trace == Trace.ZERO


class TestPointRouting:
    def test_data_ops_land_on_point_leaf_when_trie_splits_below_key(self):
        """Regression (hypothesis-found, latent in the seed): with one hot
        key the data-split trie splits *below* the key, and routing the bare
        key could stop at the key+'1' sibling leaf — which never holds the
        point's entries.  Point operations must zero-pad."""
        key = encode_string("aaa")
        pnet = build_network(26, data_keys=[key], replication=1, seed=0)
        assert any(len(p.path) > len(key) for p in pnet.peers), "needs a deep trie"
        bulk_load(pnet, [(key, "aaa", "aaa")])
        for start in pnet.peers:
            entries, _trace = pnet.lookup(key, start=start)
            assert [e.value for e in entries] == ["aaa"], start.path
        # Routed writes use the same point semantics as the oracle loader.
        pnet.insert(key, "bbb", item_id="routed", start=pnet.peers[-1])
        group = pnet.responsible_group(key)
        assert group and all(peer.store.get_entry(key, "routed") is not None for peer in group)


class TestByOids:
    def test_reassembles_many_tuples_in_one_grouped_lookup(self):
        from repro.triples import DistributedTripleStore

        pnet = _overlay(25)
        store = DistributedTripleStore(pnet)
        tuples = [(f"t:{i}", {"name": f"n{i}", "rank": i}) for i in range(8)]
        store.insert_tuples_batch(tuples, start=pnet.peers[0])

        oids = [oid for oid, _values in tuples] + ["t:missing"]
        with pnet.net.frame() as frame:
            by_oid, trace = store.by_oids(oids, start=pnet.peers[1])
        assert trace.messages == frame.messages
        for oid, values in tuples:
            assert {(t.attribute, t.value) for t in by_oid[oid]} == {
                ("name", values["name"]),
                ("rank", values["rank"]),
            }
        assert by_oid["t:missing"] == []
        # Singular by_oid (now a one-element batch) agrees.
        triples, _trace = store.by_oid("t:3", start=pnet.peers[1])
        assert triples == sorted(by_oid["t:3"])


class TestReplicaConvergence:
    """Loose-consistency behavior of update/delete under partial outages."""

    def _group_with_spare(self, pnet, key, minimum=3):
        group = pnet.responsible_group(key)
        assert len(group) >= minimum, "test needs a thick replica group"
        return group

    def test_update_converges_after_offline_replica_returns(self):
        pnet = build_network(16, replication=4, seed=31, split_by="population")
        key = encode_string("fact")
        bulk_load(pnet, [(key, "fact", "v1")])
        group = self._group_with_spare(pnet, key)

        offline = group[0]
        offline.fail()
        _version, trace = pnet.update(key, "fact", "v2")
        assert trace.messages > 0
        for peer in group[1:]:
            assert peer.store.get_entry(key, "fact").value == "v2"
        assert offline.store.get_entry(key, "fact").value == "v1"  # missed push

        offline.recover()
        assert staleness(pnet, [key]) > 0
        for _round in range(8):
            if staleness(pnet, [key]) == 0.0:
                break
            anti_entropy_round(pnet)
        assert staleness(pnet, [key]) == 0.0
        assert offline.store.get_entry(key, "fact").value == "v2"

    def test_delete_skips_offline_replica_until_it_returns(self):
        pnet = build_network(16, replication=4, seed=32, split_by="population")
        key = encode_string("doomed")
        bulk_load(pnet, [(key, "doomed", "v1")])
        group = self._group_with_spare(pnet, key)

        offline = group[0]
        offline.fail()
        removed, trace = pnet.delete(key, "doomed")
        assert removed and trace.messages > 0
        for peer in group[1:]:
            assert peer.store.get_entry(key, "doomed") is None
        # The offline replica keeps its copy — the documented tombstone-free
        # simplification of ref. [4]; anti-entropy will resurrect the entry
        # once the replica returns (loose consistency, not atomic deletion).
        assert offline.store.get_entry(key, "doomed") is not None

        offline.recover()
        anti_entropy_round(pnet)
        resurrected = [peer for peer in group if peer.store.get_entry(key, "doomed") is not None]
        assert offline in resurrected
