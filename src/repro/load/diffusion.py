"""Replica-based query-load diffusion.

P-Grid's structural replication means every member of a replica group can
answer reads for the group's path.  Routing alone does not exploit that:
the route cache pins each requester to the first member it reached, so a
hot key hammers one peer while its replicas idle.  Diffusion re-spreads
that query load *at the last hop*: once routing has discovered the
responsible group, the final hop is redirected to a chosen member —
uniformly at random (classic load spreading), to the member the *chooser*
has heard the smallest piggybacked queue-depth hint from
(``least-busy``, requires a :class:`~repro.load.shedding.HintRegistry` —
information a real peer can have), or to the member with the smallest
simulator-side queue backlog (``least-busy-oracle``, kept purely as the
upper-bound comparison baseline: no peer could know this).

Without a hint registry ``least-busy`` falls back to the oracle when a
load model is attached (as in PR 4, now with power-of-two sampling) and to
``random`` otherwise.

The hop count is unchanged — only the *target* of the existing last hop
moves — so diffusion trades no extra latency for its balancing, and with
``policy="none"`` the rewrite is the identity.  Benchmark E12 measures the
effect: the latency-vs-offered-load knee moves right with the replica
degree once diffusion is on, and E12d compares hint-steered against
oracle-steered spreading under overload.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.load.shedding import HintRegistry, pick_least_hinted

if TYPE_CHECKING:
    from repro.load.model import LoadModel
    from repro.pgrid.peer import PGridPeer

#: Recognized diffusion policies.
POLICIES = ("none", "random", "least-busy", "least-busy-oracle")


def replica_set(destination: "PGridPeer") -> list["PGridPeer"]:
    """The destination plus its online replicas, sorted for determinism."""
    from repro.pgrid.replication import online_group  # deferred: pgrid imports load

    return online_group(destination)


def choose_replica(
    destination: "PGridPeer",
    policy: str = "none",
    rng: random.Random | None = None,
    load: "LoadModel | None" = None,
    now: float = 0.0,
    hints: HintRegistry | None = None,
    observer: str | None = None,
) -> "PGridPeer":
    """Pick the replica-group member that should serve this read.

    ``observer`` names the peer whose hint table steers a ``least-busy``
    choice — normally the operation's initiator, who accumulates depth
    hints from the replies it receives.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown diffusion policy {policy!r} (use one of {POLICIES})")
    if policy == "none":
        return destination
    members = replica_set(destination)
    if len(members) == 1:
        return destination
    return pick_member(
        members, policy, rng=rng, load=load, now=now, hints=hints, observer=observer
    )


def pick_member(
    members: list["PGridPeer"],
    policy: str,
    rng: random.Random | None = None,
    load: "LoadModel | None" = None,
    now: float = 0.0,
    hints: HintRegistry | None = None,
    observer: str | None = None,
) -> "PGridPeer":
    """Rank ``members`` under ``policy`` and return the chosen one.

    Shared by last-hop diffusion and by the retry-another-replica path after
    an admission reject (which excludes already-tried members first).

    Both least-busy variants use *power-of-two-choices* sampling on groups
    larger than two: two members are drawn at random and the less loaded of
    the pair wins.  Greedily sending everything to the single minimum herds
    — the load signal is stale by at least the decision-to-delivery delay
    (hints are stale by a full round trip), so consecutive choices pile onto
    the same member until the signal catches up; sampling two keeps most of
    the steering benefit while spreading the herd (Mitzenmacher's "power of
    two choices" argument, visible in benchmark E12d).
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown diffusion policy {policy!r} (use one of {POLICIES})")
    if not members:
        raise ValueError("need at least one member to pick from")
    if len(members) == 1:
        return members[0]
    rng = rng or random.Random()
    if policy in ("least-busy", "least-busy-oracle"):
        use_hints = policy == "least-busy" and hints is not None and observer is not None
        if use_hints or load is not None:
            sample = rng.sample(members, 2) if len(members) > 2 else members
            if use_hints:
                by_id = {p.node_id: p for p in sample}
                ids = [p.node_id for p in sample]
                # now=0.0 means "no decision clock": decay against the
                # registry's latest observation instead.
                chosen = pick_least_hinted(
                    ids, observer, hints, rng, now=now if now > 0.0 else None
                )
                return by_id[chosen]
            # The oracle, or hint-less least-busy (oracle fallback).
            return min(sample, key=lambda p: (load.backlog(p.node_id, now), p.node_id))
    # "random", or a least-busy policy with no load information to act on.
    return rng.choice(members)


def diffuse_route(
    destination: "PGridPeer",
    hops: list[tuple[str, str]],
    policy: str = "none",
    rng: random.Random | None = None,
    load: "LoadModel | None" = None,
    now: float = 0.0,
    hints: HintRegistry | None = None,
    observer: str | None = None,
) -> tuple["PGridPeer", list[tuple[str, str]]]:
    """Rewrite a discovered route's last hop to the chosen group member.

    With no hops the requester is itself a member of the responsible group
    and serves the read locally for free — diffusing away would *add* a hop,
    so the route is returned unchanged.
    """
    if policy == "none" or not hops:
        return destination, hops
    target = choose_replica(
        destination, policy=policy, rng=rng, load=load, now=now, hints=hints, observer=observer
    )
    if target is destination:
        return destination, hops
    return target, hops[:-1] + [(hops[-1][0], target.node_id)]
