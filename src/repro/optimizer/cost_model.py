"""The cost model (paper §2, ref. [5]).

    "For each physical operator, and thus, for each query plan, we can
     determine worst-case guarantees (almost all are logarithmic) and predict
     exact costs.  We base these calculations on the characteristics of the
     used overlay system and the actual data distribution."

Costs carry two dimensions — total **messages** and critical-path **latency**
— mirroring the two things the paper's evaluation talks about (traffic and
answer time).  Plan comparison minimizes a weighted combination
(latency-dominant by default, as the demo's headline metric is answer time).

The formulas below are the standard P-Grid/UniStore ones:

* key lookup:         log₂(G) messages, log₂(G) sequential hops
* shower range scan:  log₂(G) + L messages, depth ≈ log₂(G) critical path
* sequential scan:    log₂(G) + L messages, log₂(G) + L critical path
* ship join:          inputs + shipping |L|+|R| rows, one parallel wave
* index-NL join:      |distinct(L)| parallel lookups
* re-hash join:       |L|+|R| routed transfers, parallel, + result wave
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.optimizer.statistics import CatalogStatistics


@dataclass(frozen=True)
class Cost:
    """Estimated messages (total) and latency (critical path, seconds)."""

    messages: float = 0.0
    latency: float = 0.0

    def then(self, other: "Cost") -> "Cost":
        """Sequential composition: both traffic and latency add."""
        return Cost(self.messages + other.messages, self.latency + other.latency)

    def alongside(self, other: "Cost") -> "Cost":
        """Parallel composition: traffic adds, latency takes the slower arm."""
        return Cost(self.messages + other.messages, max(self.latency, other.latency))

    def scaled(self, factor: float) -> "Cost":
        """Multiply both dimensions (N independent repetitions)."""
        return Cost(self.messages * factor, self.latency * factor)


class CostModel:
    """Turns statistics into per-operator cost estimates."""

    def __init__(
        self,
        stats: CatalogStatistics,
        latency_weight: float = 1.0,
        message_weight: float = 0.001,
    ):
        self.stats = stats
        self.latency_weight = latency_weight
        self.message_weight = message_weight

    # -- plan comparison -------------------------------------------------------

    def value(self, cost: Cost) -> float:
        """Scalarized cost used to rank plans."""
        return self.latency_weight * cost.latency + self.message_weight * cost.messages

    # -- primitives -------------------------------------------------------------

    @property
    def hop_latency(self) -> float:
        """Expected one-way latency of a single overlay hop."""
        return self.stats.avg_link_latency

    def lookup(self) -> Cost:
        """One exact-key lookup: log2(G) routing hops plus the reply."""
        hops = self.stats.expected_hops()
        return Cost(messages=hops + 1, latency=(hops + 1) * self.hop_latency)

    def parallel_lookups(self, count: float) -> Cost:
        """``count`` concurrent lookups: traffic scales, latency does not."""
        one = self.lookup()
        return Cost(messages=one.messages * max(0.0, count), latency=one.latency)

    def range_scan(self, fraction: float, algorithm: str, result_rows: float) -> Cost:
        """Scan of a key range covering ``fraction`` of an index's data."""
        hops = self.stats.expected_hops()
        leaves = self.stats.expected_leaves(fraction)
        if algorithm == "sequential":
            messages = hops + leaves + result_rows / max(1.0, leaves)
            latency = (hops + leaves) * self.hop_latency
        else:  # shower
            messages = hops + 2 * leaves  # fan-out + per-edge returns
            latency = 2 * hops * self.hop_latency
        return Cost(messages=messages, latency=latency)

    def ship_rows(self, rows: float, senders: float = 1.0) -> Cost:
        """One parallel wave delivering ``rows`` from ``senders`` peers.

        ``messages`` is in *traffic units*: one header per sender plus one
        unit per shipped row, matching how the simulator accounts payload
        sizes.  Latency is a single parallel hop.
        """
        if rows <= 0:
            return Cost()
        return Cost(messages=max(1.0, senders) + rows, latency=self.hop_latency)

    # -- joins ---------------------------------------------------------------------

    def ship_join(
        self, left_rows: float, left_senders: float, right_rows: float, right_senders: float
    ) -> Cost:
        """Ship both inputs to the coordinator in one parallel wave."""
        return self.ship_rows(left_rows, left_senders).alongside(
            self.ship_rows(right_rows, right_senders)
        )

    def index_nl_join(self, distinct_probe_values: float) -> Cost:
        """One parallel index lookup per distinct join value of the left side."""
        return self.parallel_lookups(distinct_probe_values)

    def rehash_join(self, left_rows: float, right_rows: float, result_rows: float) -> Cost:
        """Symmetric re-hash: both inputs route to rendezvous peers in parallel."""
        hops = self.stats.expected_hops()
        transfers = (left_rows + right_rows) * 0.5 + 1  # batched by join value
        messages = transfers * hops + max(1.0, result_rows)
        latency = hops * self.hop_latency + self.hop_latency  # parallel waves
        return Cost(messages=messages, latency=latency)

    # -- similarity -------------------------------------------------------------------

    def qgram_probe(self, gram_count: float) -> Cost:
        """Parallel posting-list fetches for the probe grams of one string."""
        return self.parallel_lookups(gram_count)

    # -- ranking -----------------------------------------------------------------------

    def ranked_collection(self, producer_count: float, rows_shipped: float) -> Cost:
        """Gathering (locally pruned) ranking inputs at the coordinator."""
        if rows_shipped <= 0:
            return Cost()
        return Cost(messages=max(1.0, producer_count) + rows_shipped, latency=self.hop_latency)
