"""Per-peer datastore: versioned upserts, range scans, partitioning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pgrid.datastore import DataStore, Entry
from repro.pgrid.keys import KeyRange, key_fraction

KEYS = st.text(alphabet="01", min_size=1, max_size=8)


def _entry(key, item="x", value=None, version=0):
    return Entry(key=key, item_id=item, value=value if value is not None else key, version=version)


class TestPutGet:
    def test_put_and_get(self):
        store = DataStore()
        assert store.put(_entry("0101"))
        assert [e.value for e in store.get("0101")] == ["0101"]

    def test_multiple_items_one_key(self):
        store = DataStore()
        store.put(_entry("01", item="a"))
        store.put(_entry("01", item="b"))
        assert len(store.get("01")) == 2
        assert len(store) == 2

    def test_version_upgrade(self):
        store = DataStore()
        store.put(_entry("01", version=1, value="old"))
        assert store.put(_entry("01", version=2, value="new"))
        assert store.get_entry("01", "x").value == "new"

    def test_stale_version_ignored(self):
        store = DataStore()
        store.put(_entry("01", version=5, value="current"))
        assert not store.put(_entry("01", version=3, value="stale"))
        assert store.get_entry("01", "x").value == "current"

    def test_equal_version_idempotent(self):
        store = DataStore()
        store.put(_entry("01", version=1))
        assert not store.put(_entry("01", version=1))
        assert len(store) == 1

    def test_delete(self):
        store = DataStore()
        store.put(_entry("01"))
        assert store.delete("01", "x")
        assert not store.delete("01", "x")
        assert store.get("01") == []
        assert len(store) == 0

    def test_retain(self):
        store = DataStore()
        store.put(_entry("00", item="keep"))
        store.put(_entry("01", item="drop"))
        removed = store.retain(lambda e: e.item_id == "keep")
        assert removed == 1
        assert [e.item_id for e in store] == ["keep"]

    def test_iteration_sorted_by_key(self):
        store = DataStore()
        for key in ["11", "00", "01"]:
            store.put(_entry(key))
        assert [e.key for e in store] == ["00", "01", "11"]

    def test_clear(self):
        store = DataStore()
        store.put(_entry("01"))
        store.clear()
        assert len(store) == 0 and store.keys() == []


class TestScan:
    def test_scan_subtree(self):
        store = DataStore()
        for key in ["000", "010", "011", "100"]:
            store.put(_entry(key))
        found = store.scan(KeyRange.subtree("01"))
        assert sorted(e.key for e in found) == ["010", "011"]

    def test_scan_everything(self):
        store = DataStore()
        for key in ["0", "10", "111"]:
            store.put(_entry(key))
        assert len(store.scan(KeyRange.everything())) == 3

    def test_scan_zero_padded_edge(self):
        # "01" and "010" denote the same point; both must be found at the low edge.
        store = DataStore()
        store.put(_entry("01"))
        store.put(_entry("010"))
        found = store.scan(KeyRange("010", "011"))
        assert sorted(e.key for e in found) == ["01", "010"]

    def test_partition(self):
        store = DataStore()
        for key in ["000", "001", "010", "011"]:
            store.put(_entry(key))
        zeros, ones = store.partition("000".rstrip("0") or "00")  # prefix "00"
        zeros, ones = store.partition("00")
        assert sorted(e.key for e in zeros) == ["000", "001"]
        assert sorted(e.key for e in ones) == ["010", "011"]

    @given(st.lists(KEYS, max_size=30), KEYS, KEYS)
    @settings(max_examples=100)
    def test_scan_matches_naive_filter(self, keys, lo, hi):
        if key_fraction(lo) > key_fraction(hi):
            lo, hi = hi, lo
        store = DataStore()
        for index, key in enumerate(keys):
            store.put(Entry(key=key, item_id=f"i{index}", value=key, version=0))
        key_range = KeyRange(lo, hi if key_fraction(hi) > key_fraction(lo) else None)
        got = sorted((e.key, e.item_id) for e in store.scan(key_range))
        expected = sorted((e.key, e.item_id) for e in store if key_range.contains(e.key))
        assert got == expected
