"""Logical rewrites.

Classic, always-beneficial transformations applied before cost-based
physical planning:

* **filter pushdown** — selection predicates that only mention variables of
  a single pattern move into that :class:`PatternScan`, where the physical
  layer can turn them into index ranges or evaluate them where the data
  lives;
* **TopN fusion** — ``Limit(OrderBy(x))`` becomes :class:`TopN`, whose
  distributed implementation ships only n rows per peer;
* **selection splitting** — an AND-selection splits into a cascade so each
  conjunct can be pushed independently.
"""

from __future__ import annotations

from dataclasses import replace

from repro.algebra.operators import (
    Difference,
    Intersection,
    Join,
    LeftJoin,
    Limit,
    LogicalPlan,
    OrderBy,
    PatternScan,
    Projection,
    Selection,
    SimilarityJoin,
    Skyline,
    TopN,
    Union,
)
from repro.vql.ast import BoolOp, Expression, expression_variables


def rewrite(plan: LogicalPlan) -> LogicalPlan:
    """Apply all rewrites bottom-up until a fixpoint shape is reached."""
    plan = split_conjunctions(plan)
    plan = detect_similarity_joins(plan)
    plan = push_down_filters(plan)
    plan = fuse_top_n(plan)
    return plan


# ---------------------------------------------------------------------------
# Selection splitting
# ---------------------------------------------------------------------------


def split_conjunctions(plan: LogicalPlan) -> LogicalPlan:
    """Turn σ[a AND b] into σ[a](σ[b](…)) so conjuncts push independently."""
    plan = _map_children(plan, split_conjunctions)
    if isinstance(plan, Selection) and isinstance(plan.predicate, BoolOp):
        if plan.predicate.op == "and":
            child = plan.child
            for conjunct in reversed(plan.predicate.operands):
                child = Selection(child, conjunct)
            return child
    return plan


# ---------------------------------------------------------------------------
# Filter pushdown
# ---------------------------------------------------------------------------


def push_down_filters(plan: LogicalPlan) -> LogicalPlan:
    """Move selections towards the scans that bind their variables."""
    if isinstance(plan, Selection):
        pushed = _try_push(plan.child, plan.predicate)
        if pushed is not None:
            return push_down_filters(pushed)
        return Selection(push_down_filters(plan.child), plan.predicate)
    return _map_children(plan, push_down_filters)


def _try_push(plan: LogicalPlan, predicate: Expression) -> LogicalPlan | None:
    """Push one predicate into ``plan`` if some subtree binds all its variables.

    Returns the rewritten plan, or None when the predicate must stay here.
    """
    needed = expression_variables(predicate)

    if isinstance(plan, PatternScan):
        if needed <= plan.pattern.variables():
            return replace(plan, filters=plan.filters + (predicate,))
        return None

    if isinstance(plan, (Join, SimilarityJoin)):
        left_vars = plan.left.output_variables()
        right_vars = plan.right.output_variables()
        if needed <= left_vars:
            pushed = _try_push(plan.left, predicate)
            left = pushed if pushed is not None else Selection(plan.left, predicate)
            return _rebuild_binary(plan, left, plan.right)
        if needed <= right_vars:
            pushed = _try_push(plan.right, predicate)
            right = pushed if pushed is not None else Selection(plan.right, predicate)
            return _rebuild_binary(plan, plan.left, right)
        return None

    if isinstance(plan, LeftJoin):
        # Only the left (required) side preserves semantics under pushdown.
        if needed <= plan.left.output_variables():
            pushed = _try_push(plan.left, predicate)
            left = pushed if pushed is not None else Selection(plan.left, predicate)
            return LeftJoin(left, plan.right)
        return None

    if isinstance(plan, Selection):
        pushed = _try_push(plan.child, predicate)
        if pushed is not None:
            return Selection(pushed, plan.predicate)
        return None

    if isinstance(plan, Union):
        if needed <= plan.output_variables():
            new_inputs = []
            for child in plan.inputs:
                pushed = _try_push(child, predicate)
                new_inputs.append(pushed if pushed is not None else Selection(child, predicate))
            return Union(tuple(new_inputs))
        return None

    return None


def _rebuild_binary(plan: LogicalPlan, left: LogicalPlan, right: LogicalPlan) -> LogicalPlan:
    if isinstance(plan, Join):
        return Join(left, right)
    if isinstance(plan, SimilarityJoin):
        return SimilarityJoin(
            left, right, plan.left_variable, plan.right_variable, plan.max_distance
        )
    raise TypeError(type(plan).__name__)


# ---------------------------------------------------------------------------
# Similarity-join detection
# ---------------------------------------------------------------------------


def detect_similarity_joins(plan: LogicalPlan) -> LogicalPlan:
    """Recognize σ[edist(?x, ?y) < k](L ⋈ R) as a similarity join.

    When a selection directly above a join compares two variables from
    opposite sides with a bounded edit distance, replace the pair with the
    logical :class:`SimilarityJoin`, unlocking the q-gram physical strategy
    (paper §2: "similarity operators (e.g., similarity join)").
    """
    plan = _map_children(plan, detect_similarity_joins)
    if not isinstance(plan, Selection) or not isinstance(plan.child, Join):
        return plan
    parsed = _parse_edist_var_pair(plan.predicate)
    if parsed is None:
        return plan
    var_a, var_b, max_distance = parsed
    join = plan.child
    left_vars = join.left.output_variables()
    right_vars = join.right.output_variables()
    if var_a.name in left_vars and var_b.name in right_vars:
        left_var, right_var = var_a, var_b
    elif var_b.name in left_vars and var_a.name in right_vars:
        left_var, right_var = var_b, var_a
    else:
        return plan
    return SimilarityJoin(join.left, join.right, left_var, right_var, max_distance)


def _parse_edist_var_pair(expr: Expression):
    """Match ``edist(?a, ?b) < k`` / ``<= k`` with two variables; return
    ``(a, b, k)`` as an inclusive bound, or None."""
    from repro.vql.ast import Comparison, FunctionCall, Literal, Var

    if not isinstance(expr, Comparison) or expr.op not in ("<", "<="):
        return None
    call, bound = expr.left, expr.right
    if not isinstance(call, FunctionCall) or call.name != "edist":
        return None
    if not isinstance(bound, Literal) or isinstance(bound.value, str):
        return None
    if len(call.args) != 2:
        return None
    a, b = call.args
    if not isinstance(a, Var) or not isinstance(b, Var):
        return None
    k = int(bound.value) - 1 if expr.op == "<" else int(bound.value)
    if k < 0:
        return None
    return a, b, k


# ---------------------------------------------------------------------------
# TopN fusion
# ---------------------------------------------------------------------------


def fuse_top_n(plan: LogicalPlan) -> LogicalPlan:
    plan = _map_children(plan, fuse_top_n)
    if (isinstance(plan, Limit) and plan.count is not None and isinstance(plan.child, OrderBy)):
        return TopN(plan.child.child, plan.child.items, n=plan.count, offset=plan.offset)
    return plan


# ---------------------------------------------------------------------------
# Structural helper
# ---------------------------------------------------------------------------


def _map_children(plan: LogicalPlan, transform) -> LogicalPlan:
    """Rebuild ``plan`` with ``transform`` applied to each child."""
    if isinstance(plan, PatternScan):
        return plan
    if isinstance(plan, Selection):
        return Selection(transform(plan.child), plan.predicate)
    if isinstance(plan, Projection):
        return Projection(transform(plan.child), plan.variables, plan.distinct)
    if isinstance(plan, Join):
        return Join(transform(plan.left), transform(plan.right))
    if isinstance(plan, LeftJoin):
        return LeftJoin(transform(plan.left), transform(plan.right))
    if isinstance(plan, SimilarityJoin):
        return SimilarityJoin(
            transform(plan.left),
            transform(plan.right),
            plan.left_variable,
            plan.right_variable,
            plan.max_distance,
        )
    if isinstance(plan, Union):
        return Union(tuple(transform(c) for c in plan.inputs))
    if isinstance(plan, Intersection):
        return Intersection(tuple(transform(c) for c in plan.inputs))
    if isinstance(plan, Difference):
        return Difference(transform(plan.left), transform(plan.right))
    if isinstance(plan, OrderBy):
        return OrderBy(transform(plan.child), plan.items)
    if isinstance(plan, Limit):
        return Limit(transform(plan.child), plan.count, plan.offset)
    if isinstance(plan, TopN):
        return TopN(transform(plan.child), plan.items, plan.n, plan.offset)
    if isinstance(plan, Skyline):
        return Skyline(transform(plan.child), plan.items)
    raise TypeError(f"unknown plan node {type(plan).__name__}")
