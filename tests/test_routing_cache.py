"""Per-peer route caching: shortcut hits, validation-at-use, invalidation,
and opt-in piggybacked warming (transit peers learn from forwarded traffic)."""

import random

import pytest

from repro.net import Network, ZeroLatency
from repro.pgrid import build_network, encode_string
from repro.pgrid.keys import responsible
from repro.pgrid.network import PGridNetwork
from repro.pgrid.routing import RouteCache, point_key, route, route_hops


def _key(word: str) -> str:
    return encode_string(word)


class TestRouteCacheUnit:
    def test_longest_covering_prefix_wins(self):
        cache = RouteCache()
        cache.put("0", "shallow")
        cache.put("00", "deep")
        assert cache.get("001")[1] == "deep"
        assert cache.get("010")[1] == "shallow"
        assert cache.get("110") is None

    def test_lru_eviction_at_capacity(self):
        cache = RouteCache(capacity=2)
        cache.put("00", "a")
        cache.put("01", "b")
        cache.get("000")  # touch "00" so "01" becomes the LRU victim
        cache.put("10", "c")
        assert len(cache) == 2
        assert cache.get("010") is None
        assert cache.get("000")[1] == "a"

    def test_invalidate_key_drops_covering_entries(self):
        cache = RouteCache()
        cache.put("0", "a")
        cache.put("00", "b")
        cache.put("11", "c")
        cache.invalidate_key("001")
        assert cache.get("001") is None
        assert cache.get("110")[1] == "c"

    def test_invalidate_peer(self):
        cache = RouteCache()
        cache.put("00", "a")
        cache.put("01", "a")
        cache.put("10", "b")
        cache.invalidate_peer("a")
        assert cache.get("000") is None and cache.get("010") is None
        assert cache.get("100")[1] == "b"

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            RouteCache(capacity=0)


class TestRoutingWithCache:
    def test_repeat_route_shortcuts_to_one_direct_hop(self):
        pnet = build_network(64, replication=2, seed=3, split_by="population")
        start = pnet.peers[0]
        key = _key("repeatable")
        first_dest, first_trace = route(start, key)
        second_dest, second_trace = route(start, key)
        assert second_dest is first_dest
        assert second_trace.messages <= 1  # cached: direct hop (0 when local)
        assert second_trace.messages <= first_trace.messages
        assert start.route_cache.hits >= 1

    def test_disabled_cache_is_never_consulted_or_populated(self):
        pnet = build_network(64, replication=2, seed=3, split_by="population")
        start = pnet.peers[0]
        key = _key("repeatable")
        route(start, key, use_cache=False)
        route(start, key, use_cache=False)
        assert len(start.route_cache) == 0
        assert start.route_cache.hits == 0

    def test_offline_destination_is_evicted_and_rerouted(self):
        pnet = build_network(32, replication=2, seed=5, split_by="population")
        key = _key("failover")
        # Start somewhere not responsible for the key, so routing really moves.
        start = next(p for p in pnet.peers if not responsible(p.path, key))
        cached_dest, _ = route(start, key)
        cached_dest.fail()
        new_dest, trace = route(start, key)
        assert new_dest is not cached_dest
        assert new_dest.online and responsible(new_dest.path, key)
        assert start.route_cache.evictions >= 1
        # The replacement destination is cached for the next round trip.
        assert start.route_cache.get(key)[1] == new_dest.node_id

    def test_stale_entry_pointing_at_moved_peer_falls_back(self):
        pnet = build_network(32, replication=2, seed=6, split_by="population")
        key = _key("stale-entry")
        start = next(p for p in pnet.peers if not responsible(p.path, key))
        real_dest, _ = route(start, key)
        # Poison the cache with a peer that does not cover the key's region.
        wrong = next(p for p in pnet.peers if not responsible(p.path, key))
        start.route_cache.clear()
        start.route_cache.put(real_dest.path, wrong.node_id)
        dest, _trace = route(start, key)
        assert responsible(dest.path, key)
        assert start.route_cache.evictions >= 1

    def test_route_warming_is_off_by_default(self):
        pnet = build_network(128, replication=2, seed=21, split_by="population")
        assert pnet.net.route_warming is False
        key = point_key(encode_string("wander"))
        _dest, hops = route_hops(pnet.peers[0], key, rng=random.Random(1))
        for src_id, _dst_id in hops[1:]:
            assert len(pnet.net.nodes[src_id].route_cache) == 0

    def test_warming_piggyback_shortens_second_peer_routes(self):
        """A transit peer learns the destination from traffic it forwards, so
        its own repeat lookup for the region takes fewer hops than the cold
        route in an identical (unwarmed) twin overlay."""

        def overlay(warm: bool) -> "PGridNetwork":
            pnet = build_network(128, replication=2, seed=21, split_by="population")
            pnet.net.route_warming = warm
            return pnet

        cold, warm = overlay(False), overlay(True)
        # Find a key whose route from peer 0 transits a peer that would
        # itself need >= 2 hops — the case warming is supposed to help.
        for word_index in range(40):
            key = point_key(encode_string(f"probe{word_index:02d}"))
            scout = overlay(False)
            _dest, hops = route_hops(scout.peers[0], key, rng=random.Random(1))
            if len(hops) < 2:
                continue
            transit_id = hops[0][1]
            _dest, transit_cold = route_hops(scout.net.nodes[transit_id], key, rng=random.Random(2))
            if len(transit_cold) >= 2:
                break
        else:
            pytest.fail("no suitable multi-hop route found")

        cold_dest, cold_hops = route_hops(cold.peers[0], key, rng=random.Random(1))
        warm_dest, warm_hops = route_hops(warm.peers[0], key, rng=random.Random(1))
        assert cold_hops == warm_hops  # warming never changes the first route
        assert warm_dest.node_id == cold_dest.node_id

        # Second peer: a transit peer of the first route repeats the lookup.
        cold_transit = cold.net.nodes[cold_hops[0][1]]
        warm_transit = warm.net.nodes[warm_hops[0][1]]
        assert len(warm_transit.route_cache) >= 1  # piggybacked entry landed
        _dest, cold_second = route_hops(cold_transit, key, rng=random.Random(2))
        warm_second_dest, warm_second = route_hops(warm_transit, key, rng=random.Random(2))
        assert len(warm_second) == 1  # direct: cache hit from observed traffic
        assert len(warm_second) < len(cold_second)
        assert responsible(warm_second_dest.path, key)

    def test_midroute_cache_consult_short_circuits(self):
        """With warming on, a warm *intermediate* cuts the remaining hops."""
        pnet = PGridNetwork(Network(latency_model=ZeroLatency(), seed=0))
        s = pnet.add_peer("s", "0")
        m = pnet.add_peer("m", "10")
        x = pnet.add_peer("x", "110")
        d = pnet.add_peer("d", "111")
        s.routing.add(0, "m")
        m.routing.add(0, "s")
        m.routing.add(1, "x")
        x.routing.add(2, "d")
        d.routing.add(2, "x")
        key = point_key("111")
        # Cold: s -> m -> x -> d.
        dest, hops = route_hops(s, key)
        assert dest is d and len(hops) == 3
        s.route_cache.clear()
        # Warm m's cache (as if it observed traffic towards d) and re-route.
        pnet.net.route_warming = True
        m.route_cache.put("111", "d")
        dest, hops = route_hops(s, key)
        assert dest is d
        assert hops == [("s", "m"), ("m", "d")]  # m jumped straight to d

    def test_cache_does_not_change_results_under_churn(self):
        """Routed lookups keep returning the stored value across fail/recover."""
        pnet = build_network(32, replication=2, seed=9, split_by="population")
        key = _key("durable")
        pnet.insert(key, "payload", item_id="item-durable")
        start = pnet.peers[0]
        for round_no in range(6):
            entries, _trace = pnet.lookup(key, start=start)
            assert [e.value for e in entries] == ["payload"], round_no
            group = pnet.responsible_group(key)
            victim = group[round_no % len(group)]
            online_rest = [p for p in group if p is not victim and p.online]
            if online_rest:  # keep the region reachable
                victim.fail()
                entries, _trace = pnet.lookup(key, start=start)
                assert [e.value for e in entries] == ["payload"]
                victim.recover()
