"""Physical scan strategies for one triple pattern.

Which scans are *applicable* depends on the pattern's bound positions (the
paper's three indexes, §2); which is *chosen* is the optimizer's job:

=====================  ==========================================  ============
strategy               applicable when                             index used
=====================  ==========================================  ============
OidLookupScan          subject literal                             OID
AvLookupScan           predicate + object literals                 A#v (exact)
AvRangeScan            predicate literal, range filter on object   A#v (range)
AvPrefixScan           predicate literal, prefix filter on object  A#v (range)
AttributeScan          predicate literal only                      A#v (subtree)
VLookupScan            object literal, predicate variable          v   (exact)
VRangeScan/VPrefixScan object variable w/ filter, predicate var    v   (range)
QGramScan              predicate literal, edist filter on object   q-gram
BroadcastScan          nothing bound                               A#v (full)
=====================  ==========================================  ============

All scans return bindings in produce form (grouped by serving peer) and apply
their residual ``filters`` where the data lives, before anything is shipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanningError
from repro.net.trace import Trace
from repro.algebra.expressions import satisfies
from repro.algebra.semantics import Binding, match_pattern
from repro.physical.base import ExecutionContext, OpResult, PhysicalOperator
from repro.pgrid.keys import KeyRange
from repro.pgrid.range_query import (
    range_query_sequential_groups,
    range_query_shower_groups,
)
from repro.strings import distinct_count_filter_threshold, edit_distance_within, qgrams
from repro.triples.index import (
    INDEX_TAG,
    IndexKind,
    av_key,
    av_string_prefix_range,
    av_value_range,
    oid_key,
    qgram_key,
    v_key,
    v_string_prefix_range,
    v_value_range,
)
from repro.triples.store import Posting
from repro.triples.triple import Triple, Value
from repro.vql.ast import Expression, Literal, TriplePattern, Var


@dataclass
class _ScanBase(PhysicalOperator):
    """Shared binding-construction logic for all scans."""

    pattern: TriplePattern
    filters: tuple[Expression, ...] = ()

    def _bindings(self, entries, kind: IndexKind) -> list[Binding]:
        """Convert index postings to filtered bindings (dedup across replicas)."""
        seen: set[tuple[str, str, Value]] = set()
        bindings: list[Binding] = []
        for entry in entries:
            posting = entry.value
            if not isinstance(posting, Posting) or posting.kind is not kind:
                continue
            identity = posting.triple.as_tuple()
            if identity in seen:
                continue
            seen.add(identity)
            binding = match_pattern(self.pattern, posting.triple)
            if binding is None:
                continue
            if all(satisfies(f, binding) for f in self.filters):
                bindings.append(binding)
        return bindings

    def _bindings_from_triples(self, triples: list[Triple]) -> list[Binding]:
        bindings: list[Binding] = []
        for triple in triples:
            binding = match_pattern(self.pattern, triple)
            if binding is None:
                continue
            if all(satisfies(f, binding) for f in self.filters):
                bindings.append(binding)
        return bindings

    def _range_groups(self, ctx: ExecutionContext, key_range: KeyRange, kind: IndexKind):
        algorithm = getattr(self, "algorithm", None) or ctx.range_algorithm
        if algorithm == "shower":
            groups, trace, complete = range_query_shower_groups(
                ctx.pnet, key_range, start=ctx.coordinator, rng=ctx.rng
            )
        elif algorithm == "sequential":
            groups, trace, complete = range_query_sequential_groups(
                ctx.pnet, key_range, start=ctx.coordinator, rng=ctx.rng
            )
        else:
            raise PlanningError(f"unknown range algorithm {algorithm!r}")
        result_groups = []
        for peer_id, entries in groups:
            bindings = self._bindings(entries, kind)
            if bindings:
                result_groups.append((peer_id, bindings))
        return OpResult(groups=result_groups, trace=trace, complete=complete)

    def _label(self) -> str:
        extra = f" | {' AND '.join(str(f) for f in self.filters)}" if self.filters else ""
        return f"{type(self).__name__} {self.pattern}{extra}"


@dataclass
class OidLookupScan(_ScanBase):
    """Exact lookup by subject OID ("efficient reproduction of origin data")."""

    strategy = "oid-lookup"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        subject = self.pattern.subject
        if not isinstance(subject, Literal) or not isinstance(subject.value, str):
            raise PlanningError("OidLookupScan needs a string subject literal")
        entries, trace, destination = ctx.pnet.lookup_at(
            oid_key(subject.value), start=ctx.coordinator
        )
        bindings = self._bindings(entries, IndexKind.OID)
        groups = [(destination.node_id, bindings)] if bindings else []
        return OpResult(groups=groups, trace=trace)


@dataclass
class AvLookupScan(_ScanBase):
    """Exact lookup on the A#v index (predicate and object bound)."""

    strategy = "av-lookup"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        predicate, object_ = self.pattern.predicate, self.pattern.object
        if not isinstance(predicate, Literal) or not isinstance(object_, Literal):
            raise PlanningError("AvLookupScan needs literal predicate and object")
        entries, trace, destination = ctx.pnet.lookup_at(
            av_key(str(predicate.value), object_.value), start=ctx.coordinator
        )
        bindings = self._bindings(entries, IndexKind.AV)
        groups = [(destination.node_id, bindings)] if bindings else []
        return OpResult(groups=groups, trace=trace)


@dataclass
class AvRangeScan(_ScanBase):
    """Range scan on the A#v index: ``low <op> attribute <op> high``."""

    low: Value | None = None
    high: Value | None = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    algorithm: str | None = None  # None = context default

    strategy = "av-range"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        predicate = self.pattern.predicate
        if not isinstance(predicate, Literal):
            raise PlanningError("AvRangeScan needs a literal predicate")
        key_range = av_value_range(
            str(predicate.value), self.low, self.high, self.low_inclusive, self.high_inclusive
        )
        return self._range_groups(ctx, key_range, IndexKind.AV)

    def _label(self) -> str:
        lo_bracket = "[" if self.low_inclusive else "("
        hi_bracket = "]" if self.high_inclusive else ")"
        return (
            f"AvRangeScan {self.pattern} "
            f"{lo_bracket}{self.low}, {self.high}{hi_bracket}"
            + (f" alg={self.algorithm}" if self.algorithm else "")
        )


@dataclass
class AvPrefixScan(_ScanBase):
    """Prefix scan over string values of one attribute."""

    prefix: str = ""
    algorithm: str | None = None

    strategy = "av-prefix"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        predicate = self.pattern.predicate
        if not isinstance(predicate, Literal):
            raise PlanningError("AvPrefixScan needs a literal predicate")
        key_range = av_string_prefix_range(str(predicate.value), self.prefix)
        return self._range_groups(ctx, key_range, IndexKind.AV)


@dataclass
class AttributeScan(_ScanBase):
    """Scan every triple of one attribute (whole A#v subtree)."""

    algorithm: str | None = None

    strategy = "attribute-scan"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        predicate = self.pattern.predicate
        if not isinstance(predicate, Literal):
            raise PlanningError("AttributeScan needs a literal predicate")
        key_range = av_value_range(str(predicate.value))
        return self._range_groups(ctx, key_range, IndexKind.AV)


@dataclass
class VLookupScan(_ScanBase):
    """Exact lookup on the v index — value known, attribute unknown."""

    strategy = "v-lookup"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        object_ = self.pattern.object
        if not isinstance(object_, Literal):
            raise PlanningError("VLookupScan needs a literal object")
        entries, trace, destination = ctx.pnet.lookup_at(
            v_key(object_.value), start=ctx.coordinator
        )
        bindings = self._bindings(entries, IndexKind.V)
        groups = [(destination.node_id, bindings)] if bindings else []
        return OpResult(groups=groups, trace=trace)


@dataclass
class VRangeScan(_ScanBase):
    """Range scan over the v index (attribute unknown)."""

    low: Value | None = None
    high: Value | None = None
    low_inclusive: bool = True
    high_inclusive: bool = True
    algorithm: str | None = None

    strategy = "v-range"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        key_range = v_value_range(self.low, self.high, self.low_inclusive, self.high_inclusive)
        return self._range_groups(ctx, key_range, IndexKind.V)


@dataclass
class VPrefixScan(_ScanBase):
    """Prefix search over all string values — the paper's substring entry point."""

    prefix: str = ""
    algorithm: str | None = None

    strategy = "v-prefix"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        key_range = v_string_prefix_range(self.prefix)
        return self._range_groups(ctx, key_range, IndexKind.V)


@dataclass
class BroadcastScan(_ScanBase):
    """Fallback when nothing is bound: scan the entire A#v subtree.

    Every triple has exactly one A#v posting, so this enumerates the whole
    store once — the expensive strategy the cost model should avoid unless
    the pattern really binds nothing.
    """

    algorithm: str | None = None

    strategy = "broadcast"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        key_range = KeyRange.subtree(INDEX_TAG[IndexKind.AV])
        return self._range_groups(ctx, key_range, IndexKind.AV)


@dataclass
class QGramScan(_ScanBase):
    """Similarity selection via the distributed q-gram index (paper ref. [6]).

    Answers ``edist(?obj, text) <= max_distance`` for a pattern with a
    literal predicate using the *prefix filter*: a single edit destroys at
    most ``q`` of the query's distinct grams, so any string within distance
    ``k`` must share at least one of **any** ``k*q + 1`` probed query grams
    (pigeonhole).  The scan therefore fetches only ``k*q + 1`` posting lists
    — preferring interior (pad-free) grams, whose buckets are the most
    selective — and verifies the candidate union with the banded edit
    distance.  Falls back to a full attribute scan when the query has too
    few distinct grams for the filter to be sound (short strings / large k).
    """

    text: str = ""
    max_distance: int = 0
    q: int = 3

    strategy = "qgram"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        predicate = self.pattern.predicate
        if not isinstance(predicate, Literal):
            raise PlanningError("QGramScan needs a literal predicate")
        if not ctx.store.enable_qgram_index:
            raise PlanningError("q-gram index not enabled in this store")
        if distinct_count_filter_threshold(self.text, self.q, self.max_distance) < 1:
            fallback = AttributeScan(pattern=self.pattern, filters=self.filters)
            return fallback.execute(ctx)

        attribute = str(predicate.value)
        candidates: dict[tuple[str, str, Value], Triple] = {}
        branches: list[Trace] = []
        for gram in self._probe_grams():
            entries, trace = ctx.pnet.lookup(qgram_key(gram), start=ctx.coordinator, kind="qgram")
            branches.append(trace)
            for entry in entries:
                posting = entry.value
                if not isinstance(posting, Posting) or posting.kind is not IndexKind.QGRAM:
                    continue
                triple = posting.triple
                if triple.attribute != attribute:
                    continue
                candidates.setdefault(triple.as_tuple(), triple)

        verified = [
            t
            for t in candidates.values()
            if isinstance(t.value, str)
            and edit_distance_within(t.value, self.text, self.max_distance) is not None
        ]
        bindings = self._bindings_from_triples(verified)
        groups = [(ctx.coordinator.node_id, bindings)] if bindings else []
        return OpResult(groups=groups, trace=Trace.parallel(branches))

    def _probe_grams(self) -> list[str]:
        """The ``k*q + 1`` probe grams; padded buckets last (they are fat)."""
        from repro.strings.qgrams import PAD_CHAR

        distinct = sorted(set(qgrams(self.text, q=self.q)))
        distinct.sort(key=lambda gram: (PAD_CHAR in gram, gram))
        needed = self.max_distance * self.q + 1
        return distinct[:needed]

    def _label(self) -> str:
        return (
            f"QGramScan {self.pattern} edist(·, {self.text!r}) <= {self.max_distance} "
            f"(q={self.q})"
        )


@dataclass
class OidClusterScan(PhysicalOperator):
    """Star-pattern scan over the OID index.

    When several patterns share one subject variable (a "star" over a single
    logical tuple), the OID index answers the whole star at once: every
    peer's slice of the OID subtree holds *complete* tuples (all postings of
    one OID hash to the same key), so each peer evaluates the star locally
    and the combined bindings stay distributed — exactly what the ranking
    operators need for local pruning (paper: "efficient reproduction of
    origin data, as well as access to parts of special interest").
    """

    patterns: tuple[TriplePattern, ...] = ()
    filters: tuple[Expression, ...] = ()
    subject_variable: str = ""

    strategy = "oid-cluster"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        if not self.patterns:
            raise PlanningError("OidClusterScan needs at least one pattern")
        for pattern in self.patterns:
            subject = pattern.subject
            if not isinstance(subject, Var) or subject.name != self.subject_variable:
                raise PlanningError("OidClusterScan patterns must share the subject variable")
        key_range = KeyRange.subtree(INDEX_TAG[IndexKind.OID])
        groups, trace, complete = range_query_shower_groups(
            ctx.pnet, key_range, start=ctx.coordinator, rng=ctx.rng
        )
        result_groups: list[tuple[str, list[Binding]]] = []
        for peer_id, entries in groups:
            by_oid: dict[str, list[Triple]] = {}
            seen: set[tuple[str, str, Value]] = set()
            for entry in entries:
                posting = entry.value
                if not isinstance(posting, Posting) or posting.kind is not IndexKind.OID:
                    continue
                identity = posting.triple.as_tuple()
                if identity in seen:
                    continue
                seen.add(identity)
                by_oid.setdefault(posting.triple.oid, []).append(posting.triple)
            bindings: list[Binding] = []
            for _oid, triples in by_oid.items():
                bindings.extend(self._evaluate_star(triples))
            if bindings:
                result_groups.append((peer_id, bindings))
        return OpResult(groups=result_groups, trace=trace, complete=complete)

    def _evaluate_star(self, triples: list[Triple]) -> list[Binding]:
        """Local BGP evaluation over one tuple's triples."""
        partial: list[Binding] = [{}]
        for pattern in self.patterns:
            matches = [b for t in triples if (b := match_pattern(pattern, t)) is not None]
            if not matches:
                return []
            merged: list[Binding] = []
            for base in partial:
                for match in matches:
                    if all(base.get(k, v) == v for k, v in match.items() if k in base):
                        combined = dict(base)
                        combined.update(match)
                        merged.append(combined)
            partial = merged
            if not partial:
                return []
        return [b for b in partial if all(satisfies(f, b) for f in self.filters)]

    def _label(self) -> str:
        star = " ".join(str(p) for p in self.patterns)
        return f"OidClusterScan ?{self.subject_variable} [{star}]"
