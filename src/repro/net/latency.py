"""Per-link latency models.

A latency model assigns every *directed* node pair a base one-way latency
(sampled once per pair, then memoized, so repeated traffic over a link is
consistent) plus optional per-message jitter.  All sampling is driven by the
network's seeded RNG, so experiments are reproducible.

``PlanetLabLatency`` is the substitute for the paper's PlanetLab deployment:
one-way latencies are lognormal with a median of ~40 ms and a heavy tail
(95th percentile ≈ 200 ms), which matches published PlanetLab all-pair ping
studies closely enough to reproduce the paper's "couple of seconds at 400
nodes" answer-time shape.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """Strategy interface for sampling link latencies, in seconds."""

    @abstractmethod
    def sample_base(self, rng: random.Random) -> float:
        """Sample the permanent base latency for a new directed link."""

    def sample_jitter(self, rng: random.Random) -> float:
        """Sample per-message jitter (added to the base). Default: none."""
        return 0.0


class ZeroLatency(LatencyModel):
    """All messages are instantaneous — useful for pure message-count tests."""

    def sample_base(self, rng: random.Random) -> float:
        return 0.0


class ConstantLatency(LatencyModel):
    """Every link has the same fixed latency."""

    def __init__(self, seconds: float = 0.05):
        if seconds < 0:
            raise ValueError("latency must be >= 0")
        self.seconds = seconds

    def sample_base(self, rng: random.Random) -> float:
        return self.seconds


class UniformLatency(LatencyModel):
    """Link latencies drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.01, high: float = 0.1):
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample_base(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class PlanetLabLatency(LatencyModel):
    """Heavy-tailed WAN latencies mimicking PlanetLab one-way delays.

    Lognormal base latency with configurable median and sigma; a small
    uniform jitter models queueing variance.  Defaults give a median one-way
    delay of 40 ms, mean ≈ 55 ms, 95th percentile ≈ 190 ms.
    """

    def __init__(self, median: float = 0.040, sigma: float = 0.95, jitter: float = 0.005):
        if median <= 0:
            raise ValueError("median latency must be > 0")
        self.median = median
        self.sigma = sigma
        self.jitter = jitter
        self._mu = math.log(median)

    def sample_base(self, rng: random.Random) -> float:
        return rng.lognormvariate(self._mu, self.sigma)

    def sample_jitter(self, rng: random.Random) -> float:
        return rng.uniform(0.0, self.jitter) if self.jitter else 0.0
