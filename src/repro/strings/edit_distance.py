"""Levenshtein edit distance, plain and banded.

``edist`` in VQL is always used as a *bounded* predicate
(``edist(?s, 'ICDE') < 3``), so the banded variant
:func:`edit_distance_within` is the workhorse: it runs in ``O(k * min(m, n))``
time instead of ``O(m * n)`` and can report early that the bound is exceeded.
"""

from __future__ import annotations


def edit_distance(a: str, b: str) -> int:
    """Return the Levenshtein distance between ``a`` and ``b``.

    Unit costs for insertion, deletion and substitution.  Runs the classic
    two-row dynamic program in ``O(len(a) * len(b))`` time and
    ``O(min(len(a), len(b)))`` space.
    """
    if a == b:
        return 0
    # Keep the inner loop over the shorter string.
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)

    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion from a
                    current[j - 1] + 1,  # insertion into a
                    previous[j - 1] + cost,  # substitution / match
                )
            )
        previous = current
    return previous[-1]


def edit_distance_within(a: str, b: str, bound: int) -> int | None:
    """Return ``edit_distance(a, b)`` if it is ``<= bound``, else ``None``.

    Uses Ukkonen's banded dynamic program: only cells within ``bound`` of the
    diagonal are computed, and the scan aborts as soon as every cell in a row
    exceeds the bound.  ``bound < 0`` always returns ``None``; ``bound == 0``
    degenerates to an equality test.
    """
    if bound < 0:
        return None
    if a == b:
        return 0
    if bound == 0:
        return None
    if len(a) < len(b):
        a, b = b, a
    m, n = len(a), len(b)
    if m - n > bound:
        return None
    if n == 0:
        return m if m <= bound else None

    big = bound + 1  # sentinel meaning "already above the bound"
    previous = [j if j <= bound else big for j in range(n + 1)]
    for i in range(1, m + 1):
        lo = max(1, i - bound)
        hi = min(n, i + bound)
        current = [big] * (n + 1)
        if i <= bound:
            current[0] = i
        row_min = current[0] if lo == 1 else big
        ca = a[i - 1]
        for j in range(lo, hi + 1):
            cost = 0 if ca == b[j - 1] else 1
            best = previous[j - 1] + cost
            if previous[j] + 1 < best:
                best = previous[j] + 1
            if current[j - 1] + 1 < best:
                best = current[j - 1] + 1
            if best > bound:
                best = big
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min >= big:
            return None
        previous = current
    result = previous[n]
    return result if result <= bound else None
