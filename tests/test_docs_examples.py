"""The documentation's code examples must actually run.

Every fenced ``python`` block in README.md and docs/*.md is executed here,
top to bottom, with one shared namespace per document (so later blocks can
build on earlier ones, exactly as a reader would run them).  A doc edit
that breaks an example — or a code change that invalidates the docs —
fails CI instead of rotting quietly.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent
DOCUMENTS = sorted(ROOT.glob("docs/*.md")) + [ROOT / "README.md"]

FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks(path: pathlib.Path) -> list[str]:
    """The fenced ``python`` blocks of one document, in order."""
    return [match.group(1) for match in FENCE.finditer(path.read_text())]


def test_documents_exist():
    names = {p.name for p in DOCUMENTS}
    assert {"architecture.md", "execution-models.md", "benchmarks.md", "README.md"} <= names


def test_documents_have_examples():
    for path in DOCUMENTS:
        assert python_blocks(path), f"{path.name} has no runnable python examples"


@pytest.mark.parametrize("path", DOCUMENTS, ids=lambda p: p.name)
def test_document_examples_run(path):
    namespace: dict = {"__name__": f"docs_example_{path.stem}"}
    for index, block in enumerate(python_blocks(path)):
        try:
            exec(compile(block, f"{path.name}[block {index}]", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{path.name} block {index} raised {type(error).__name__}: {error}\n"
                f"--- block ---\n{block}"
            )
