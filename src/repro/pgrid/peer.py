"""P-Grid peers.

A peer sits at a leaf of the virtual binary trie (paper §2): it has a *path*
(bit string), stores the data items whose keys fall under that path, and keeps

* a **routing table**: for every level ``i < len(path)``, references to peers
  whose paths start with ``path[:i] + flip(path[i])`` — i.e. peers covering
  the complementary subtree at that level, enabling prefix routing; and
* a **replica list**: peers sharing its exact path (P-Grid's structural
  replication), which carry the same data.

References may go stale when the referenced peer extends or changes its path;
they are validated at use time (:meth:`RoutingTable.valid_refs`) and pruned
lazily, mirroring P-Grid's lazy repair.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.net.node import Node
from repro.pgrid.datastore import DataStore
from repro.pgrid.keys import flip, validate_key

if TYPE_CHECKING:
    from repro.net.network import Network

#: Default maximum number of references kept per routing level.
DEFAULT_FANOUT = 4


class RoutingTable:
    """Per-level references of one peer."""

    def __init__(self, fanout: int = DEFAULT_FANOUT):
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        self.fanout = fanout
        self._levels: dict[int, list[str]] = {}

    def refs(self, level: int) -> list[str]:
        """Current references at ``level`` (copy)."""
        return list(self._levels.get(level, ()))

    def add(self, level: int, peer_id: str) -> None:
        refs = self._levels.setdefault(level, [])
        if peer_id not in refs:
            refs.append(peer_id)
            del refs[self.fanout :]

    def remove(self, level: int, peer_id: str) -> None:
        refs = self._levels.get(level)
        if refs and peer_id in refs:
            refs.remove(peer_id)

    def truncate(self, depth: int) -> None:
        """Drop all levels ``>= depth`` (used when a peer shortens/changes path)."""
        for level in [lv for lv in self._levels if lv >= depth]:
            del self._levels[level]

    def levels(self) -> list[int]:
        return sorted(self._levels)

    def all_refs(self) -> set[str]:
        return {r for refs in self._levels.values() for r in refs}


class PGridPeer(Node):
    """One P-Grid peer: path + routing table + replica list + datastore."""

    def __init__(
        self,
        node_id: str,
        network: "Network",
        path: str = "",
        fanout: int = DEFAULT_FANOUT,
    ):
        super().__init__(node_id, network)
        from repro.pgrid.routing import RouteCache  # deferred: routing imports peer

        self.path = validate_key(path)
        self.routing = RoutingTable(fanout=fanout)
        self.replicas: list[str] = []  # peer ids sharing self.path (excluding self)
        self.store = DataStore()
        self.route_cache = RouteCache()

    # -- trie position -------------------------------------------------------

    def required_prefix(self, level: int) -> str:
        """Path prefix a level-``level`` reference must have."""
        if level >= len(self.path):
            raise ValueError(f"peer {self.node_id} has no level {level}")
        return self.path[:level] + flip(self.path[level])

    def set_path(self, path: str) -> None:
        """Change the peer's trie position, keeping still-consistent refs.

        Levels at or beyond the first bit where the old and new path differ
        are dropped; shallower levels keep the same required prefix and stay
        valid.
        """
        path = validate_key(path)
        keep = 0
        for old_bit, new_bit in zip(self.path, path):
            if old_bit != new_bit:
                break
            keep += 1
        self.routing.truncate(keep)
        self.path = path

    # -- references ----------------------------------------------------------

    def valid_refs(self, level: int) -> list[str]:
        """References at ``level`` that still match the required prefix.

        Stale references (peer moved, or disappeared from the network) are
        pruned as a side effect — P-Grid's lazy repair.  Offline peers are
        *not* pruned (they may come back) but are filtered from the result.
        """
        prefix = self.required_prefix(level)
        usable: list[str] = []
        for ref_id in self.routing.refs(level):
            ref = self.network.nodes.get(ref_id)
            if ref is None or not isinstance(ref, PGridPeer) or not ref.path.startswith(prefix):
                self.routing.remove(level, ref_id)
                continue
            if ref.online:
                usable.append(ref_id)
        return usable

    def add_replica(self, peer_id: str) -> None:
        if peer_id != self.node_id and peer_id not in self.replicas:
            self.replicas.append(peer_id)

    def remove_replica(self, peer_id: str) -> None:
        if peer_id in self.replicas:
            self.replicas.remove(peer_id)

    def online_replicas(self) -> list[str]:
        """Replica ids that are currently online and still share our path."""
        result = []
        for rid in list(self.replicas):
            peer = self.network.nodes.get(rid)
            if peer is None or not isinstance(peer, PGridPeer) or peer.path != self.path:
                self.replicas.remove(rid)
                continue
            if peer.online:
                result.append(rid)
        return result

    # -- storage -------------------------------------------------------------

    @property
    def load(self) -> int:
        """Number of locally stored entries (the load-balancing currency)."""
        return len(self.store)

    def adopt_refs(self, other: "PGridPeer", levels: Iterable[int] | None = None) -> None:
        """Copy routing references from ``other`` for the given levels.

        Only levels where both peers share the same required prefix make
        sense; callers pass levels accordingly (e.g. replicas copy all).
        """
        wanted = set(levels) if levels is not None else None
        for level in other.routing.levels():
            if wanted is not None and level not in wanted:
                continue
            for ref in other.routing.refs(level):
                if ref != self.node_id:
                    self.routing.add(level, ref)
