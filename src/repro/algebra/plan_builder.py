"""Translate a VQL AST into a logical plan.

The builder produces a canonical plan shape:

    Projection
      (Limit)
      (OrderBy | Skyline | TopN)
      Union of groups            -- only for UNION queries
        Selections (FILTERs)
          left-deep Join tree over PatternScans

Pattern join order uses a *connectivity + boundness* heuristic (most literal
positions first, never a cartesian product unless the group is disconnected);
cost-based reordering with statistics happens later in the optimizer.
"""

from __future__ import annotations

from repro.errors import PlanningError
from repro.algebra.operators import (
    Join,
    LeftJoin,
    Limit,
    LogicalPlan,
    OrderBy,
    PatternScan,
    Projection,
    Selection,
    Skyline,
    TopN,
    Union,
)
from repro.vql.ast import GroupPattern, Literal, Query, TriplePattern


def build_plan(query: Query) -> LogicalPlan:
    """Build the canonical logical plan for a parsed query."""
    group_plans = [build_group(group) for group in query.groups]
    plan = group_plans[0] if len(group_plans) == 1 else Union(tuple(group_plans))

    if query.skyline:
        plan = Skyline(plan, query.skyline)
    if query.order_by and query.limit is not None:
        plan = TopN(plan, query.order_by, n=query.limit, offset=query.offset)
    else:
        if query.order_by:
            plan = OrderBy(plan, query.order_by)
        if query.limit is not None or query.offset:
            plan = Limit(plan, query.limit, offset=query.offset)

    _check_select_variables(query, plan)
    return Projection(plan, query.select, distinct=query.distinct)


def build_group(group: GroupPattern) -> LogicalPlan:
    """Join tree + filters + optionals for one brace group."""
    ordered = order_patterns(list(group.patterns))
    plan: LogicalPlan = PatternScan(ordered[0])
    for pattern in ordered[1:]:
        plan = Join(plan, PatternScan(pattern))
    for expr in group.filters:
        plan = Selection(plan, expr)
    for optional in group.optionals:
        plan = LeftJoin(plan, build_group(optional))
    return plan


def pattern_selectivity_rank(pattern: TriplePattern) -> tuple[int, int]:
    """Smaller = more selective = scheduled earlier.

    Primary rank by access path quality: bound (predicate, object) pairs hit
    a single A#v key; a bound subject hits one OID key; a bound object alone
    uses the v index; bound predicate alone scans a whole attribute; nothing
    bound floods.  Secondary rank: fewer variables first.
    """
    subject_bound = isinstance(pattern.subject, Literal)
    predicate_bound = isinstance(pattern.predicate, Literal)
    object_bound = isinstance(pattern.object, Literal)
    if predicate_bound and object_bound:
        rank = 0
    elif subject_bound:
        rank = 1
    elif object_bound:
        rank = 2
    elif predicate_bound:
        rank = 3
    else:
        rank = 4
    return (rank, len(pattern.variables()))


def order_patterns(patterns: list[TriplePattern]) -> list[TriplePattern]:
    """Greedy join ordering: start selective, stay connected."""
    if not patterns:
        raise PlanningError("cannot plan a group without patterns")
    remaining = sorted(patterns, key=pattern_selectivity_rank)
    ordered = [remaining.pop(0)]
    bound_variables = set(ordered[0].variables())
    while remaining:
        connected = [p for p in remaining if p.variables() & bound_variables]
        pool = connected or remaining  # fall back to cartesian if disconnected
        best = min(pool, key=pattern_selectivity_rank)
        remaining.remove(best)
        ordered.append(best)
        bound_variables |= best.variables()
    return ordered


def _check_select_variables(query: Query, plan: LogicalPlan) -> None:
    available = plan.output_variables()
    for variable in query.select:
        if variable.name not in available:
            raise PlanningError(f"SELECT variable ?{variable.name} is not bound by any pattern")
    for item in query.order_by:
        if item.variable.name not in available:
            raise PlanningError(
                f"ORDER BY variable ?{item.variable.name} is not bound by any pattern"
            )
    for item in query.skyline:
        if item.variable.name not in available:
            raise PlanningError(
                f"SKYLINE OF variable ?{item.variable.name} is not bound by any pattern"
            )
