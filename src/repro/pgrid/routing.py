"""Greedy prefix routing (paper §2: "prefix-based query routing").

At each step the current peer compares the target key with its own path; the
first differing bit determines the routing level, and the message is forwarded
to a reference covering the complementary subtree at that level.  Every hop
extends the matched prefix by at least one bit, giving the logarithmic hop
bound the paper's cost model builds on (O(log |Π|) w.h.p. for balanced tries).

Fault tolerance: offline/stale references are skipped; when *all* references
at the needed level are unusable the router detours through an online replica
of the current peer (replicas sample their references independently), and
fails with :class:`RoutingError` only when no progress is possible at all.
"""

from __future__ import annotations

import random

from repro.errors import RoutingError
from repro.net.trace import Trace
from repro.pgrid.keys import common_prefix_length, responsible
from repro.pgrid.peer import PGridPeer

#: Hard bound on route length; ordinary routes are O(log N) so hitting this
#: indicates a broken overlay rather than a long route.
MAX_HOPS = 256


def is_destination(peer: PGridPeer, key: str) -> bool:
    """True when routing may stop at ``peer`` for ``key``.

    Either the peer is responsible for the key (path is a prefix of the
    key), or the key itself is a prefix of the peer's path — the latter
    happens for short prefix-query keys, where any peer inside the key's
    subtree is an acceptable entry point.
    """
    return responsible(peer.path, key) or peer.path.startswith(key)


def route(
    start: PGridPeer,
    key: str,
    kind: str = "route",
    size: int = 1,
    rng: random.Random | None = None,
) -> tuple[PGridPeer, Trace]:
    """Route a message from ``start`` towards ``key``.

    Returns the destination peer and the accumulated causal trace.  Raises
    :class:`RoutingError` (with the partial trace attached as ``.trace``)
    when the route dead-ends, e.g. because every peer covering the key's
    region is offline.
    """
    rng = rng or start.network.rng
    current = start
    trace = Trace.ZERO
    visited_detours: set[str] = set()

    for _hop in range(MAX_HOPS):
        if is_destination(current, key):
            return current, trace

        level = common_prefix_length(current.path, key)
        candidates = current.valid_refs(level)
        if candidates:
            next_id = rng.choice(candidates)
            trace = trace.then(current.network.send(current.node_id, next_id, kind, size))
            current = current.network.nodes[next_id]
            continue

        # Dead end at this level: detour through a replica whose independent
        # reference sample may still cover the needed subtree.
        visited_detours.add(current.node_id)
        detours = [r for r in current.online_replicas() if r not in visited_detours]
        if not detours:
            error = RoutingError(
                f"no route from {current.node_id!r} (path {current.path!r}) "
                f"towards key {key[:24]!r}... at level {level}"
            )
            error.trace = trace
            raise error
        next_id = rng.choice(detours)
        trace = trace.then(current.network.send(current.node_id, next_id, kind, size))
        current = current.network.nodes[next_id]

    error = RoutingError(f"route exceeded {MAX_HOPS} hops towards {key[:24]!r}")
    error.trace = trace
    raise error
