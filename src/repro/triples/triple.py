"""The triple data model (paper §2).

UniStore follows the universal relation model with vertical (RDF-style)
storage: a relational tuple ``(OID, v1, ..., vn)`` of schema
``R(A1, ..., An)`` becomes ``n`` triples ``(OID, Ai, vi)``.  Attribute names
may carry a namespace prefix (``ns:attr``) to distinguish relations; the OID
is system generated and only groups the triples of one logical tuple.

Values are strings or numbers.  Characters with code points < 3 are reserved
by the key encoding (q-gram pad ``\\x01``, attribute/value separator
``\\x02``) and rejected here — this is what makes inclusive range bounds
exact (see :func:`repro.pgrid.hashing.after_key`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError

#: Value types a triple may carry.
Value = str | int | float

#: Lowest character code allowed in OIDs, attribute names and string values.
MIN_CHAR = "\x03"


def _check_text(text: str, what: str) -> str:
    if any(ch < MIN_CHAR for ch in text):
        raise StorageError(f"{what} contains reserved control characters: {text!r}")
    return text


@dataclass(frozen=True, order=True)
class Triple:
    """One ``(OID, attribute, value)`` fact."""

    oid: str
    attribute: str
    value: Value

    def __post_init__(self) -> None:
        if not self.oid:
            raise StorageError("triple OID must be non-empty")
        if not self.attribute:
            raise StorageError("triple attribute must be non-empty")
        _check_text(self.oid, "OID")
        _check_text(self.attribute, "attribute")
        if isinstance(self.value, str):
            _check_text(self.value, "value")
        elif isinstance(self.value, bool) or not isinstance(self.value, (int, float)):
            raise StorageError(
                f"unsupported value type {type(self.value).__name__!r} "
                "(strings and numbers only)"
            )

    @property
    def namespace(self) -> str | None:
        """Namespace prefix of the attribute (``'ns'`` in ``'ns:attr'``), if any."""
        head, sep, _tail = self.attribute.partition(":")
        return head if sep else None

    @property
    def local_name(self) -> str:
        """Attribute name without its namespace prefix."""
        _head, sep, tail = self.attribute.partition(":")
        return tail if sep else self.attribute

    def identity(self) -> str:
        """Stable identity string for deduplication in the DHT.

        Includes the value: attributes may be multi-valued (Fig. 3's
        ``has_published`` edges), so ``(oid, attribute)`` alone is not a key.
        Value updates are realized as delete + insert by the triple store
        (:meth:`DistributedTripleStore.update_value`), not by identity
        collision.
        """
        return f"{self.oid}\x03{self.attribute}\x03{self.value!r}"

    def as_tuple(self) -> tuple[str, str, Value]:
        return (self.oid, self.attribute, self.value)


def triples_from_tuple(oid: str, values: dict[str, Value]) -> list[Triple]:
    """Vertical decomposition: one triple per non-null attribute.

    ``None`` values are skipped entirely — the paper notes that vertical
    storage "supersedes the explicit representation of null values".
    """
    return [
        Triple(oid=oid, attribute=attribute, value=value)
        for attribute, value in values.items()
        if value is not None
    ]


def tuple_from_triples(triples: list[Triple]) -> tuple[str, dict[str, Value]]:
    """Recompose a logical tuple from the triples sharing one OID."""
    if not triples:
        raise StorageError("cannot recompose a tuple from zero triples")
    oids = {t.oid for t in triples}
    if len(oids) != 1:
        raise StorageError(f"triples belong to {len(oids)} different OIDs")
    return triples[0].oid, {t.attribute: t.value for t in triples}
