"""The three default indexes (paper §2, Fig. 2).

    "By default, we index each triple on the OID, Ai#vi (the concatenation
     of Ai and vi), and vi."

Each index gets its own 2-bit tag prefix so the three posting families live
in disjoint subtrees of the P-Grid key space:

* ``OID`` (tag 00) — reassemble a logical tuple from its unique key;
* ``A#v`` (tag 01) — exact and *range* access on a known attribute
  (``Ai >= vi`` maps to a contiguous key range because the value encoding is
  order preserving);
* ``v``  (tag 10) — access by value when the attribute is unknown
  ("queries on an arbitrary attribute"), including substring/prefix search.

The q-gram similarity index (tag 11) is defined in
:mod:`repro.physical.qgram` but shares this tag registry.
"""

from __future__ import annotations

from enum import Enum

from repro.pgrid.hashing import (
    KEY_SEPARATOR,
    after_key,
    encode_string,
    encode_value,
)
from repro.pgrid.keys import KeyRange
from repro.triples.triple import Value


class IndexKind(str, Enum):
    """Which of the default indexes a posting belongs to."""

    OID = "oid"
    AV = "av"
    V = "v"
    QGRAM = "qgram"


#: 2-bit key-space tags per index family.
INDEX_TAG = {
    IndexKind.OID: "00",
    IndexKind.AV: "01",
    IndexKind.V: "10",
    IndexKind.QGRAM: "11",
}

#: Bit encoding of the attribute/value separator character.
_SEP_BITS = encode_string(KEY_SEPARATOR)


def oid_key(oid: str) -> str:
    """DHT key of a triple under the OID index."""
    return INDEX_TAG[IndexKind.OID] + encode_string(oid)


def av_key(attribute: str, value: Value) -> str:
    """DHT key of a triple under the A#v index."""
    return INDEX_TAG[IndexKind.AV] + encode_string(attribute) + _SEP_BITS + encode_value(value)


def v_key(value: Value) -> str:
    """DHT key of a triple under the v index."""
    return INDEX_TAG[IndexKind.V] + encode_value(value)


def qgram_key(gram: str) -> str:
    """DHT key of a q-gram posting."""
    return INDEX_TAG[IndexKind.QGRAM] + encode_string(gram)


def av_attribute_range(attribute: str) -> KeyRange:
    """Key range covering *all* postings of one attribute in the A#v index."""
    prefix = INDEX_TAG[IndexKind.AV] + encode_string(attribute) + _SEP_BITS
    return KeyRange.subtree(prefix)


def av_value_range(
    attribute: str,
    low: Value | None = None,
    high: Value | None = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> KeyRange:
    """Key range for ``low <op> attribute <op> high`` in the A#v index.

    Open bounds fall back to the attribute subtree's edges.  Exclusive /
    inclusive bounds are realized with :func:`after_key`, which is exact
    because values cannot contain the reserved low code points.
    """
    subtree = av_attribute_range(attribute)
    prefix = subtree.lo
    if low is None:
        lo_key = subtree.lo
    else:
        lo_key = prefix + encode_value(low)
        if not low_inclusive:
            lo_key = after_key(lo_key)
    if high is None:
        hi_key = subtree.hi
    else:
        hi_key = prefix + encode_value(high)
        hi_key = after_key(hi_key) if high_inclusive else hi_key
    return KeyRange(lo_key, hi_key)


def av_string_prefix_range(attribute: str, prefix_text: str) -> KeyRange:
    """Key range for string values of ``attribute`` starting with ``prefix_text``."""
    prefix = (
        INDEX_TAG[IndexKind.AV]
        + encode_string(attribute)
        + _SEP_BITS
        + "1"  # string type tag inside encode_value
        + encode_string(prefix_text)
    )
    return KeyRange.subtree(prefix)


def v_value_range(
    low: Value | None = None,
    high: Value | None = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> KeyRange:
    """Key range over the v index for attribute-agnostic value ranges."""
    tag = INDEX_TAG[IndexKind.V]
    subtree = KeyRange.subtree(tag)
    lo_key = subtree.lo if low is None else tag + encode_value(low)
    if low is not None and not low_inclusive:
        lo_key = after_key(lo_key)
    if high is None:
        hi_key = subtree.hi
    else:
        hi_key = tag + encode_value(high)
        hi_key = after_key(hi_key) if high_inclusive else hi_key
    return KeyRange(lo_key, hi_key)


def v_string_prefix_range(prefix_text: str) -> KeyRange:
    """Key range over the v index for string values starting with ``prefix_text``."""
    return KeyRange.subtree(INDEX_TAG[IndexKind.V] + "1" + encode_string(prefix_text))
