"""Structural replication helpers.

In P-Grid, replication is *structural*: several peers share the same trie
path and therefore the same data ("replica groups").  The oracle builder
creates groups directly; this module provides the runtime-side operations —
inspecting groups, thickening them to a target factor, and measuring how much
redundancy survives failures (the knob experiment E7 sweeps).
"""

from __future__ import annotations

from repro.pgrid.load_balancing import migrate_peer
from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer


def replica_groups(pnet: PGridNetwork) -> dict[str, list[PGridPeer]]:
    """Replica groups keyed by path (alias of the facade's global view)."""
    return pnet.leaf_groups()


def online_group(peer: PGridPeer) -> list[PGridPeer]:
    """``peer`` plus its online replicas, sorted by node id.

    Every member holds the group's data and can serve its reads — the target
    set for replica-based query-load diffusion
    (:mod:`repro.load.diffusion`).  Uses only the peer's own replica list
    (validated at use), not the global view.
    """
    members = [peer]
    for replica_id in peer.online_replicas():
        replica = peer.network.nodes.get(replica_id)
        if isinstance(replica, PGridPeer):
            members.append(replica)
    members.sort(key=lambda p: p.node_id)
    return members


def replication_factor(pnet: PGridNetwork) -> float:
    """Mean replica-group size."""
    groups = pnet.leaf_groups()
    if not groups:
        return 0.0
    return len(pnet.peers) / len(groups)


def min_replication(pnet: PGridNetwork) -> int:
    """Size of the thinnest replica group — the overlay's weakest point."""
    groups = pnet.leaf_groups()
    return min((len(peers) for peers in groups.values()), default=0)


def ensure_replication(pnet: PGridNetwork, factor: int) -> int:
    """Thicken every replica group to at least ``factor`` peers.

    Donors are drawn from the largest groups (which can spare members).
    Returns the number of migrations performed; stops early when no donor
    group has more than ``factor`` members left.
    """
    if factor < 1:
        raise ValueError("replication factor must be >= 1")
    migrations = 0
    while True:
        groups = pnet.leaf_groups()
        thin = sorted(
            (path for path, peers in groups.items() if len(peers) < factor),
            key=lambda path: len(groups[path]),
        )
        if not thin:
            return migrations
        donors = sorted(
            (path for path, peers in groups.items() if len(peers) > factor),
            key=lambda path: -len(groups[path]),
        )
        if not donors:
            return migrations
        donor_peer = groups[donors[0]][-1]
        migrate_peer(pnet, donor_peer, thin[0])
        migrations += 1


def online_coverage(pnet: PGridNetwork) -> float:
    """Fraction of the key space currently served by at least one online peer.

    Weighted by interval size (``2^-len(path)``): a dead group covering a
    shallow path loses more of the space than a deep one.
    """
    groups = pnet.leaf_groups()
    covered = 0.0
    for path, peers in groups.items():
        if any(p.online for p in peers):
            covered += 2.0 ** -len(path)
    return covered
