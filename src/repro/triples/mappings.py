"""Schema mappings as queryable metadata (paper §2).

    "Additionally, we allow to store triples representing a simple kind of
     schema mappings in order to overcome schema heterogeneities.  This
     additional metadata can be queried explicitly by the user – or even
     automatically by the system."

A correspondence ``source ≡ target`` is stored as an ordinary logical tuple
under the reserved ``map:`` namespace::

    (mapping-oid, 'map:src',  'dblp:confname')
    (mapping-oid, 'map:dst',  'ilm:conference')
    (mapping-oid, 'map:conf', 0.9)

so it travels through the very same indexes and operators as instance data —
"operators can be applied to all levels of data (instance, schema and
metadata)".  :class:`MappingCatalog` is the convenience wrapper used by the
query planner for automatic query expansion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.trace import Trace
from repro.triples.store import DistributedTripleStore
from repro.triples.triple import Triple

#: Attribute names of the mapping meta-schema.
MAP_SRC = "map:src"
MAP_DST = "map:dst"
MAP_CONF = "map:conf"


@dataclass(frozen=True)
class SchemaMapping:
    """One attribute correspondence with a confidence score."""

    source: str
    target: str
    confidence: float = 1.0

    def oid(self) -> str:
        return f"map~{self.source}~{self.target}"


class MappingCatalog:
    """Publish and resolve schema mappings through the triple store."""

    def __init__(self, store: DistributedTripleStore):
        self.store = store

    def add(self, mapping: SchemaMapping) -> Trace:
        """Publish a correspondence (both directions are derivable)."""
        oid = mapping.oid()
        triples = [
            Triple(oid, MAP_SRC, mapping.source),
            Triple(oid, MAP_DST, mapping.target),
            Triple(oid, MAP_CONF, mapping.confidence),
        ]
        return Trace.parallel([self.store.insert(t) for t in triples])

    def bulk_add(self, mappings: list[SchemaMapping]) -> None:
        """Oracle placement of many mappings (benchmark/test setup)."""
        triples = []
        for mapping in mappings:
            oid = mapping.oid()
            triples.extend(
                [
                    Triple(oid, MAP_SRC, mapping.source),
                    Triple(oid, MAP_DST, mapping.target),
                    Triple(oid, MAP_CONF, mapping.confidence),
                ]
            )
        self.store.bulk_insert(triples)

    def equivalents(
        self, attribute: str, min_confidence: float = 0.0
    ) -> tuple[list[SchemaMapping], Trace]:
        """All correspondences touching ``attribute`` (either direction).

        Resolved with two A#v lookups (``map:src = attribute`` and
        ``map:dst = attribute``) followed by OID lookups to fetch each
        mapping's remaining triples — i.e. metadata is queried with exactly
        the instance-data machinery.
        """
        src_triples, src_trace = self.store.by_attribute_value(MAP_SRC, attribute)
        dst_triples, dst_trace = self.store.by_attribute_value(MAP_DST, attribute)
        trace = Trace.parallel([src_trace, dst_trace])

        mappings: list[SchemaMapping] = []
        branches: list[Trace] = []
        for hit in src_triples + dst_triples:
            triples, oid_trace = self.store.by_oid(hit.oid)
            branches.append(oid_trace)
            fields = {t.attribute: t.value for t in triples}
            if MAP_SRC not in fields or MAP_DST not in fields:
                continue
            mapping = SchemaMapping(
                source=str(fields[MAP_SRC]),
                target=str(fields[MAP_DST]),
                confidence=float(fields.get(MAP_CONF, 1.0)),
            )
            if mapping.confidence >= min_confidence and mapping not in mappings:
                mappings.append(mapping)
        if branches:
            trace = trace.then(Trace.parallel(branches))
        return mappings, trace

    def expansions(self, attribute: str, min_confidence: float = 0.0) -> tuple[list[str], Trace]:
        """Attribute names equivalent to ``attribute`` (excluding itself)."""
        mappings, trace = self.equivalents(attribute, min_confidence)
        names: list[str] = []
        for mapping in mappings:
            other = mapping.target if mapping.source == attribute else mapping.source
            if other != attribute and other not in names:
                names.append(other)
        return names, trace
