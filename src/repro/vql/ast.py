"""Abstract syntax tree of VQL queries.

The AST mirrors the query surface the paper shows: SELECT over variables,
WHERE with triple patterns and FILTERs (optionally several groups combined
with UNION), ORDER BY either as a sort list or as ``SKYLINE OF``, and LIMIT /
OFFSET.  Filter expressions include the similarity predicates (``edist``,
``contains``, ``prefix``) that make VQL more than plain SPARQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A query variable, spelled ``?name``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Literal:
    """A constant (string or number)."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "\\'")
            return f"'{escaped}'"
        return str(self.value)


Term = Union[Var, Literal]


# ---------------------------------------------------------------------------
# Filter expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``left <op> right`` with op in =, !=, <, <=, >, >=."""

    op: str
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BoolOp:
    """N-ary AND / OR."""

    op: str  # "and" | "or"
    operands: tuple["Expression", ...]

    def __str__(self) -> str:
        joiner = f" {self.op.upper()} "
        return "(" + joiner.join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Not:
    operand: "Expression"

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class FunctionCall:
    """Built-in function application, e.g. ``edist(?sr, 'ICDE')``."""

    name: str
    args: tuple["Expression", ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


Expression = Union[Var, Literal, Comparison, BoolOp, Not, FunctionCall]


def expression_variables(expr: Expression) -> set[str]:
    """All variable names referenced by an expression."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, Literal):
        return set()
    if isinstance(expr, Comparison):
        return expression_variables(expr.left) | expression_variables(expr.right)
    if isinstance(expr, BoolOp):
        result: set[str] = set()
        for operand in expr.operands:
            result |= expression_variables(operand)
        return result
    if isinstance(expr, Not):
        return expression_variables(expr.operand)
    if isinstance(expr, FunctionCall):
        result = set()
        for arg in expr.args:
            result |= expression_variables(arg)
        return result
    raise TypeError(f"not an expression: {expr!r}")


# ---------------------------------------------------------------------------
# Patterns and query structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TriplePattern:
    """``(subject, predicate, object)`` with variables and/or literals."""

    subject: Term
    predicate: Term
    object: Term

    def __str__(self) -> str:
        return f"({self.subject},{self.predicate},{self.object})"

    def variables(self) -> set[str]:
        return {
            term.name
            for term in (self.subject, self.predicate, self.object)
            if isinstance(term, Var)
        }


@dataclass(frozen=True)
class GroupPattern:
    """One brace-enclosed block: triple patterns plus FILTER expressions."""

    patterns: tuple[TriplePattern, ...]
    filters: tuple[Expression, ...] = ()
    optionals: tuple["GroupPattern", ...] = ()

    def variables(self) -> set[str]:
        result: set[str] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        return result


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    variable: Var
    descending: bool = False

    def __str__(self) -> str:
        return f"{self.variable} {'DESC' if self.descending else 'ASC'}"


@dataclass(frozen=True)
class SkylineItem:
    """One SKYLINE OF dimension with its optimisation direction."""

    variable: Var
    maximize: bool = False

    def __str__(self) -> str:
        return f"{self.variable} {'MAX' if self.maximize else 'MIN'}"


@dataclass(frozen=True)
class Query:
    """A full VQL query."""

    select: tuple[Var, ...]  # empty tuple means SELECT *
    groups: tuple[GroupPattern, ...]  # combined with UNION
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    skyline: tuple[SkylineItem, ...] = ()
    limit: int | None = None
    offset: int = 0

    def variables(self) -> set[str]:
        result: set[str] = set()
        for group in self.groups:
            result |= group.variables()
        return result

    def select_star(self) -> bool:
        return not self.select
