"""Shared infrastructure for the experiment benchmarks (E1-E10).

Each ``bench_eN_*.py`` module reproduces one claim/figure of the paper (see
DESIGN.md §5 and EXPERIMENTS.md).  Benchmarks record their paper-style result
tables through :func:`emit`; the tables are appended to
``benchmarks/results.txt`` and replayed after the run by the
``pytest_terminal_summary`` hook (pytest's fd-level capture would otherwise
swallow mid-run prints), so ``pytest benchmarks/ --benchmark-only`` shows
every experiment table at the end of its output.
"""

from __future__ import annotations

import pathlib

from repro.bench import ResultTable

RESULTS_FILE = pathlib.Path(__file__).parent / "results.txt"


def emit(table: ResultTable) -> None:
    """Record one experiment table (shown in the terminal summary)."""
    text = table.render()
    print("\n" + text)  # visible with -s / on failure
    with RESULTS_FILE.open("a") as fh:
        fh.write(text + "\n\n")


def pytest_sessionstart(session):
    """Start a fresh results log per run."""
    if RESULTS_FILE.exists():
        RESULTS_FILE.unlink()


def pytest_terminal_summary(terminalreporter):
    """Replay all experiment tables after capture is released."""
    if RESULTS_FILE.exists():
        terminalreporter.write_sep("=", "experiment result tables (also in benchmarks/results.txt)")
        terminalreporter.write(RESULTS_FILE.read_text())
