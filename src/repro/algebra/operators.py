"""The logical algebra (paper §2).

    "The algebra supports traditional 'relational' operators (π, σ, ⋈, ...)
     as well as special operators needed to query the distributed triple
     storage. ... we extend the set of operators by special operators like
     similarity operators (e.g., similarity join) and ranking operators
     (e.g., top-N, skyline)."

Logical plans are immutable trees of the dataclasses below.  They say *what*
to compute; the physical layer (:mod:`repro.physical`) supplies several
executable strategies per logical operator and the optimizer picks among
them.  Operators work on *bindings* (variable → value mappings), the
universal-relation analogue of tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.vql.ast import (
    Expression,
    OrderItem,
    SkylineItem,
    TriplePattern,
    Var,
)


class LogicalPlan:
    """Base class for logical operators."""

    def children(self) -> tuple["LogicalPlan", ...]:
        return ()

    def output_variables(self) -> set[str]:
        raise NotImplementedError

    def explain(self, indent: int = 0) -> str:
        """Multi-line plan rendering, one operator per line."""
        lines = [("  " * indent) + self._label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__

    def walk(self) -> Iterator["LogicalPlan"]:
        """Pre-order traversal of the plan tree."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class PatternScan(LogicalPlan):
    """Produce bindings from triples matching one pattern.

    ``filters`` are residual predicates over this pattern's variables that
    rewrites pushed down; physical scans evaluate them for free where the
    data lives.
    """

    pattern: TriplePattern
    filters: tuple[Expression, ...] = ()

    def output_variables(self) -> set[str]:
        return self.pattern.variables()

    def _label(self) -> str:
        extra = f" | {' AND '.join(str(f) for f in self.filters)}" if self.filters else ""
        return f"PatternScan {self.pattern}{extra}"


@dataclass(frozen=True)
class Selection(LogicalPlan):
    """σ — keep bindings satisfying the predicate."""

    child: LogicalPlan
    predicate: Expression

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def output_variables(self) -> set[str]:
        return self.child.output_variables()

    def _label(self) -> str:
        return f"Selection σ[{self.predicate}]"


@dataclass(frozen=True)
class Projection(LogicalPlan):
    """π — restrict bindings to the given variables (empty = keep all)."""

    child: LogicalPlan
    variables: tuple[Var, ...]
    distinct: bool = False

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def output_variables(self) -> set[str]:
        if not self.variables:
            return self.child.output_variables()
        return {v.name for v in self.variables}

    def _label(self) -> str:
        names = ", ".join(str(v) for v in self.variables) if self.variables else "*"
        return f"Projection π[{names}]{' DISTINCT' if self.distinct else ''}"


@dataclass(frozen=True)
class Join(LogicalPlan):
    """⋈ — natural join on the shared variables of both inputs."""

    left: LogicalPlan
    right: LogicalPlan

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def join_variables(self) -> set[str]:
        return self.left.output_variables() & self.right.output_variables()

    def output_variables(self) -> set[str]:
        return self.left.output_variables() | self.right.output_variables()

    def _label(self) -> str:
        shared = ", ".join(sorted(self.join_variables())) or "⨯ (cartesian)"
        return f"Join ⋈[{shared}]"


@dataclass(frozen=True)
class LeftJoin(LogicalPlan):
    """Left outer join — OPTIONAL groups; unmatched left rows survive."""

    left: LogicalPlan
    right: LogicalPlan

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def join_variables(self) -> set[str]:
        return self.left.output_variables() & self.right.output_variables()

    def output_variables(self) -> set[str]:
        return self.left.output_variables() | self.right.output_variables()

    def _label(self) -> str:
        return f"LeftJoin ⟕[{', '.join(sorted(self.join_variables()))}]"


@dataclass(frozen=True)
class SimilarityJoin(LogicalPlan):
    """Similarity join: match bindings whose string values are within an
    edit-distance bound (paper: "similarity operators (e.g., similarity join)")."""

    left: LogicalPlan
    right: LogicalPlan
    left_variable: Var
    right_variable: Var
    max_distance: int

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def output_variables(self) -> set[str]:
        return self.left.output_variables() | self.right.output_variables()

    def _label(self) -> str:
        return (
            f"SimilarityJoin ⋈~[edist({self.left_variable}, {self.right_variable})"
            f" <= {self.max_distance}]"
        )


@dataclass(frozen=True)
class Union(LogicalPlan):
    """∪ — bag union of same-shaped inputs (DISTINCT handled by projection)."""

    inputs: tuple[LogicalPlan, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return self.inputs

    def output_variables(self) -> set[str]:
        result: set[str] = set()
        for child in self.inputs:
            result |= child.output_variables()
        return result

    def _label(self) -> str:
        return f"Union ∪ ({len(self.inputs)} inputs)"


@dataclass(frozen=True)
class Intersection(LogicalPlan):
    """∩ — bindings present in every input (compared on shared variables)."""

    inputs: tuple[LogicalPlan, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return self.inputs

    def output_variables(self) -> set[str]:
        result: set[str] | None = None
        for child in self.inputs:
            variables = child.output_variables()
            result = variables if result is None else (result & variables)
        return result or set()

    def _label(self) -> str:
        return f"Intersection ∩ ({len(self.inputs)} inputs)"


@dataclass(frozen=True)
class Difference(LogicalPlan):
    """∖ — bindings of ``left`` that do not appear in ``right``."""

    left: LogicalPlan
    right: LogicalPlan

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def output_variables(self) -> set[str]:
        return self.left.output_variables()

    def _label(self) -> str:
        return "Difference ∖"


@dataclass(frozen=True)
class OrderBy(LogicalPlan):
    """Sort bindings by the given keys."""

    child: LogicalPlan
    items: tuple[OrderItem, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def output_variables(self) -> set[str]:
        return self.child.output_variables()

    def _label(self) -> str:
        return f"OrderBy [{', '.join(str(i) for i in self.items)}]"


@dataclass(frozen=True)
class Limit(LogicalPlan):
    """Keep ``count`` bindings after skipping ``offset``."""

    child: LogicalPlan
    count: int | None
    offset: int = 0

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def output_variables(self) -> set[str]:
        return self.child.output_variables()

    def _label(self) -> str:
        return f"Limit [{self.count}{f' OFFSET {self.offset}' if self.offset else ''}]"


@dataclass(frozen=True)
class TopN(LogicalPlan):
    """Ranking operator: the ``n`` best bindings under the sort keys.

    Logically OrderBy+Limit, but kept as its own operator because the
    distributed implementation differs fundamentally (per-peer heaps,
    merge at the coordinator)."""

    child: LogicalPlan
    items: tuple[OrderItem, ...]
    n: int
    offset: int = 0

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def output_variables(self) -> set[str]:
        return self.child.output_variables()

    def _label(self) -> str:
        return f"TopN [{', '.join(str(i) for i in self.items)}; n={self.n}]"


@dataclass(frozen=True)
class Skyline(LogicalPlan):
    """Ranking operator: Pareto-optimal bindings under the dimensions.

    A binding dominates another when it is at least as good in every
    dimension and strictly better in one (MIN = smaller is better,
    MAX = larger is better).  The skyline keeps the non-dominated set."""

    child: LogicalPlan
    items: tuple[SkylineItem, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def output_variables(self) -> set[str]:
        return self.child.output_variables()

    def _label(self) -> str:
        return f"Skyline [{', '.join(str(i) for i in self.items)}]"
