"""Load shedding and piggybacked queue-depth hints.

PR 4 made saturated peers *slow*; this module lets them *push back*.  Two
cooperating mechanisms close the load-control loop the paper's
load-balancing sections argue for:

* **Admission control** — every peer may carry an :class:`AdmissionPolicy`
  (:class:`ThresholdAdmission`, :class:`ProbabilisticAdmission`,
  :class:`DeadlineAdmission`).  The policy is consulted on every admission
  attempt (:meth:`~repro.load.model.NodeQueue.offer`, the gate in front of
  :meth:`~repro.load.model.NodeQueue.admit`): a peer past its queue-depth or
  sojourn budget answers ``reject`` (the scheduler NACKs the sender, which
  may retry another replica — bounded) or ``defer`` (the job is re-offered
  after a penalty; after ``max_defers`` it is force-admitted so no work is
  ever silently dropped).  Rejects and deferrals are counted in
  :class:`~repro.net.stats.NetworkStats`.

* **Piggybacked hints** — with a :class:`HintRegistry` attached to the
  network, every delivered message (data, replies, NACKs alike) carries the
  *sender's* advertised queue depth, and the receiver records it in its own
  decaying :class:`HintTable`.  Load-aware decisions — the ``least-busy``
  replica-diffusion policy, the retry-another-replica choice after a
  reject, and routing's choice among equivalent references/detours — then
  rank candidates by these last-seen depths instead of reading simulator
  queue state directly.  The simulator-side oracle remains available as the
  ``least-busy-oracle`` policy, purely as a comparison baseline.

The advertised depth is *conservative*: a peer reports
``min(EWMA of recent depths, instantaneous depth)``, so it may understate a
spike but never overstates its backlog; receiver-side the stored hint only
decays.  Both facts together give the staleness invariant the property
tests pin down: a hint is always ``<=`` the true peak queue depth of its
subject since the piggyback that produced it.

Everything stays deterministic: probabilistic policies own a seeded RNG,
hint decay is pure arithmetic over simulated instants, and with
``admission=None`` and no registry attached every code path collapses to
the PR 4 behaviour byte for byte (asserted by tests).
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.load.model import LoadModel
    from repro.pgrid.peer import PGridPeer

#: Admission verdicts.
ACCEPT = "accept"
REJECT = "reject"
DEFER = "defer"

#: Verdicts a policy may return from :meth:`AdmissionPolicy.decide`.
VERDICTS = (ACCEPT, REJECT, DEFER)


class AdmissionPolicy:
    """Base class: when may a peer take on one more unit of work?

    Subclasses implement :meth:`decide`; the shared knobs govern what
    happens on a non-accept verdict:

    * ``action`` — the verdict returned when the budget is exceeded
      (``"reject"`` bounces the job back to the sender, ``"defer"`` parks
      it locally and re-offers it after ``defer_penalty`` seconds);
    * ``max_defers`` — a parked job is force-admitted once its park rounds
      reach ``max(max_defers, 1)``, so admission control degrades a
      saturated peer's latency instead of losing work (the floor of one
      round exists because a job with nowhere to bounce must be parked at
      least once before it can be forced in; the policy itself is always
      consulted on first contact, even with ``max_defers=0``).
    """

    def __init__(self, action: str = REJECT, defer_penalty: float = 0.01, max_defers: int = 8):
        if action not in (REJECT, DEFER):
            raise ValueError(f"action must be 'reject' or 'defer', got {action!r}")
        if defer_penalty <= 0:
            raise ValueError("defer_penalty must be > 0")
        if max_defers < 0:
            raise ValueError("max_defers must be >= 0")
        self.action = action
        self.defer_penalty = defer_penalty
        self.max_defers = max_defers

    def decide(self, depth: int, backlog: float, service: float) -> str:
        """Verdict for one job: ``depth`` jobs already queued, ``backlog``
        seconds of admitted work ahead of it, ``service`` seconds it asks for."""
        raise NotImplementedError

    def _over_budget(self) -> str:
        return self.action


class ThresholdAdmission(AdmissionPolicy):
    """Hard queue-depth cap: shed once ``max_depth`` jobs are in the system."""

    def __init__(self, max_depth: int, **kwargs):
        super().__init__(**kwargs)
        if max_depth < 0:
            raise ValueError("max_depth must be >= 0")
        self.max_depth = max_depth

    def decide(self, depth: int, backlog: float, service: float) -> str:
        return self._over_budget() if depth >= self.max_depth else ACCEPT


class ProbabilisticAdmission(AdmissionPolicy):
    """Random early shedding: the drop probability ramps linearly from 0 at
    ``start_depth`` to 1 at ``full_depth`` (RED-style, avoids the cliff of a
    hard threshold).  Owns a seeded RNG so runs stay deterministic."""

    def __init__(self, start_depth: int, full_depth: int, seed: int = 0, **kwargs):
        super().__init__(**kwargs)
        if not 0 <= start_depth < full_depth:
            raise ValueError("need 0 <= start_depth < full_depth")
        self.start_depth = start_depth
        self.full_depth = full_depth
        self.rng = random.Random(seed)

    def decide(self, depth: int, backlog: float, service: float) -> str:
        if depth < self.start_depth:
            return ACCEPT
        if depth >= self.full_depth:
            return self._over_budget()
        ramp = (depth - self.start_depth) / (self.full_depth - self.start_depth)
        return self._over_budget() if self.rng.random() < ramp else ACCEPT


class DeadlineAdmission(AdmissionPolicy):
    """Sojourn budget: shed when the *predicted* time in system (current
    backlog plus the job's own service time) exceeds ``max_sojourn`` —
    admitting a job that cannot possibly answer in time helps nobody."""

    def __init__(self, max_sojourn: float, **kwargs):
        super().__init__(**kwargs)
        if max_sojourn <= 0:
            raise ValueError("max_sojourn must be > 0")
        self.max_sojourn = max_sojourn

    def decide(self, depth: int, backlog: float, service: float) -> str:
        return self._over_budget() if backlog + service > self.max_sojourn else ACCEPT


class HintTable:
    """One peer's decaying memory of other peers' advertised queue depths.

    ``observe`` records the freshest piggybacked depth per subject;
    ``depth`` returns it decayed exponentially with staleness (half-life
    ``half_life`` seconds), so information that stopped flowing fades
    toward 0 — optimistic, which keeps stale tables from blacklisting a
    peer forever.  Unknown subjects read as 0.0 (never heard from ≈ idle).
    """

    def __init__(self, half_life: float = 0.5):
        if half_life <= 0:
            raise ValueError("half_life must be > 0")
        self.half_life = half_life
        self._entries: dict[str, tuple[float, float]] = {}  # subject -> (depth, at)

    def __len__(self) -> int:
        return len(self._entries)

    def observe(self, subject: str, depth: float, at: float) -> None:
        """Record ``subject`` advertising ``depth`` on a message sent at ``at``."""
        if depth < 0:
            raise ValueError("advertised depth must be >= 0")
        current = self._entries.get(subject)
        if current is None or at >= current[1]:
            self._entries[subject] = (depth, at)

    def depth(self, subject: str, now: float) -> float:
        """Last-seen depth of ``subject``, decayed by staleness (0.0 if unknown)."""
        entry = self._entries.get(subject)
        if entry is None:
            return 0.0
        depth, at = entry
        staleness = max(0.0, now - at)
        return depth * math.pow(0.5, staleness / self.half_life)

    def raw(self, subject: str) -> tuple[float, float] | None:
        """The undecayed ``(depth, at)`` entry for ``subject`` (tests/metrics)."""
        return self._entries.get(subject)


class HintRegistry:
    """All peers' hint tables plus the piggyback entry point.

    One registry serves one overlay: attach it to the network
    (``pnet.event_driven(load=model, hints=True)`` does this) and the event
    scheduler calls :meth:`observe` for every delivered message.  ``clock``
    tracks the latest observation instant so hint consumers that live
    outside the scheduler (routing) have a consistent "now" to decay
    against.
    """

    def __init__(self, half_life: float = 0.5):
        if half_life <= 0:
            raise ValueError("half_life must be > 0")
        self.half_life = half_life
        self.tables: dict[str, HintTable] = {}
        self.clock = 0.0
        self.observations = 0

    def table(self, observer: str) -> HintTable:
        """``observer``'s own hint table (created on first use)."""
        table = self.tables.get(observer)
        if table is None:
            table = self.tables[observer] = HintTable(self.half_life)
        return table

    def observe(self, observer: str, subject: str, depth: float, at: float) -> None:
        """``observer`` received a message from ``subject`` advertising ``depth``."""
        self.clock = max(self.clock, at)
        self.observations += 1
        self.table(observer).observe(subject, depth, at)

    def depth(self, observer: str, subject: str, now: float | None = None) -> float:
        """What ``observer`` currently believes ``subject``'s queue depth is."""
        table = self.tables.get(observer)
        if table is None:
            return 0.0
        return table.depth(subject, self.clock if now is None else now)


def pick_least_hinted(
    candidates: list[str],
    observer: str,
    hints: HintRegistry,
    rng: random.Random,
    now: float | None = None,
) -> str:
    """Pick the candidate ``observer`` believes is least busy.

    Ties (including the common all-unknown case, where every hint reads
    0.0) are broken by ``rng.choice`` over the tied candidates in their
    original order — so with an empty registry this consumes the same
    single RNG draw as plain ``rng.choice(candidates)`` and picks the same
    element, which keeps hint-free runs byte-identical.
    """
    if not candidates:
        raise ValueError("need at least one candidate")
    if len(candidates) == 1:
        return candidates[0]
    depths = [hints.depth(observer, candidate, now) for candidate in candidates]
    best = min(depths)
    tied = [c for c, d in zip(candidates, depths) if d == best]
    return rng.choice(tied)
