"""E10 — scale: "a robust, scalable and reliable massively distributed
(up to 1000 peers and more) storage" (paper §3).

The full stack — triple store, indexes, VQL, optimizer — on a 1000-peer
overlay.  Every query class of the demo mix must return exactly the
reference answer, and per-lookup routing must stay logarithmic (≈ log2 of
the group count), demonstrating that nothing in the design degrades at the
claimed scale.
"""

from __future__ import annotations

import math
import random

import pytest

from repro import UniStore
from repro.bench import ConferenceWorkload, ResultTable, mean

from conftest import emit

NUM_PEERS = 1000


@pytest.fixture(scope="module")
def big_store():
    store = UniStore.build(num_peers=NUM_PEERS, replication=2, seed=1000, enable_qgram_index=True)
    workload = ConferenceWorkload(
        num_authors=300, num_publications=600, num_conferences=32, seed=1000
    )
    workload.load_into(store)
    return store, workload


def test_e10_functional_at_1000_peers(benchmark, big_store):
    store, workload = big_store
    table = ResultTable(
        f"E10: full query mix at {NUM_PEERS} peers",
        ["query class", "rows", "correct", "messages", "hops", "latency s"],
    )
    for name, vql in workload.query_mix().items():
        result = store.execute(vql)
        reference = store.execute(vql, mode="reference")
        correct = sorted(map(repr, result.rows)) == sorted(map(repr, reference.rows))
        if name == "topn" and not correct:
            # ties at the cut: accept any valid top-N (same key multiset)
            correct = sorted(r["cnt"] for r in result.rows) == sorted(
                r["cnt"] for r in reference.rows
            )
        table.add_row(
            name,
            len(result.rows),
            correct,
            result.messages,
            result.trace.hops,
            result.answer_time,
        )
        assert correct, f"{name} wrong at {NUM_PEERS} peers"
    emit(table)

    benchmark.pedantic(
        lambda: store.execute(workload.query_mix()["lookup"]), rounds=5, iterations=1
    )


def test_e10_routing_stays_logarithmic(benchmark, big_store):
    store, _workload = big_store
    from repro.triples.index import av_key

    groups = len(store.pnet.leaf_groups())
    rng = random.Random(10)
    hops = []
    ages = list(range(24, 66))
    for _ in range(150):
        key = av_key("age", rng.choice(ages))
        _entries, trace = store.pnet.lookup(key)
        hops.append(float(trace.hops))
    bound = math.log2(groups)
    table = ResultTable(
        f"E10b: lookup hops at {NUM_PEERS} peers ({groups} groups)",
        ["mean hops", "max hops", "log2(groups)"],
    )
    table.add_row(mean(hops), max(hops), bound)
    emit(table)
    assert mean(hops) <= bound + 2
    assert max(hops) <= 2 * bound + 3

    benchmark(lambda: store.pnet.lookup(av_key("age", rng.choice(ages))))
