"""Load shedding and piggybacked queue-depth hints.

Covers the PR 5 load-control loop end to end:

* admission policies (threshold / probabilistic / deadline) and the
  ``NodeQueue.offer`` gate — a declined job never mutates the queue;
* scheduler semantics: rejects NACK the sender (an accounted message),
  handler-less rejects and deferrals park-and-retry so no work is lost,
  force-admission after ``max_defers``;
* hint piggybacking: every delivery stamps the sender's advertised depth,
  tables decay, and the staleness invariant holds (a hypothesis property:
  a hint never exceeds the subject's true peak depth since the piggyback
  that produced it);
* conservation under a shedding overlay: every driven operation ends
  completed-ok or failed-with-error, never silently lost;
* the PR 4 byte-identity acceptance criterion: with ``admission=None`` and
  hints off, the scheduler's event sequence is unchanged.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.load import (
    DeadlineAdmission,
    HintRegistry,
    HintTable,
    LoadModel,
    NodeQueue,
    OpenLoopDriver,
    ProbabilisticAdmission,
    ServiceProfile,
    ThresholdAdmission,
    pick_least_hinted,
    pick_member,
    summarize,
)
from repro.net import ConstantLatency, Network, ZeroLatency
from repro.pgrid import build_network, bulk_load, encode_string
from repro.pgrid.datastore import Entry
from repro.pgrid.network import PGridNetwork

_WORD_RNG = random.Random(512)
WORDS = sorted(
    {
        "".join(_WORD_RNG.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(7))
        for _ in range(24)
    }
)
ITEMS = [(encode_string(w), f"id-{w}", f"val-{w}") for w in WORDS]
KEYS = [key for key, _id, _value in ITEMS]


class TestAdmissionPolicies:
    def test_threshold(self):
        policy = ThresholdAdmission(max_depth=2)
        assert policy.decide(0, 0.0, 0.1) == "accept"
        assert policy.decide(1, 0.5, 0.1) == "accept"
        assert policy.decide(2, 1.0, 0.1) == "reject"
        deferring = ThresholdAdmission(max_depth=0, action="defer")
        assert deferring.decide(0, 0.0, 0.1) == "defer"

    def test_probabilistic_ramp(self):
        policy = ProbabilisticAdmission(start_depth=2, full_depth=6, seed=3)
        assert policy.decide(0, 0.0, 0.1) == "accept"
        assert policy.decide(1, 0.0, 0.1) == "accept"
        assert policy.decide(6, 0.0, 0.1) == "reject"
        assert policy.decide(99, 0.0, 0.1) == "reject"
        mid = [policy.decide(4, 0.0, 0.1) for _ in range(400)]
        # Halfway up the ramp: sheds roughly half, deterministically seeded.
        shed = mid.count("reject")
        assert 120 < shed < 280
        twin = ProbabilisticAdmission(start_depth=2, full_depth=6, seed=3)
        assert twin.decide(4, 0.0, 0.1) == mid[0]

    def test_deadline(self):
        policy = DeadlineAdmission(max_sojourn=1.0)
        assert policy.decide(5, 0.5, 0.4) == "accept"  # 0.9 predicted
        assert policy.decide(0, 0.5, 0.6) == "reject"  # 1.1 predicted

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdAdmission(-1)
        with pytest.raises(ValueError):
            ThresholdAdmission(1, action="explode")
        with pytest.raises(ValueError):
            ThresholdAdmission(1, defer_penalty=0.0)
        with pytest.raises(ValueError):
            ProbabilisticAdmission(4, 4)
        with pytest.raises(ValueError):
            DeadlineAdmission(0.0)


class TestNodeQueueOffer:
    def test_accept_matches_admit(self):
        gated, plain = NodeQueue(), NodeQueue()
        verdict, start, finish, depth = gated.offer(1.0, 0.5, ThresholdAdmission(8))
        assert verdict == "accept"
        assert (start, finish, depth) == plain.admit(1.0, 0.5)
        assert gated.busy_until == plain.busy_until

    def test_reject_leaves_queue_untouched(self):
        queue = NodeQueue()
        queue.admit(0.0, 1.0)
        before = (queue.busy_until, queue.jobs, queue.busy_time, queue.max_depth)
        verdict, start, finish, depth = queue.offer(0.1, 1.0, ThresholdAdmission(1))
        assert verdict == "reject"
        assert (start, finish) == (0.1, 0.1)
        assert depth == 1
        assert (queue.busy_until, queue.jobs, queue.busy_time, queue.max_depth) == before
        assert queue.rejected == 1 and queue.deferred == 0

    def test_no_policy_accepts_everything(self):
        queue = NodeQueue()
        for i in range(20):
            verdict, *_ = queue.offer(float(i) * 1e-3, 1.0)
            assert verdict == "accept"
        assert queue.rejected == queue.deferred == 0

    def test_advertised_depth_is_conservative(self):
        queue = NodeQueue()
        for i in range(6):
            queue.admit(0.0, 1.0)
        # EWMA lags below the instantaneous depth while it climbs...
        assert queue.advertised_depth(0.0) <= queue.depth_at(0.0)
        # ...and after the backlog drains the advertisement drops to 0 even
        # though the EWMA still remembers the spike: never overstate.
        assert queue.depth_at(100.0) == 0
        assert queue.advertised_depth(100.0) == 0.0
        assert queue.ewma_depth > 0.0


class TestHintTables:
    def test_decay_and_unknown(self):
        table = HintTable(half_life=1.0)
        assert table.depth("x", 5.0) == 0.0
        table.observe("x", 8.0, at=10.0)
        assert table.depth("x", 10.0) == pytest.approx(8.0)
        assert table.depth("x", 11.0) == pytest.approx(4.0)
        assert table.depth("x", 13.0) == pytest.approx(1.0)
        # Older observations never overwrite newer ones.
        table.observe("x", 99.0, at=9.0)
        assert table.raw("x") == (8.0, 10.0)

    def test_registry_clock_and_tables(self):
        registry = HintRegistry(half_life=2.0)
        registry.observe("a", "b", 4.0, at=1.0)
        registry.observe("c", "b", 6.0, at=3.0)
        assert registry.clock == 3.0
        assert registry.observations == 2
        # Per-observer: a's view of b decayed to clock, c's is fresh.
        assert registry.depth("a", "b") == pytest.approx(4.0 * 0.5)
        assert registry.depth("c", "b") == pytest.approx(6.0)
        assert registry.depth("nobody", "b") == 0.0

    def test_pick_least_hinted_matches_rng_choice_when_unknown(self):
        registry = HintRegistry()
        candidates = ["p1", "p2", "p3"]
        expected = random.Random(42).choice(candidates)
        assert pick_least_hinted(candidates, "me", registry, random.Random(42)) == expected
        registry.observe("me", "p1", 5.0, at=0.0)
        registry.observe("me", "p3", 2.0, at=0.0)
        # p2 never heard from reads 0.0 — the optimistic minimum.
        assert pick_least_hinted(candidates, "me", registry, random.Random(0)) == "p2"


@given(
    services=st.lists(st.floats(0.05, 2.0, allow_nan=False), min_size=2, max_size=30),
    gaps=st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=2, max_size=30),
    piggyback_every=st.integers(1, 5),
    query_offset=st.floats(0.0, 5.0, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_property_hint_never_exceeds_peak_depth_since_piggyback(
    services, gaps, piggyback_every, query_offset
):
    """The staleness invariant: a stored hint, decayed or not, is always
    <= the subject's true peak queue depth since the piggyback instant."""
    queue = NodeQueue()
    registry = HintRegistry(half_life=0.3)
    jobs: list[tuple[float, float]] = []  # (arrival, finish) ground truth
    now = 0.0
    last_piggyback: float | None = None
    for index, (service, gap) in enumerate(zip(services, gaps)):
        now += gap
        start, finish, _depth = queue.admit(now, service)
        jobs.append((now, finish))
        if index % piggyback_every == 0:
            registry.observe("gw", "n", queue.advertised_depth(now), at=now)
            last_piggyback = now
    if last_piggyback is None:
        return
    query_at = last_piggyback + query_offset

    def true_depth(t: float) -> int:
        return sum(1 for arrival, finish in jobs if arrival <= t < finish)

    # Depth is piecewise constant, changing only at arrivals/finishes: the
    # peak over [piggyback, query] is attained at one of those instants.
    instants = [last_piggyback, query_at] + [
        t
        for arrival, finish in jobs
        for t in (arrival, finish)
        if last_piggyback <= t <= query_at
    ]
    peak = max(true_depth(t) for t in instants)
    hint = registry.depth("gw", "n", now=query_at)
    assert hint <= peak + 1e-9
    # And the advertisement itself never overstates the instantaneous depth.
    assert registry.tables["gw"].raw("n")[0] <= true_depth(last_piggyback) + 1e-9


def _tiny_overlay():
    """Hand-built 3-peer trie with pinned links (PR 4's test shape)."""
    pnet = PGridNetwork(Network(latency_model=ZeroLatency(), seed=0))
    a = pnet.add_peer("a", "00")
    b = pnet.add_peer("b", "01")
    c = pnet.add_peer("c", "1")
    a.routing.add(0, "c")
    a.routing.add(1, "b")
    b.routing.add(0, "c")
    b.routing.add(1, "a")
    c.routing.add(0, "a")
    pnet.net.set_link_latency("a", "b", 0.2)
    pnet.net.set_link_latency("a", "c", 0.5)
    b.store.put(Entry(key="011", item_id="x", value="vb", version=1))
    c.store.put(Entry(key="10", item_id="y", value="vc", version=1))
    return pnet, a


class TestSchedulerShedding:
    def test_reject_nacks_the_sender(self):
        pnet, a = _tiny_overlay()
        model = LoadModel(
            ServiceProfile({"ping": 1.0}),
            admission={"c": ThresholdAdmission(1)},
        )
        with pnet.event_driven(load=model) as sched:
            done, nacked = [], []
            sched.send_at(0.0, "a", "c", "ping", on_delivered=done.append)
            sched.send_at(
                0.0, "a", "c", "ping", on_delivered=done.append, on_rejected=nacked.append
            )
            sched.run()
        # First arrival (0.5) admitted, finishes 1.5.  Second arrival sees
        # depth 1 >= max_depth -> rejected; the NACK travels c -> a (0.5)
        # and the handler fires at 1.0.
        assert done == [pytest.approx(1.5)]
        assert nacked == [pytest.approx(1.0)]
        assert model.queue("c").jobs == 1 and model.queue("c").rejected == 1
        snap = pnet.net.stats.total.snapshot()
        assert snap["rejects"] == {"c": 1}
        assert snap["by_kind"]["reject"] == 1  # the NACK is a real message

    def test_handlerless_reject_is_parked_not_lost(self):
        pnet, a = _tiny_overlay()
        policy = ThresholdAdmission(1, defer_penalty=0.25, max_defers=100)
        model = LoadModel(ServiceProfile({"ping": 1.0}), admission={"c": policy})
        with pnet.event_driven(load=model) as sched:
            done = []
            sched.send_at(0.0, "a", "c", "ping", on_delivered=done.append)
            sched.send_at(0.0, "a", "c", "ping", on_delivered=done.append)
            sched.run()
        # The shed job retries every 0.25 s and is admitted at the 1.5 retry,
        # the instant the first job's service completes: done at 2.5.
        assert done == [pytest.approx(1.5), pytest.approx(2.5)]
        assert model.queue("c").jobs == 2
        assert pnet.net.stats.total.total_rejects >= 1

    def test_defer_action_and_forced_admission(self):
        pnet, a = _tiny_overlay()
        # Depth budget 0 defers *everything*: only the forced admission
        # after max_defers lets work through.
        policy = ThresholdAdmission(0, action="defer", defer_penalty=0.1, max_defers=3)
        model = LoadModel(ServiceProfile({"ping": 1.0}), admission={"c": policy})
        with pnet.event_driven(load=model) as sched:
            done = []
            sched.send_at(0.0, "a", "c", "ping", on_delivered=done.append)
            sched.run()
        assert done == [pytest.approx(0.5 + 3 * 0.1 + 1.0)]
        assert model.queue("c").deferred == 3 and model.queue("c").jobs == 1
        assert pnet.net.stats.total.total_deferrals == 3
        assert "deferrals" in pnet.net.stats.total.snapshot()

    def test_max_defers_zero_still_sheds_on_first_contact(self):
        """Regression: max_defers=0 must not bypass the admission gate."""
        pnet, a = _tiny_overlay()
        policy = ThresholdAdmission(0, max_defers=0, defer_penalty=0.25)
        model = LoadModel(ServiceProfile({"ping": 1.0}), admission={"c": policy})
        with pnet.event_driven(load=model) as sched:
            nacked, done = [], []
            sched.send_at(
                0.0, "a", "c", "ping", on_delivered=done.append, on_rejected=nacked.append
            )
            sched.send_at(0.0, "a", "c", "ping", on_delivered=done.append)
            sched.run()
        # The rejectable message bounced; the handler-less one was parked
        # once (the floor) and force-admitted at the first retry.
        assert nacked == [pytest.approx(1.0)]
        assert done == [pytest.approx(0.5 + 0.25 + 1.0)]
        assert model.queue("c").rejected == 2 and model.queue("c").jobs == 1

    def test_parked_reject_counts_once(self):
        """Regression: one shed message = one reject, park rounds = defers."""
        pnet, a = _tiny_overlay()
        policy = ThresholdAdmission(1, defer_penalty=0.25, max_defers=100)
        model = LoadModel(ServiceProfile({"ping": 1.0}), admission={"c": policy})
        with pnet.event_driven(load=model) as sched:
            sched.send_at(0.0, "a", "c", "ping")
            sched.send_at(0.0, "a", "c", "ping")
            sched.run()
        # The second message was declined at 0.5, 0.75, 1.0, 1.25 and got in
        # at 1.5: one rejection, three park-round deferrals.
        assert model.queue("c").rejected == 1
        assert model.queue("c").deferred == 3
        assert pnet.net.stats.total.total_rejects == 1
        assert pnet.net.stats.total.total_deferrals == 3

    def test_park_time_visible_in_service_stats(self):
        """Regression: queueing stats measure wait from the network arrival,
        so time spent parked by admission control is not invisible."""
        pnet, a = _tiny_overlay()
        policy = ThresholdAdmission(0, action="defer", defer_penalty=0.1, max_defers=3)
        model = LoadModel(ServiceProfile({"ping": 1.0}), admission={"c": policy})
        with pnet.net.frame() as frame, pnet.event_driven(load=model):
            pnet.scheduler.send_at(0.0, "a", "c", "ping")
            pnet.scheduler.run()
        ledger = frame.snapshot()["queueing"]["c"]
        assert ledger["wait"] == pytest.approx(3 * 0.1)  # the three park rounds

    def test_hint_piggyback_on_deliveries(self):
        pnet, a = _tiny_overlay()
        model = LoadModel(ServiceProfile({"ping": 1.0}))
        with pnet.event_driven(load=model, hints=True) as sched:
            registry = pnet.net.hints
            assert sched.hints is registry
            sched.send_at(0.0, "a", "c", "ping")
            sched.run()
            # c heard from a: a's queue is empty, so the hint reads 0.
            assert registry.depth("c", "a") == 0.0
            # Now c is busy; a message c -> a advertises its depth.
            sched.send_at(1.0, "c", "a", "pong")
            sched.run()
            assert registry.depth("a", "c", now=1.0) > 0.0
            assert all(d.hint is not None for d in sched.log)
        assert pnet.net.hints is None  # detached with the scheduler


class TestPickMember:
    def test_oracle_vs_hints_vs_random(self):
        pnet, a = _tiny_overlay()
        b, c = pnet.peer("b"), pnet.peer("c")
        model = LoadModel(ServiceProfile({"ping": 1.0}))
        model.admit("c", 0.0, "ping")  # c is busy until 1.0
        members = [b, c]
        oracle = pick_member(members, "least-busy-oracle", load=model, now=0.5)
        assert oracle is b
        registry = HintRegistry()
        registry.observe("gw", "b", 7.0, at=0.5)
        hinted = pick_member(
            members, "least-busy", hints=registry, observer="gw", rng=random.Random(0)
        )
        assert hinted is c  # gw heard b is deep; c (unheard) reads 0
        # least-busy without hints falls back to the oracle (PR 4 behaviour).
        assert pick_member(members, "least-busy", load=model, now=0.5) is b


class TestByteIdentityWithPR4:
    """Acceptance criterion: admission=None + hints off == PR 4 exactly."""

    def _run(self, *, admission=None, hints=False, profile=True):
        pnet = build_network(
            32,
            replication=2,
            seed=91,
            split_by="population",
            latency_model=ConstantLatency(0.05),
        )
        bulk_load(pnet, ITEMS)
        model = LoadModel(
            ServiceProfile({"lookup": 0.002} if profile else {}), admission=admission
        )
        with pnet.event_driven(load=model, hints=hints) as sched:
            results, lookup_trace = pnet.lookup_many(KEYS, start=pnet.peers[0])
            insert_trace = pnet.insert_many(
                [(encode_string(f"shed{i}"), f"sid{i}", i) for i in range(8)],
                start=pnet.peers[1],
            )
        found = {k: {(e.item_id, e.value) for e in v} for k, v in results.items()}
        return list(sched.log), lookup_trace, insert_trace, found

    def test_admission_none_and_hints_off_change_nothing(self):
        baseline = self._run()
        explicit = self._run(admission=None, hints=False)
        assert baseline == explicit
        # The Delivery records carry no hint metadata when hints are off —
        # the log shape PR 4 produced.
        assert all(d.hint is None for d in baseline[0])

    def test_accept_all_policy_is_invisible(self):
        baseline = self._run()
        gated = self._run(admission=ThresholdAdmission(10**9))
        assert baseline == gated

    def test_hints_on_stamps_metadata_but_preserves_results(self):
        baseline = self._run()
        hinted = self._run(hints=True)
        assert hinted[3] == baseline[3]  # same entries found
        assert all(d.hint is not None for d in hinted[0])


class TestDriverConservation:
    """Rejected operations are retried or reported — never silently lost."""

    def _shedding_overlay(self, seed=17):
        pnet = build_network(
            24,
            replication=3,
            seed=seed,
            split_by="population",
            latency_model=ConstantLatency(0.01),
        )
        bulk_load(pnet, ITEMS)
        return pnet

    def _drive(self, pnet, model, hints, diffusion="random", rate=400.0):
        with pnet.event_driven(load=model, hints=hints):
            driver = OpenLoopDriver(
                pnet,
                KEYS,
                rate=rate,
                horizon=0.5,
                key_skew=1.2,
                gateways=[pnet.peers[0]],
                diffusion=diffusion,
                seed=5,
            )
            return driver.run()

    def _aggressive_model(self, pnet, action="reject"):
        gateway = pnet.peers[0].node_id
        policy = ThresholdAdmission(1, action=action)
        admission = {p.node_id: policy for p in pnet.peers if p.node_id != gateway}
        return LoadModel(ServiceProfile({"lookup": 0.01}), admission=admission)

    def test_rejecting_overlay_conserves_every_op(self):
        pnet = self._shedding_overlay()
        model = self._aggressive_model(pnet)
        records = self._drive(pnet, model, hints=True)
        assert records, "driver produced no operations"
        assert all(r.completed is not None for r in records), "an op was lost"
        stats = summarize(records)
        assert stats["ok"] + stats["failed"] == stats["ops"]
        assert stats["rejections"] > 0, "the aggressive policy never shed"
        for record in records:
            if not record.ok:
                assert record.error, "failures must be reported with a reason"
        assert pnet.net.stats.total.total_rejects > 0

    def test_deferring_overlay_loses_nothing_and_fails_nothing(self):
        pnet = self._shedding_overlay(seed=23)
        model = self._aggressive_model(pnet, action="defer")
        records = self._drive(pnet, model, hints=False, rate=200.0)
        assert all(r.completed is not None for r in records)
        # Deferral never bounces work, so every op eventually succeeds.
        assert all(r.ok for r in records)
        assert pnet.net.stats.total.total_deferrals > 0

    def test_reject_retries_reach_other_replicas(self):
        pnet = self._shedding_overlay(seed=29)
        model = self._aggressive_model(pnet)
        records = self._drive(pnet, model, hints=True, diffusion="least-busy")
        rejected = [r for r in records if r.rejections]
        assert rejected, "expected some shed operations"
        recovered = [r for r in rejected if r.ok]
        assert recovered, "no shed operation ever succeeded on another replica"
