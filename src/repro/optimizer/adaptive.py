"""Adaptive per-peer re-optimization (paper §2).

    "...we derive a cost model for choosing concrete query plans, which is
     repeatedly applied at each peer involved in a query, resulting in an
     adaptive query processing approach."

During mutant-plan execution the peer currently holding the plan knows the
*exact* cardinality of the partial result (unlike the static planner, which
only has estimates).  :func:`choose_next_step` re-runs the cost model with
that ground truth to pick which pending pattern to evaluate next and how:
probe it with per-value index lookups, or scan it and migrate the plan into
the data's region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.operators import PatternScan
from repro.algebra.semantics import Binding
from repro.optimizer.cost_model import CostModel
from repro.vql.ast import Literal, Var


@dataclass(frozen=True)
class Step:
    """The decision for one mutant-plan iteration."""

    scan: PatternScan
    method: str  # "probe-av" | "probe-oid" | "probe-v" | "scan"
    shared_variable: str | None
    estimated_cost: float


def choose_next_step(
    pending: list[PatternScan],
    bindings: list[Binding] | None,
    model: CostModel,
) -> Step:
    """Pick the cheapest next evaluation step given the *actual* state."""
    bound_variables: set[str] = set()
    if bindings:
        for row in bindings:
            bound_variables |= set(row)

    best: Step | None = None
    for scan in pending:
        step = _cost_step(scan, bindings, bound_variables, model)
        if best is None or step.estimated_cost < best.estimated_cost:
            best = step
    assert best is not None  # pending is never empty when called
    return best


def _cost_step(
    scan: PatternScan,
    bindings: list[Binding] | None,
    bound_variables: set[str],
    model: CostModel,
) -> Step:
    pattern = scan.pattern
    stats = model.stats

    # Probing is possible when a bound variable sits in the subject or the
    # object (with literal predicate / via the v index).
    if bindings is not None:
        if isinstance(pattern.subject, Var) and pattern.subject.name in bound_variables:
            distinct = _distinct_count(bindings, pattern.subject.name)
            cost = model.parallel_lookups(distinct)
            return Step(scan, "probe-oid", pattern.subject.name, model.value(cost))
        if isinstance(pattern.object, Var) and pattern.object.name in bound_variables:
            distinct = _distinct_count(bindings, pattern.object.name)
            cost = model.parallel_lookups(distinct)
            method = "probe-av" if isinstance(pattern.predicate, Literal) else "probe-v"
            return Step(scan, method, pattern.object.name, model.value(cost))

    # Otherwise: evaluate the pattern with its best standalone access path
    # and migrate the plan (carrying |bindings| rows) into that region.
    rows = stats.estimate_pattern(pattern)
    if isinstance(pattern.subject, Literal) or (
        isinstance(pattern.predicate, Literal) and isinstance(pattern.object, Literal)
    ):
        access = model.lookup()
    elif isinstance(pattern.predicate, Literal):
        attribute = str(pattern.predicate.value)
        fraction = stats.attribute_count(attribute) / max(1, stats.total_triples)
        access = model.range_scan(fraction, "shower", rows)
    elif isinstance(pattern.object, Literal):
        access = model.lookup()
    else:
        access = model.range_scan(1.0, "shower", rows)
    carried = len(bindings) if bindings else 0
    migrate = model.ship_rows(max(1, carried))
    return Step(scan, "scan", None, model.value(access.then(migrate)))


def _distinct_count(bindings: list[Binding], variable: str) -> int:
    return len({row.get(variable) for row in bindings if variable in row})
