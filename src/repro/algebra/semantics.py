"""Shared evaluation semantics for logical operators.

Both the centralized reference executor (:mod:`repro.algebra.reference`) and
the distributed physical operators (:mod:`repro.physical`) implement the same
algebra; this module holds the single source of truth for binding
compatibility, pattern matching, sort keys and skyline dominance so the two
executors cannot drift apart (tests assert they agree).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.triples.triple import Triple
from repro.vql.ast import Literal, OrderItem, SkylineItem, TriplePattern, Var

Binding = dict[str, Any]


def match_pattern(pattern: TriplePattern, triple: Triple) -> Binding | None:
    """Unify a triple against a pattern; return the binding or ``None``."""
    binding: Binding = {}
    for term, value in (
        (pattern.subject, triple.oid),
        (pattern.predicate, triple.attribute),
        (pattern.object, triple.value),
    ):
        if isinstance(term, Var):
            bound = binding.get(term.name, _UNSET)
            if bound is _UNSET:
                binding[term.name] = value
            elif bound != value:
                return None
        elif isinstance(term, Literal):
            if term.value != value:
                return None
        else:  # pragma: no cover - parser only produces Var/Literal
            raise TypeError(f"unexpected term {term!r}")
    return binding


_UNSET = object()


def compatible(a: Binding, b: Binding) -> bool:
    """True when two bindings agree on every shared variable."""
    if len(b) < len(a):
        a, b = b, a
    return all(b.get(name, value) == value for name, value in a.items() if name in b)


def merge_bindings(a: Binding, b: Binding) -> Binding:
    """Union of two compatible bindings."""
    merged = dict(a)
    merged.update(b)
    return merged


def join_key(binding: Binding, variables: Iterable[str]) -> tuple:
    """Hashable key of a binding on the given join variables."""
    return tuple(binding.get(name) for name in variables)


# ---------------------------------------------------------------------------
# Ordering
# ---------------------------------------------------------------------------


def _orderable(value: Any) -> tuple[int, Any]:
    """Total order across mixed types: numbers first, then strings, then None.

    Returns a (type-rank, value) pair usable as a sort key component.
    """
    if value is None:
        return (2, 0)
    if isinstance(value, bool):
        return (0, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (1, value)


def order_sort_key(items: tuple[OrderItem, ...]):
    """Sort-key function implementing ORDER BY with ASC/DESC per item."""

    def key(binding: Binding):
        parts = []
        for item in items:
            rank, value = _orderable(binding.get(item.variable.name))
            if item.descending:
                if rank == 0:
                    parts.append((-rank, -value))
                elif rank == 1:
                    parts.append((-rank, _Reversed(value)))
                else:
                    parts.append((-rank, 0))
            else:
                parts.append((rank, value))
        return tuple(parts)

    return key


class _Reversed:
    """Wrapper inverting the comparison order of a string."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return self.value > other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


# ---------------------------------------------------------------------------
# Skyline dominance
# ---------------------------------------------------------------------------


def skyline_values(binding: Binding, items: tuple[SkylineItem, ...]) -> tuple | None:
    """Numeric dimension vector of a binding, or None if any dimension is
    missing or non-numeric (such bindings take no part in the skyline)."""
    values = []
    for item in items:
        value = binding.get(item.variable.name)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        values.append(value)
    return tuple(values)


def dominates(a: tuple, b: tuple, items: tuple[SkylineItem, ...]) -> bool:
    """True when vector ``a`` dominates ``b``: at least as good everywhere,
    strictly better somewhere (MIN: smaller is better; MAX: larger)."""
    strictly_better = False
    for value_a, value_b, item in zip(a, b, items):
        if item.maximize:
            if value_a < value_b:
                return False
            if value_a > value_b:
                strictly_better = True
        else:
            if value_a > value_b:
                return False
            if value_a < value_b:
                strictly_better = True
    return strictly_better


def skyline_of(bindings: list[Binding], items: tuple[SkylineItem, ...]) -> list[Binding]:
    """Block-nested-loop skyline: the non-dominated subset of ``bindings``."""
    window: list[tuple[tuple, Binding]] = []
    for binding in bindings:
        vector = skyline_values(binding, items)
        if vector is None:
            continue
        dominated = False
        survivors: list[tuple[tuple, Binding]] = []
        for existing_vector, existing in window:
            if dominates(existing_vector, vector, items):
                dominated = True
                survivors = window
                break
            if not dominates(vector, existing_vector, items):
                survivors.append((existing_vector, existing))
        if dominated:
            continue
        survivors.append((vector, binding))
        window = survivors
    return [binding for _vector, binding in window]
