"""A Chord node: identifier, finger table, successor list, local store.

Identifiers live on a ``2**m`` ring (default m=32).  Data keys are placed by
*consistent hashing* — ``sha1(key) mod 2**m`` — which deliberately destroys
key order; that is the property the E8 experiment contrasts with P-Grid's
order-preserving placement.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any

from repro.net.node import Node

if TYPE_CHECKING:
    from repro.net.network import Network

#: Ring size exponent: identifiers are in [0, 2**M_BITS).
M_BITS = 32
RING = 1 << M_BITS


def chord_hash(value: str) -> int:
    """Consistent hash of a string onto the identifier ring."""
    digest = hashlib.sha1(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % RING


def in_interval(x: int, lo: int, hi: int, inclusive_hi: bool = True) -> bool:
    """Ring-interval membership test for ``(lo, hi]`` (or ``(lo, hi)``).

    Handles wrap-around: when ``lo == hi`` the interval is the full ring.
    """
    if lo == hi:
        return True
    if lo < hi:
        return (lo < x <= hi) if inclusive_hi else (lo < x < hi)
    wrapped = x > lo or x < hi
    return wrapped or (inclusive_hi and x == hi)


class ChordNode(Node):
    """One node on the Chord ring."""

    def __init__(self, node_id: str, network: "Network", ring_id: int):
        super().__init__(node_id, network)
        self.ring_id = ring_id % RING
        #: finger[k] covers ring_id + 2**k; entries are node ids.
        self.fingers: list[str] = []
        #: First ``r`` successors, for routing fault tolerance & replication.
        self.successors: list[str] = []
        #: key-id -> {data key -> value}; values placed by consistent hashing.
        self.store: dict[int, dict[str, Any]] = {}

    def put_local(self, key: str, value: Any) -> None:
        self.store.setdefault(chord_hash(key), {})[key] = value

    def get_local(self, key: str) -> Any | None:
        return self.store.get(chord_hash(key), {}).get(key)

    def delete_local(self, key: str) -> bool:
        bucket = self.store.get(chord_hash(key))
        if bucket and key in bucket:
            del bucket[key]
            return True
        return False

    @property
    def load(self) -> int:
        return sum(len(bucket) for bucket in self.store.values())
