"""Network substrate: traces, delivery, stats frames, latency models, DES."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NodeUnreachableError
from repro.net import (
    ChurnModel,
    ConstantLatency,
    EventSimulator,
    Network,
    Node,
    PlanetLabLatency,
    Trace,
    UniformLatency,
    ZeroLatency,
    generate_session_trace,
)


class TestTrace:
    def test_zero_identity(self):
        t = Trace(3, 2, 0.5)
        assert t.then(Trace.ZERO) == t
        assert Trace.ZERO.then(t) == t

    def test_sequential_adds_everything(self):
        combined = Trace(1, 1, 0.1).then(Trace(2, 3, 0.4))
        assert combined == Trace(3, 4, 0.5)

    def test_parallel_takes_max_latency(self):
        combined = Trace.parallel([Trace(1, 1, 0.1), Trace(1, 5, 0.9)])
        assert combined.messages == 2
        assert combined.hops == 5
        assert combined.latency == 0.9

    def test_parallel_empty(self):
        assert Trace.parallel([]) == Trace.ZERO

    def test_hop_constructor(self):
        assert Trace.hop(0.2) == Trace(1, 1, 0.2)

    def test_plus_operator_is_sequential(self):
        assert Trace(1, 1, 0.1) + Trace(1, 1, 0.1) == Trace(2, 2, 0.2)

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5), st.floats(0, 1, allow_nan=False)),
            min_size=1,
            max_size=5,
        )
    )
    def test_parallel_bounded_by_sequential(self, parts):
        traces = [Trace(*p) for p in parts]
        par = Trace.parallel(traces)
        seq = Trace.ZERO
        for t in traces:
            seq = seq.then(t)
        assert par.latency <= seq.latency + 1e-9
        assert par.messages == seq.messages


class TestNetworkDelivery:
    def test_send_and_count(self):
        net = Network(latency_model=ConstantLatency(0.01), seed=1)
        Node("a", net)
        Node("b", net)
        trace = net.send("a", "b", "test", size=3)
        assert trace.hops == 1 and trace.latency == pytest.approx(0.01)
        assert net.stats.messages == 1
        assert net.stats.bytes == 3

    def test_self_send_is_free(self):
        net = Network(seed=1)
        Node("a", net)
        assert net.send("a", "a", "test") == Trace.ZERO
        assert net.stats.messages == 0

    def test_offline_destination_raises(self):
        net = Network(seed=1)
        Node("a", net)
        b = Node("b", net)
        b.fail()
        with pytest.raises(NodeUnreachableError):
            net.send("a", "b", "test")
        b.recover()
        assert net.send("a", "b", "test").hops == 1

    def test_unknown_destination_raises(self):
        net = Network(seed=1)
        Node("a", net)
        with pytest.raises(NodeUnreachableError):
            net.send("a", "ghost", "test")

    def test_duplicate_node_id_rejected(self):
        net = Network(seed=1)
        Node("a", net)
        with pytest.raises(ValueError):
            Node("a", net)

    def test_link_latency_memoized(self):
        net = Network(latency_model=UniformLatency(0.01, 0.5), seed=3)
        Node("a", net)
        Node("b", net)
        assert net.link_latency("a", "b") == net.link_latency("a", "b")

    def test_stats_frames_scope_traffic(self):
        net = Network(seed=1)
        Node("a", net)
        Node("b", net)
        net.send("a", "b", "warmup")
        with net.frame() as frame:
            net.send("a", "b", "scoped", size=2)
        assert frame.messages == 1
        assert frame.bytes == 2
        assert frame.by_kind["scoped"] == 1
        assert net.stats.messages == 2  # global ledger sees both

    def test_nested_frames(self):
        net = Network(seed=1)
        Node("a", net)
        Node("b", net)
        with net.frame() as outer:
            net.send("a", "b", "x")
            with net.frame() as inner:
                net.send("a", "b", "y")
        assert outer.messages == 2
        assert inner.messages == 1


class TestLatencyModels:
    def test_zero(self):
        assert ZeroLatency().sample_base(random.Random(0)) == 0.0

    def test_constant(self):
        assert ConstantLatency(0.07).sample_base(random.Random(0)) == 0.07

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1)

    def test_uniform_in_range(self):
        model = UniformLatency(0.01, 0.02)
        rng = random.Random(5)
        for _ in range(100):
            assert 0.01 <= model.sample_base(rng) <= 0.02

    def test_uniform_validates_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)

    def test_planetlab_is_heavy_tailed(self):
        model = PlanetLabLatency(median=0.04)
        rng = random.Random(7)
        samples = sorted(model.sample_base(rng) for _ in range(2000))
        med = samples[len(samples) // 2]
        p95 = samples[int(len(samples) * 0.95)]
        assert 0.03 < med < 0.05  # median near configured value
        assert p95 > 3 * med  # heavy tail

    def test_planetlab_rejects_bad_median(self):
        with pytest.raises(ValueError):
            PlanetLabLatency(median=0)


class TestEventSimulator:
    def test_runs_in_time_order(self):
        sim = EventSimulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_fifo_for_ties(self):
        sim = EventSimulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_until_stops_and_advances_clock(self):
        sim = EventSimulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        sim.run(until=2.0)
        assert not fired and sim.now == 2.0
        sim.run()
        assert fired

    def test_negative_delay_rejected(self):
        sim = EventSimulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_events_can_schedule_events(self):
        sim = EventSimulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]


class TestChurn:
    def _make_nodes(self, count):
        net = Network(seed=1)
        return [Node(f"n{i}", net) for i in range(count)]

    def test_fail_fraction(self):
        nodes = self._make_nodes(20)
        model = ChurnModel(nodes, seed=2)
        victims = model.fail_fraction(0.25)
        assert len(victims) == 5
        assert sum(1 for n in nodes if not n.online) == 5

    def test_fail_fraction_validates(self):
        model = ChurnModel(self._make_nodes(4), seed=2)
        with pytest.raises(ValueError):
            model.fail_fraction(1.5)

    def test_recover_all(self):
        nodes = self._make_nodes(10)
        model = ChurnModel(nodes, seed=2)
        model.fail_fraction(0.5)
        model.recover_all()
        assert all(n.online for n in nodes)

    def test_session_trace_alternates(self):
        rng = random.Random(3)
        events = generate_session_trace(["a"], horizon=100.0, mean_session=10.0,
                                        mean_downtime=2.0, rng=rng)
        states = [e.online for e in events]
        # First flip takes the node down; states must alternate.
        assert states[0] is False
        assert all(x != y for x, y in zip(states, states[1:]))

    def test_session_trace_applied_through_simulator(self):
        nodes = self._make_nodes(3)
        model = ChurnModel(nodes, seed=4)
        rng = random.Random(4)
        events = generate_session_trace(
            [n.node_id for n in nodes], horizon=50.0, mean_session=5.0, mean_downtime=5.0, rng=rng
        )
        sim = EventSimulator()
        model.apply_trace(sim, events)
        sim.run(until=50.0)
        # The final state matches the last event per node.
        last_state = {}
        for event in events:
            if event.time <= 50.0:
                last_state[event.node_id] = event.online
        for node in nodes:
            if node.node_id in last_state:
                assert node.online == last_state[node.node_id]
