"""Per-peer route caching: shortcut hits, validation-at-use, invalidation."""

import pytest

from repro.pgrid import build_network, encode_string
from repro.pgrid.keys import responsible
from repro.pgrid.routing import RouteCache, route


def _key(word: str) -> str:
    return encode_string(word)


class TestRouteCacheUnit:
    def test_longest_covering_prefix_wins(self):
        cache = RouteCache()
        cache.put("0", "shallow")
        cache.put("00", "deep")
        assert cache.get("001")[1] == "deep"
        assert cache.get("010")[1] == "shallow"
        assert cache.get("110") is None

    def test_lru_eviction_at_capacity(self):
        cache = RouteCache(capacity=2)
        cache.put("00", "a")
        cache.put("01", "b")
        cache.get("000")  # touch "00" so "01" becomes the LRU victim
        cache.put("10", "c")
        assert len(cache) == 2
        assert cache.get("010") is None
        assert cache.get("000")[1] == "a"

    def test_invalidate_key_drops_covering_entries(self):
        cache = RouteCache()
        cache.put("0", "a")
        cache.put("00", "b")
        cache.put("11", "c")
        cache.invalidate_key("001")
        assert cache.get("001") is None
        assert cache.get("110")[1] == "c"

    def test_invalidate_peer(self):
        cache = RouteCache()
        cache.put("00", "a")
        cache.put("01", "a")
        cache.put("10", "b")
        cache.invalidate_peer("a")
        assert cache.get("000") is None and cache.get("010") is None
        assert cache.get("100")[1] == "b"

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            RouteCache(capacity=0)


class TestRoutingWithCache:
    def test_repeat_route_shortcuts_to_one_direct_hop(self):
        pnet = build_network(64, replication=2, seed=3, split_by="population")
        start = pnet.peers[0]
        key = _key("repeatable")
        first_dest, first_trace = route(start, key)
        second_dest, second_trace = route(start, key)
        assert second_dest is first_dest
        assert second_trace.messages <= 1  # cached: direct hop (0 when local)
        assert second_trace.messages <= first_trace.messages
        assert start.route_cache.hits >= 1

    def test_disabled_cache_is_never_consulted_or_populated(self):
        pnet = build_network(64, replication=2, seed=3, split_by="population")
        start = pnet.peers[0]
        key = _key("repeatable")
        route(start, key, use_cache=False)
        route(start, key, use_cache=False)
        assert len(start.route_cache) == 0
        assert start.route_cache.hits == 0

    def test_offline_destination_is_evicted_and_rerouted(self):
        pnet = build_network(32, replication=2, seed=5, split_by="population")
        key = _key("failover")
        # Start somewhere not responsible for the key, so routing really moves.
        start = next(p for p in pnet.peers if not responsible(p.path, key))
        cached_dest, _ = route(start, key)
        cached_dest.fail()
        new_dest, trace = route(start, key)
        assert new_dest is not cached_dest
        assert new_dest.online and responsible(new_dest.path, key)
        assert start.route_cache.evictions >= 1
        # The replacement destination is cached for the next round trip.
        assert start.route_cache.get(key)[1] == new_dest.node_id

    def test_stale_entry_pointing_at_moved_peer_falls_back(self):
        pnet = build_network(32, replication=2, seed=6, split_by="population")
        key = _key("stale-entry")
        start = next(p for p in pnet.peers if not responsible(p.path, key))
        real_dest, _ = route(start, key)
        # Poison the cache with a peer that does not cover the key's region.
        wrong = next(p for p in pnet.peers if not responsible(p.path, key))
        start.route_cache.clear()
        start.route_cache.put(real_dest.path, wrong.node_id)
        dest, _trace = route(start, key)
        assert responsible(dest.path, key)
        assert start.route_cache.evictions >= 1

    def test_cache_does_not_change_results_under_churn(self):
        """Routed lookups keep returning the stored value across fail/recover."""
        pnet = build_network(32, replication=2, seed=9, split_by="population")
        key = _key("durable")
        pnet.insert(key, "payload", item_id="item-durable")
        start = pnet.peers[0]
        for round_no in range(6):
            entries, _trace = pnet.lookup(key, start=start)
            assert [e.value for e in entries] == ["payload"], round_no
            group = pnet.responsible_group(key)
            victim = group[round_no % len(group)]
            online_rest = [p for p in group if p is not victim and p.online]
            if online_rest:  # keep the region reachable
                victim.fail()
                entries, _trace = pnet.lookup(key, start=start)
                assert [e.value for e in entries] == ["payload"]
                victim.recover()
