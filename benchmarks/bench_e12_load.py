"""E12 — latency under load: service times, queueing, and replica diffusion.

PR 3 measured *overlap*; this experiment measures *contention*.  Every peer
gets a service-time model and a FIFO work queue on the shared event kernel
(:mod:`repro.load`), an open-loop Poisson driver offers an increasing load
of Zipf-skewed lookups through one gateway, and the answer-time percentiles
are plotted against the offered rate:

* **E12a** — the latency-vs-offered-load curve has a visible knee where the
  hottest peer's utilization approaches 1; enabling replica-based
  query-load diffusion (reads spread over the responsible replica group)
  moves the knee right — the same overlay sustains more load.
* **E12b** — with diffusion on, the sustainable load scales with the
  replication degree: thicker replica groups push the knee further right,
  the load-diffusion-via-replication story of the paper's Section 2.
* **E12c** — the identity check tying E12 back to PR 3: with all service
  times at zero, event-driven execution with a load model attached is
  *indistinguishable* from PR 3's scheduler — same messages, hops,
  completion times and delivery log.
* **E12d** — goodput and tail latency under *overload* (PR 5): a
  heterogeneous overlay is driven past its saturation knee and the
  load-control loop is compared — no shedding vs. admission control
  (saturated peers reject, callers retry other replicas) vs. shedding plus
  piggybacked queue-depth hints (``least-busy`` diffusion steered by what
  the gateway actually heard), against the simulator-side oracle as the
  upper-bound baseline.  Without shedding the goodput (operations answered
  within the SLO) collapses past the knee; with it the overlay keeps
  serving at capacity, and hints land within measurable distance of the
  oracle.  A staleness sweep varies the hint half-life.

Set ``UNISTORE_QUICK=1`` for the CI smoke configuration.
"""

from __future__ import annotations

import os
import random

from repro.bench import ResultTable
from repro.load import (
    HintRegistry,
    LoadModel,
    OpenLoopDriver,
    ServiceProfile,
    ThresholdAdmission,
    ZERO_PROFILE,
    draw_speed_factors,
    goodput,
    summarize,
)
from repro.net.latency import ConstantLatency
from repro.pgrid import build_network, bulk_load, encode_string
from repro.pgrid.load_balancing import query_load_imbalance
from repro.pgrid.network import PGridNetwork

from conftest import emit

QUICK = bool(os.environ.get("UNISTORE_QUICK"))

NUM_PEERS = 48
NUM_KEYS = 64
KEY_SKEW = 1.1  # Zipf s: the top key draws ~23% of the lookups
HORIZON = 1.0 if QUICK else 2.0
RATES = [100, 400, 1600] if QUICK else [100, 200, 400, 800, 1600]
LINK_LATENCY = 0.01
#: Per-kind service costs (seconds on a speed-1.0 peer): a lookup probe is
#: real work, shipping the answer back is cheap.
PROFILE = {"lookup": 0.004, "result": 0.0002}
#: A rate is "sustainable" while its p95 stays under this multiple of the
#: lightly-loaded baseline — past it, queueing dominates and the curve knees.
KNEE_FACTOR = 4.0


def _words(count: int, seed: int = 1203) -> list[str]:
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    return sorted({"".join(rng.choice(alphabet) for _ in range(7)) for _ in range(count)})


WORDS = _words(NUM_KEYS)
ITEMS = [(encode_string(w), f"id-{w}", f"val-{w}") for w in WORDS]
KEYS = [key for key, _id, _value in ITEMS]


def _overlay(replication: int, seed: int) -> PGridNetwork:
    pnet = build_network(
        NUM_PEERS,
        replication=replication,
        seed=seed,
        split_by="population",
        latency_model=ConstantLatency(LINK_LATENCY),
    )
    bulk_load(pnet, ITEMS)
    return pnet


def _drive(replication: int, rate: float, diffusion: str, seed: int = 4812) -> dict:
    """One offered-load point: fresh twin overlay, one gateway, Poisson lookups."""
    pnet = _overlay(replication, seed)
    model = LoadModel(ServiceProfile(PROFILE))
    with pnet.event_driven(load=model):
        driver = OpenLoopDriver(
            pnet,
            KEYS,
            rate=rate,
            horizon=HORIZON,
            key_skew=KEY_SKEW,
            gateways=[pnet.peers[0]],
            diffusion=diffusion,
            seed=seed,
        )
        records = driver.run()
    stats = summarize(records)
    utilization = model.utilization(HORIZON)
    # The gateway is busy by construction (it absorbs every reply); the
    # interesting bottleneck is the hottest *serving* peer.
    gateway = pnet.peers[0].node_id
    serving = [p.node_id for p in pnet.peers if p.node_id != gateway]
    stats["hot_util"] = max(utilization.get(node, 0.0) for node in serving)
    stats["imbalance"] = query_load_imbalance(model.busy_by_peer(), population=serving)
    return stats


def _sustainable(curve: dict[float, dict], baseline_p95: float) -> float:
    """Highest offered rate whose p95 stays under the knee threshold."""
    good = [rate for rate, stats in curve.items() if stats["p95"] <= KNEE_FACTOR * baseline_p95]
    return max(good, default=0.0)


def test_e12a_latency_vs_offered_load_knee_moves_with_diffusion(benchmark):
    replication = 3
    table = ResultTable(
        "E12a: answer time vs offered load — hot-key lookups through one gateway "
        f"({NUM_PEERS} peers, replication {replication}, Zipf s={KEY_SKEW})",
        ["rate /s", "policy", "hot util", "mean s", "p95 s", "max/mean busy", "ok"],
    )
    curves: dict[str, dict[float, dict]] = {"none": {}, "random": {}}
    for policy in ("none", "random"):
        for rate in RATES:
            stats = _drive(replication, rate, policy)
            curves[policy][rate] = stats
            table.add_row(
                rate,
                "pinned" if policy == "none" else "diffused",
                stats["hot_util"],
                stats["mean"],
                stats["p95"],
                stats["imbalance"]["max_over_mean"],
                stats["ok"],
            )
    emit(table)

    baseline = curves["none"][RATES[0]]["p95"]
    # Lightly loaded, the two policies are equally fast (same hop counts).
    assert curves["random"][RATES[0]]["p95"] < KNEE_FACTOR * baseline
    # The pinned curve knees: its top rate is past saturation on the hot
    # peer (utilization ~1) and the tail latency has left the flat region.
    top = RATES[-1]
    assert curves["none"][top]["hot_util"] > 0.9, "hot peer never saturated"
    assert curves["none"][top]["p95"] > KNEE_FACTOR * baseline, "no visible knee"
    # Diffusion spreads the same work over the replica group...
    assert (
        curves["random"][top]["imbalance"]["max_over_mean"]
        < curves["none"][top]["imbalance"]["max_over_mean"]
    )
    # ...so the knee moves right: strictly more load is sustainable.
    knee_pinned = _sustainable(curves["none"], baseline)
    knee_diffused = _sustainable(curves["random"], baseline)
    assert knee_diffused > knee_pinned, (
        f"diffusion should raise the sustainable load (pinned {knee_pinned}/s, "
        f"diffused {knee_diffused}/s)"
    )

    benchmark.pedantic(
        lambda: _drive(replication, RATES[1], "random"), rounds=3 if not QUICK else 1, iterations=1
    )


def test_e12b_knee_scales_with_replication_degree():
    degrees = [1, 4] if QUICK else [1, 2, 4]
    rates = [200, 800, 3200] if QUICK else [200, 400, 800, 1600, 3200]
    table = ResultTable(
        "E12b: sustainable load vs replication degree (diffused reads, "
        f"{NUM_PEERS} peers)",
        ["replication", "rate /s", "hot util", "p95 s", "sustainable?"],
    )
    knees: dict[int, float] = {}
    for degree in degrees:
        curve: dict[float, dict] = {}
        for rate in rates:
            curve[rate] = _drive(degree, rate, "random", seed=9000 + degree)
        baseline = curve[rates[0]]["p95"]
        knees[degree] = _sustainable(curve, baseline)
        for rate in rates:
            table.add_row(
                degree,
                rate,
                curve[rate]["hot_util"],
                curve[rate]["p95"],
                "yes" if curve[rate]["p95"] <= KNEE_FACTOR * baseline else "no",
            )
    emit(table)
    assert knees[degrees[-1]] > knees[degrees[0]], (
        f"thicker replica groups should sustain more load, got {knees}"
    )


def test_e12c_zero_service_times_reproduce_pr3_exactly():
    """The load subsystem is strictly additive: at zero cost it vanishes."""

    def run(load):
        pnet = _overlay(replication=2, seed=777)
        with pnet.event_driven(load=load) as sched:
            results, trace = pnet.lookup_many(KEYS, start=pnet.peers[0])
            insert_trace = pnet.insert_many(
                [(encode_string(f"zip{i}"), f"zid{i}", i) for i in range(12)],
                start=pnet.peers[1],
            )
        found = {k: {(e.item_id, e.value) for e in v} for k, v in results.items()}
        return trace, insert_trace, list(sched.log), found

    plain = run(load=None)
    zeroed = run(load=LoadModel(ZERO_PROFILE))
    assert plain[0] == zeroed[0]  # messages, hops, latency, completion_time
    assert plain[1] == zeroed[1]
    assert plain[2] == zeroed[2]  # the delivery log, instant for instant
    assert plain[3] == zeroed[3]
    table = ResultTable(
        "E12c: zero-service identity — event mode with and without a load model",
        ["model", "msgs", "hops", "completion s"],
    )
    table.add_row("PR 3 scheduler", plain[0].messages, plain[0].hops, plain[0].completion_time)
    table.add_row("zero-cost load", zeroed[0].messages, zeroed[0].hops, zeroed[0].completion_time)
    emit(table)


# -- E12d: load shedding and hint-steered retries under overload ---------------

#: An answer is "good" when it lands within this SLO (seconds) — roughly 4x
#: the light-load answer time, so queueing (not routing) decides goodness.
SLO = 0.25
#: Serving peers shed once this many jobs sit in their queue.
SHED_DEPTH = 6
OVERLOAD_RATES = [200, 3200] if QUICK else [200, 800, 3200]
#: The comparison matrix: (label, admission on?, diffusion policy, hints on?).
E12D_VARIANTS = [
    ("no-shed", False, "random", False),
    ("shed", True, "random", False),
    ("shed+hints", True, "least-busy", True),
    ("shed+oracle", True, "least-busy-oracle", False),
]


def _drive_overload(
    rate: float,
    admission: bool,
    diffusion: str,
    hints: bool,
    half_life: float = 0.5,
    replication: int = 3,
    seed: int = 2025,
) -> dict:
    """One overload point on a *heterogeneous* overlay (lognormal speeds:
    the slow members of a replica group are exactly what uniform spreading
    cannot see and hint/oracle steering can)."""
    pnet = _overlay(replication, seed)
    gateway = pnet.peers[0].node_id
    speeds = draw_speed_factors(
        [p.node_id for p in pnet.peers], distribution="lognormal", sigma=0.6, seed=7
    )
    speeds[gateway] = 1.0  # the gateway's reply handling is not under test
    policy = ThresholdAdmission(SHED_DEPTH)
    model = LoadModel(
        ServiceProfile(PROFILE),
        speeds=speeds,
        admission=(
            {p.node_id: policy for p in pnet.peers if p.node_id != gateway}
            if admission
            else None
        ),
    )
    registry = HintRegistry(half_life=half_life) if hints else False
    with pnet.event_driven(load=model, hints=registry):
        driver = OpenLoopDriver(
            pnet,
            KEYS,
            rate=rate,
            horizon=HORIZON,
            key_skew=KEY_SKEW,
            gateways=[pnet.peers[0]],
            diffusion=diffusion,
            seed=seed,
        )
        records = driver.run()
    assert all(r.completed is not None for r in records), "an operation was lost"
    stats = summarize(records)
    stats["goodput"] = goodput(records, SLO, HORIZON)
    return stats


def test_e12d_shedding_and_hints_sustain_goodput_past_the_knee():
    table = ResultTable(
        "E12d: goodput & tail latency under overload — admission control and "
        f"queue-depth hints ({NUM_PEERS} peers, replication 3, SLO {SLO}s, "
        f"shed depth {SHED_DEPTH})",
        ["rate /s", "variant", "goodput /s", "p99 s", "ok", "failed", "rejects"],
    )
    curves: dict[str, dict[float, dict]] = {label: {} for label, *_ in E12D_VARIANTS}
    for rate in OVERLOAD_RATES:
        for label, admission, diffusion, hints in E12D_VARIANTS:
            stats = _drive_overload(rate, admission, diffusion, hints)
            curves[label][rate] = stats
            table.add_row(
                rate,
                label,
                stats["goodput"],
                stats["p99"],
                stats["ok"],
                stats["failed"],
                stats["rejections"],
            )
    emit(table)

    light, top = OVERLOAD_RATES[0], OVERLOAD_RATES[-1]
    # Below the knee every variant serves essentially the whole offered load.
    for label in curves:
        assert curves[label][light]["goodput"] > 0.9 * light, (
            f"{label} cannot even carry the light load"
        )
    # Past the knee the unprotected overlay collapses: queues grow without
    # bound, so most answers blow the SLO and goodput falls off a cliff.
    collapsed = curves["no-shed"][top]["goodput"]
    assert collapsed < 0.5 * top, "expected the no-shedding goodput to collapse"
    # Admission control keeps the admitted work fast: strictly more goodput.
    assert curves["shed"][top]["goodput"] > collapsed
    # Hint-steered spreading sustains the same protected service level...
    assert curves["shed+hints"][top]["goodput"] > collapsed
    assert curves["shed+hints"][top]["goodput"] >= 0.9 * curves["shed"][top]["goodput"]
    # ...and lands within measurable distance of the simulator-side oracle.
    assert curves["shed+hints"][top]["goodput"] >= 0.85 * curves["shed+oracle"][top]["goodput"]
    # The tail tells the same story as the throughput.
    assert curves["shed+hints"][top]["p99"] < curves["no-shed"][top]["p99"]


def test_e12d_hint_staleness_sweep():
    """How fast should hints fade?  Sweep the decay half-life at overload."""
    rate = OVERLOAD_RATES[-1]
    half_lives = [0.02, 0.5] if QUICK else [0.02, 0.1, 0.5, 2.0]
    table = ResultTable(
        f"E12d-staleness: hint half-life sweep at {rate}/s (shed+hints)",
        ["half-life s", "goodput /s", "p99 s", "ok", "failed", "rejects"],
    )
    baseline = _drive_overload(rate, admission=False, diffusion="random", hints=False)
    sweep = {}
    for half_life in half_lives:
        stats = _drive_overload(
            rate, admission=True, diffusion="least-busy", hints=True, half_life=half_life
        )
        sweep[half_life] = stats
        table.add_row(
            half_life,
            stats["goodput"],
            stats["p99"],
            stats["ok"],
            stats["failed"],
            stats["rejections"],
        )
    emit(table)
    # Whatever the decay constant, the protected overlay out-serves the
    # unprotected one — staleness tuning shifts the margin, not the verdict.
    for half_life, stats in sweep.items():
        assert stats["goodput"] > baseline["goodput"], (
            f"half-life {half_life}: shedding+hints fell below the collapsed baseline"
        )
