"""Mutant Query Plan engine (paper §2, ref. [7]).

Plans travel through the overlay as self-contained messages carrying their
own partial results; each peer evaluates what it can, re-optimizes the rest
with exact intermediate cardinalities, and forwards the plan.
"""

from repro.mqp.executor import MQPResult, execute_mutant_plan
from repro.mqp.plan import (
    MutantQueryPlan,
    expression_from_dict,
    expression_to_dict,
)

__all__ = [
    "MutantQueryPlan",
    "MQPResult",
    "execute_mutant_plan",
    "expression_to_dict",
    "expression_from_dict",
]
