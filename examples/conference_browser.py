"""The paper's demonstration scenario: a conference data-sharing system.

"As a practical example, we decided to choose data about contacts and
publications, similar to the schema introduced in section 2." (paper §4)

Loads the Figure-3 domain (authors, publications, conferences) into a
64-peer overlay and runs the full set of query capabilities the demo script
shows, including the paper's exact example query — the skyline of authors by
(age MIN, num_of_pubs MAX) restricted to an ICDE-like series via an edit-
distance filter.

Run:  python examples/conference_browser.py
"""

from repro import UniStore
from repro.bench import ConferenceWorkload

#: The example query of paper §2, verbatim.
PAPER_QUERY = """
SELECT ?name,?age,?cnt
WHERE {(?a,'name',?name) (?a,'age',?age)
 (?a,'num_of_pubs',?cnt)
 (?a,'has_published',?title) (?p,'title',?title)
 (?p,'published_in',?conf) (?c,'confname',?conf)
 (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
}
ORDER BY SKYLINE OF ?age MIN, ?cnt MAX
"""


def main() -> None:
    print("Building a 64-peer overlay and loading the conference domain ...")
    store = UniStore.build(num_peers=64, replication=2, seed=7, enable_qgram_index=True)
    workload = ConferenceWorkload(num_authors=60, num_publications=120, num_conferences=16, seed=7)
    workload.load_into(store)
    print(f"  {store.statistics.total_triples} triples over {len(store.pnet)} peers\n")

    print("=== The paper's example query (skyline of ICDE authors) ===")
    print(PAPER_QUERY)
    result = store.execute(PAPER_QUERY)
    print(result.as_table())
    print(f"[{result.messages} msgs, {result.answer_time * 1000:.0f} ms simulated]\n")

    print("=== Physical plan chosen by the optimizer ===")
    print(result.plan, "\n")

    print("=== Top-5 most prolific authors (top-N ranking operator) ===")
    top = store.execute(
        "SELECT ?name, ?cnt WHERE {(?a,'name',?name) (?a,'num_of_pubs',?cnt)} "
        "ORDER BY ?cnt DESC LIMIT 5"
    )
    print(top.as_table(), "\n")

    print("=== Substring search over conference names ===")
    sub = store.execute("SELECT ?c WHERE {(?p,'confname',?c) FILTER contains(?c, 'ICDE')}")
    print(sub.as_table(max_rows=8), "\n")

    print("=== Similarity search absorbs typos in the data ===")
    fuzzy = store.execute(
        "SELECT DISTINCT ?conf WHERE {(?p,'published_in',?conf) "
        "FILTER edist(?conf, 'ICDE 2003') < 3}"
    )
    print(fuzzy.as_table(max_rows=8), "\n")

    print("=== Query log (traceable & repeatable, paper §3) ===")
    for record in store.log.records:
        print(
            f"  #{record.sequence}: {record.rows} rows, {record.messages} msgs, "
            f"{record.latency * 1000:.0f} ms [{record.mode}]"
        )


if __name__ == "__main__":
    main()
