"""E7 — robustness: "a robust, scalable and reliable massively distributed
storage in arbitrary environments (even if they are unreliable and highly
dynamic)" (paper §3).

256 peers, replication factor r ∈ {1, 2, 4}; an increasing fraction of peers
crashes; we measure the fraction of 120 random key lookups that still
succeed, and the fraction of the key space still covered by an online
replica.  Structural replication plus redundant routing references should
hold lookups near 100% for r >= 2 up to ~30% failures and degrade gracefully
beyond.
"""

from __future__ import annotations

import random
import string


from repro.bench import ResultTable
from repro.errors import RoutingError
from repro.net.churn import ChurnModel
from repro.pgrid import build_network, bulk_load, encode_string

from conftest import emit

NUM_PEERS = 256
FAIL_FRACTIONS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
REPLICATION = [1, 2, 4]
PROBES = 120


def _words(count: int, seed: int) -> list[str]:
    rng = random.Random(seed)
    return ["".join(rng.choice(string.ascii_lowercase) for _ in range(7)) for _ in range(count)]


def _success_rate(pnet, keys, rng) -> float:
    online = [p for p in pnet.peers if p.online]
    if not online:
        return 0.0
    hits = 0
    for key in keys:
        start = rng.choice(online)
        try:
            entries, _trace = pnet.lookup(key, start=start)
        except RoutingError:
            continue
        if entries:
            hits += 1
    return hits / len(keys)


def test_e7_lookup_availability_under_failures(benchmark):
    from repro.pgrid.replication import online_coverage

    table = ResultTable(
        "E7: lookup success rate vs failed fraction (256 peers)",
        ["replication", "failed %", "success rate", "space covered"],
    )
    words = _words(400, seed=71)
    keys = [encode_string(w) for w in words]
    rates = {}
    bench_net = None
    for replication in REPLICATION:
        pnet = build_network(NUM_PEERS, replication=replication, seed=71, split_by="population")
        bulk_load(pnet, [(k, w, w) for k, w in zip(keys, words)])
        churn = ChurnModel(pnet.peers, seed=71)
        probe_rng = random.Random(72)
        probe_keys = probe_rng.sample(keys, PROBES)
        for fraction in FAIL_FRACTIONS:
            churn.recover_all()
            churn.fail_fraction(fraction)
            rate = _success_rate(pnet, probe_keys, probe_rng)
            coverage = online_coverage(pnet)
            rates[(replication, fraction)] = rate
            table.add_row(replication, int(fraction * 100), rate, coverage)
        churn.recover_all()
        if replication == 4:
            bench_net = (pnet, probe_keys)
    emit(table)

    # Claims: full availability without failures; redundancy pays off.
    for replication in REPLICATION:
        assert rates[(replication, 0.0)] == 1.0
    assert rates[(4, 0.3)] > 0.9, "r=4 should survive 30% failures"
    assert rates[(4, 0.3)] > rates[(1, 0.3)]
    assert rates[(2, 0.5)] >= rates[(1, 0.5)]
    # Graceful degradation, not a cliff: r=4 keeps a majority at 50%.
    assert rates[(4, 0.5)] > 0.5

    pnet, probe_keys = bench_net
    rng = random.Random(73)
    benchmark(lambda: _success_rate(pnet, probe_keys[:20], rng))
