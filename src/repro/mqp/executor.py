"""Mutant-query-plan execution engine.

The plan (pending pattern scans + embedded partial results) migrates through
the overlay.  At every stop the holding peer:

1. re-optimizes — :func:`~repro.optimizer.adaptive.choose_next_step` with the
   *actual* intermediate cardinality (paper: the cost model "is repeatedly
   applied at each peer involved in a query");
2. evaluates the chosen pattern — either by probing the A#v/OID/v index once
   per distinct bound value, or by scanning the pattern's region and
   migrating the plan (with its embedded results) to where those results
   live;
3. joins the new bindings into the embedded result and applies every residual
   filter whose variables are now bound;

until no pattern is pending, then ships the result to the coordinator.
Compared with coordinator-driven execution, intermediate results never bounce
through the coordinator — the trade the E4/E2 measurements expose.

Under event-driven execution (:meth:`PGridNetwork.event_driven`) each stop's
index probes fan out as interleaved events — the per-value lookups of one
probe step overlap in simulated time — while successive stops remain
sequential on the clock, exactly the mutant plan's migration semantics.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace as dataclass_replace

from repro.errors import ExecutionError
from repro.net.trace import Trace
from repro.algebra.expressions import satisfies
from repro.algebra.operators import PatternScan
from repro.algebra.semantics import (
    Binding,
    join_key,
    merge_bindings,
)
from repro.mqp.plan import MutantQueryPlan
from repro.optimizer.adaptive import Step, choose_next_step
from repro.optimizer.cost_model import CostModel
from repro.physical.base import ExecutionContext, match_postings
from repro.triples.index import IndexKind, av_key, oid_key, v_key
from repro.vql.ast import Expression, expression_variables


@dataclass
class MQPResult:
    """Outcome of a mutant-plan run, with the per-stop decision log."""

    bindings: list[Binding]
    trace: Trace
    steps: list[str] = field(default_factory=list)
    complete: bool = True


def execute_mutant_plan(
    ctx: ExecutionContext,
    scans: list[PatternScan],
    residual_filters: list[Expression],
    model: CostModel,
) -> MQPResult:
    """Run one group's join tree in mutant-query-plan mode."""
    if not scans:
        raise ExecutionError("mutant plan needs at least one pattern scan")
    plan = MutantQueryPlan(
        pending=list(scans),
        residual_filters=list(residual_filters),
        bindings=None,
        location=ctx.coordinator.node_id,
    )
    trace = Trace.ZERO
    steps: list[str] = []
    complete = True

    while not plan.is_done():
        step = choose_next_step(plan.pending, plan.bindings, model)
        plan.pending.remove(step.scan)
        if step.method.startswith("probe") and plan.bindings is not None:
            step_trace = _probe(ctx, plan, step)
        else:
            step_trace, step_complete = _scan_and_migrate(ctx, plan, step, model)
            complete = complete and step_complete
        trace = trace.then(step_trace)
        plan.bindings = _apply_ready_filters(plan)
        steps.append(
            f"{step.method} {step.scan.pattern} @ {plan.location} "
            f"-> {len(plan.bindings or [])} rows"
        )
        if plan.bindings is not None and not plan.bindings:
            break  # empty intermediate result: the answer is empty

    rows = plan.bindings or []
    # Deliver the final result to the coordinator.
    if plan.location != ctx.coordinator.node_id and rows:
        trace = trace.then(
            ctx.pnet.ship(plan.location, ctx.coordinator.node_id, "mqp-result", size=len(rows))
        )
    return MQPResult(bindings=rows, trace=trace, steps=steps, complete=complete)


# ---------------------------------------------------------------------------
# Step implementations
# ---------------------------------------------------------------------------


def _probe(ctx: ExecutionContext, plan: MutantQueryPlan, step: Step) -> Trace:
    """Index probes for every distinct bound value, batched by destination.

    All probe keys go through one :meth:`PGridNetwork.lookup_many`, so keys
    whose responsible regions coincide share a single route and reply
    instead of one O(log N) lookup each.
    """
    assert plan.bindings is not None and step.shared_variable is not None
    pattern = step.scan.pattern
    holder = ctx.pnet.net.nodes[plan.location]
    variable = step.shared_variable
    values = {row[variable] for row in plan.bindings if variable in row}

    key_for_value: dict[object, tuple[str, IndexKind]] = {}
    for value in values:
        if step.method == "probe-oid":
            # OIDs are strings; coerce like oid_key's other call sites so a
            # numeric join value probes the same key instead of being dropped.
            key_for_value[value] = (oid_key(str(value)), IndexKind.OID)
        elif step.method == "probe-av":
            key_for_value[value] = (
                av_key(str(pattern.predicate.value), value),  # type: ignore[union-attr]
                IndexKind.AV,
            )
        else:  # probe-v
            key_for_value[value] = (v_key(value), IndexKind.V)

    entries_by_key, trace = ctx.pnet.lookup_many(
        [key for key, _kind in key_for_value.values()], start=holder, kind="mqp-probe"
    )

    matches_by_value: dict[object, list[Binding]] = {}
    for value, (key, kind) in key_for_value.items():
        matches_by_value[value] = match_postings(
            entries_by_key.get(key, []), pattern, kind, variable, value, step.scan.filters
        )

    joined: list[Binding] = []
    for row in plan.bindings:
        for match in matches_by_value.get(row.get(variable), ()):
            if all(match.get(k, v) == v for k, v in row.items() if k in match):
                joined.append(merge_bindings(row, match))
    plan.bindings = joined
    return trace


def _scan_and_migrate(
    ctx: ExecutionContext, plan: MutantQueryPlan, step: Step, model: CostModel
) -> tuple[Trace, bool]:
    """Evaluate the pattern in its region and move the plan there."""
    holder = ctx.pnet.net.nodes[plan.location]
    sub_ctx = dataclass_replace(ctx, coordinator=holder)
    from repro.optimizer.planner import Planner, PlannerConfig

    planner = Planner(
        model.stats,
        PlannerConfig(),
        qgram_available=ctx.store.enable_qgram_index,
    )
    planned = planner.plan_scan(step.scan)
    result = planned.op.execute(sub_ctx)

    # The plan migrates to the peer holding the largest share of the scan's
    # result; everything else converges there too.
    carried = len(plan.bindings) if plan.bindings else 0
    if result.groups:
        target_id = max(result.groups, key=lambda group: len(group[1]))[0]
    else:
        target_id = plan.location
    moved = result.shipped_to(ctx, target_id, kind="mqp-migrate")
    trace = moved.trace
    if target_id != plan.location:
        trace = trace.then(
            ctx.pnet.ship(plan.location, target_id, "mqp-migrate", size=max(1, carried))
        )
        plan.hops_travelled += 1
    plan.location = target_id

    new_rows = moved.all_bindings()
    if plan.bindings is None:
        plan.bindings = new_rows
    else:
        shared = sorted(
            set().union(*(set(b) for b in plan.bindings))
            & set().union(*(set(b) for b in new_rows))
        ) if plan.bindings and new_rows else []
        plan.bindings = _local_join(plan.bindings, new_rows, shared)
    return trace, result.complete


def _apply_ready_filters(plan: MutantQueryPlan) -> list[Binding] | None:
    """Evaluate residual filters whose variables are all bound; keep the rest."""
    if plan.bindings is None:
        return None
    bound: set[str] = set()
    for row in plan.bindings:
        bound |= set(row)
    ready = [f for f in plan.residual_filters if expression_variables(f) <= bound]
    if not ready:
        return plan.bindings
    plan.residual_filters = [f for f in plan.residual_filters if f not in ready]
    return [row for row in plan.bindings if all(satisfies(f, row) for f in ready)]


def _local_join(
    left_rows: list[Binding], right_rows: list[Binding], shared: list[str]
) -> list[Binding]:
    if not shared:
        return [merge_bindings(l, r) for l in left_rows for r in right_rows]
    table: dict[tuple, list[Binding]] = defaultdict(list)
    for row in left_rows:
        table[join_key(row, shared)].append(row)
    joined: list[Binding] = []
    for row in right_rows:
        for match in table.get(join_key(row, shared), ()):
            if all(row.get(k, v) == v for k, v in match.items() if k in row):
                joined.append(merge_bindings(match, row))
    return joined
