"""Drive a Zipf-hot workload past the saturation knee, with and without
load shedding + piggybacked queue-depth hints (docs/execution-models.md)."""

from repro.load import (
    LoadModel,
    OpenLoopDriver,
    ServiceProfile,
    ThresholdAdmission,
    goodput,
    summarize,
)
from repro.net.latency import ConstantLatency
from repro.pgrid import build_network, bulk_load, encode_string

KEYS = [encode_string(f"key{i:02d}") for i in range(32)]


def drive(admission: bool, diffusion: str, hints: bool) -> list:
    pnet = build_network(
        32, replication=3, seed=9, split_by="population", latency_model=ConstantLatency(0.01)
    )
    bulk_load(pnet, [(key, f"id{i}", i) for i, key in enumerate(KEYS)])
    gateway = pnet.peers[0]
    policy = ThresholdAdmission(6) if admission else None
    model = LoadModel(
        ServiceProfile({"lookup": 0.004, "result": 0.0002}),
        admission=(
            {p.node_id: policy for p in pnet.peers if p is not gateway} if policy else None
        ),
    )
    with pnet.event_driven(load=model, hints=hints):
        driver = OpenLoopDriver(
            pnet,
            KEYS,
            rate=1500,
            horizon=1.0,
            key_skew=1.2,
            gateways=[gateway],
            diffusion=diffusion,
            seed=3,
        )
        return driver.run()


for label, records in [
    ("no shedding", drive(False, "random", False)),
    ("shed+hints", drive(True, "least-busy", True)),
]:
    stats = summarize(records)
    print(
        f"{label:12s} goodput {goodput(records, 0.25, 1.0):6.1f}/s  "
        f"p99 {stats['p99']:.3f}s  ok {stats['ok']}  shed {stats['rejections']}"
    )
