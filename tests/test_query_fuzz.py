"""Property-based query fuzzing: the distributed engine must agree with the
centralized reference executor on *arbitrary* conjunctive queries.

Hypothesis generates random basic graph patterns (with literal/variable mixes
in every position), random comparison/similarity filters and random modifier
stacks; each generated query runs in both engines over a fixed loaded
overlay.  Any divergence is a real bug in scans, joins, planning or ranking.
"""

from __future__ import annotations


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import UniStore
from repro.bench import ConferenceWorkload

# -- fixed world --------------------------------------------------------------

SEED = 4242


def _build_world():
    store = UniStore.build(num_peers=24, replication=2, seed=SEED, enable_qgram_index=True)
    workload = ConferenceWorkload(num_authors=15, num_publications=30, num_conferences=8, seed=SEED)
    workload.load_into(store)
    triples = store._all_triples()
    return store, triples


STORE, TRIPLES = _build_world()
ATTRIBUTES = sorted({t.attribute for t in TRIPLES})
OIDS = sorted({t.oid for t in TRIPLES})
STRING_VALUES = sorted({t.value for t in TRIPLES if isinstance(t.value, str)})[:40]
NUMBER_VALUES = sorted({t.value for t in TRIPLES if not isinstance(t.value, str)})

VARS = ["a", "b", "c", "x", "y", "z"]


# -- query generator -----------------------------------------------------------


def _term(draw, kind: str) -> str:
    """Render one pattern position as VQL text."""
    if kind == "var":
        return "?" + draw(st.sampled_from(VARS))
    if kind == "oid":
        return "'" + draw(st.sampled_from(OIDS)) + "'"
    if kind == "attr":
        return "'" + draw(st.sampled_from(ATTRIBUTES)) + "'"
    if kind == "str":
        value = draw(st.sampled_from(STRING_VALUES))
        return "'" + value.replace("'", "\\'") + "'"
    if kind == "num":
        return str(draw(st.sampled_from(NUMBER_VALUES)))
    raise AssertionError(kind)


@st.composite
def queries(draw):
    num_patterns = draw(st.integers(1, 3))
    used_vars: list[str] = []
    patterns = []
    for index in range(num_patterns):
        subject_kind = draw(st.sampled_from(["var", "var", "var", "oid"]))
        predicate_kind = draw(st.sampled_from(["attr", "attr", "attr", "var"]))
        object_kind = draw(st.sampled_from(["var", "var", "str", "num"]))
        # Bias towards connected queries: reuse the first subject variable.
        if index > 0 and subject_kind == "var" and used_vars:
            subject = "?" + used_vars[0]
        else:
            subject = _term(draw, subject_kind)
        if subject.startswith("?"):
            used_vars.append(subject[1:])
        predicate = _term(draw, predicate_kind)
        object_ = _term(draw, object_kind)
        if object_.startswith("?"):
            used_vars.append(object_[1:])
        patterns.append(f"({subject},{predicate},{object_})")

    filters = []
    if used_vars and draw(st.booleans()):
        variable = draw(st.sampled_from(used_vars))
        choice = draw(st.integers(0, 3))
        if choice == 0 and NUMBER_VALUES:
            op = draw(st.sampled_from([">=", "<", ">", "<=", "!="]))
            bound = draw(st.sampled_from(NUMBER_VALUES))
            filters.append(f"FILTER ?{variable} {op} {bound}")
        elif choice == 1 and STRING_VALUES:
            probe = draw(st.sampled_from(STRING_VALUES))[:6].replace("'", "")
            filters.append(f"FILTER prefix(?{variable}, '{probe}')")
        elif choice == 2 and STRING_VALUES:
            probe = draw(st.sampled_from(STRING_VALUES)).replace("'", "")
            k = draw(st.integers(1, 2))
            filters.append(f"FILTER edist(?{variable}, '{probe}') <= {k}")
        else:
            needle = draw(st.sampled_from(STRING_VALUES))[1:4].replace("'", "")
            if needle:
                filters.append(f"FILTER contains(?{variable}, '{needle}')")

    body = " ".join(patterns + filters)
    select_vars = sorted(set(used_vars))
    select = ", ".join(f"?{v}" for v in select_vars) if select_vars else "*"
    distinct = "DISTINCT " if draw(st.booleans()) else ""
    text = f"SELECT {distinct}{select} WHERE {{{body}}}"
    return text


def _canonical(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows)


# -- the properties --------------------------------------------------------------


@given(queries())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_optimized_agrees_with_reference(vql):
    reference = STORE.execute(vql, mode="reference")
    optimized = STORE.execute(vql, mode="optimized")
    assert _canonical(optimized.rows) == _canonical(reference.rows), vql
    assert optimized.complete


@given(queries())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_mqp_agrees_with_reference(vql):
    reference = STORE.execute(vql, mode="reference")
    mqp = STORE.execute(vql, mode="mqp")
    assert _canonical(mqp.rows) == _canonical(reference.rows), vql


@given(queries(), st.sampled_from(["ship", "rehash"]))
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_forced_join_strategies_agree(vql, strategy):
    from repro.errors import PlanningError
    from repro.optimizer import PlannerConfig

    reference = STORE.execute(vql, mode="reference")
    try:
        forced = STORE.execute(vql, config=PlannerConfig(join_strategy=strategy))
    except PlanningError:
        return  # strategy not applicable to this query shape — fine
    assert _canonical(forced.rows) == _canonical(reference.rows), (vql, strategy)
