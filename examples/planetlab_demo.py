"""The PlanetLab deployment, simulated (paper §4).

"We will show that even with up to 400 PlanetLab nodes query answer times
are still only a couple of seconds."

Builds a 400-peer overlay under the heavy-tailed PlanetLab latency model,
loads the conference domain, and runs the demo's query mix, reporting the
simulated answer-time distribution per query class — the numbers behind
experiment E2.

Run:  python examples/planetlab_demo.py
"""

from repro import UniStore
from repro.bench import ConferenceWorkload, ResultTable, mean, median, percentile
from repro.net.latency import PlanetLabLatency


def main() -> None:
    print("Building a 400-peer overlay with PlanetLab-like WAN latencies ...")
    store = UniStore.build(
        num_peers=400,
        replication=2,
        seed=2007,
        latency_model=PlanetLabLatency(),
        enable_qgram_index=True,
    )
    workload = ConferenceWorkload(
        num_authors=150, num_publications=300, num_conferences=24, seed=2007
    )
    workload.load_into(store)
    print(f"  {store.statistics.total_triples} triples over {len(store.pnet)} peers\n")

    table = ResultTable(
        "Query answer times, 400 peers, PlanetLab latency model",
        ["query class", "runs", "median s", "mean s", "p95 s", "mean msgs"],
    )
    runs_per_class = 10
    for name, vql in workload.query_mix().items():
        latencies, messages = [], []
        for _ in range(runs_per_class):
            result = store.execute(vql)
            latencies.append(result.answer_time)
            messages.append(float(result.messages))
        table.add_row(
            name,
            runs_per_class,
            median(latencies),
            mean(latencies),
            percentile(latencies, 95),
            mean(messages),
        )
    print(table.render())
    print(
        "\nPaper's claim: 'query answer times are still only a couple of "
        "seconds' at 400 nodes — the mix above should sit in the 0.1-3 s band."
    )


if __name__ == "__main__":
    main()
