"""Utility modules: bench harness statistics, result presentation, messages."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench import (
    ResultTable,
    fit_log2_slope,
    inject_typo,
    make_name,
    make_title,
    mean,
    median,
    percentile,
    zipf_values,
)
from repro.core.results import QueryResult
from repro.net.message import HEADER_SIZE, Message, payload_size
from repro.net.trace import Trace
from repro.strings import edit_distance


class TestResultTable:
    def test_render_alignment(self):
        table = ResultTable("demo", ["name", "value"])
        table.add_row("a", 1)
        table.add_row("longer", 2.5)
        text = table.render()
        assert "== demo ==" in text
        lines = text.splitlines()
        assert len({len(line) for line in lines[1:]}) == 1  # equal widths

    def test_wrong_arity_rejected(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_markdown(self):
        table = ResultTable("t", ["x"])
        table.add_row(3.14159)
        md = table.markdown()
        assert md.startswith("| x |")
        assert "| 3.142 |" in md

    def test_float_formatting(self):
        table = ResultTable("t", ["v"])
        table.add_row(1234.5678)
        assert "1234.6" in table.render()


class TestStatisticsHelpers:
    def test_mean_median(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0
        assert median([1.0, 3.0, 2.0]) == 2.0

    def test_percentile_interpolates(self):
        values = [0.0, 10.0]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 0) == 0.0
        assert percentile(values, 100) == 10.0
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99) == 7.0

    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=30))
    def test_percentile_bounds(self, values):
        p50 = percentile(values, 50)
        assert min(values) <= p50 <= max(values)

    def test_fit_log2_slope_exact(self):
        sizes = [16, 32, 64, 128]
        values = [4.0, 5.0, 6.0, 7.0]  # exactly log2
        assert fit_log2_slope(sizes, values) == pytest.approx(1.0)

    def test_fit_log2_slope_flat(self):
        assert fit_log2_slope([16, 64], [3.0, 3.0]) == pytest.approx(0.0)

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_log2_slope([16], [1.0])


class TestWorkloadHelpers:
    def test_zipf_uniform_degenerates(self):
        import random

        rng = random.Random(1)
        samples = zipf_values(rng, 10, 5000, s=0.0)
        counts = [samples.count(i) for i in range(10)]
        assert max(counts) < 2 * min(counts)  # roughly uniform

    def test_zipf_skew_concentrates(self):
        import random

        rng = random.Random(1)
        samples = zipf_values(rng, 10, 5000, s=1.5)
        assert samples.count(0) > len(samples) * 0.3

    def test_zipf_validates(self):
        import random

        with pytest.raises(ValueError):
            zipf_values(random.Random(0), 0, 10, 1.0)

    def test_inject_typo_one_edit(self):
        import random

        rng = random.Random(5)
        for _ in range(50):
            original = "conference"
            typo = inject_typo(rng, original)
            assert edit_distance(original, typo) <= 2  # transposition = 2 edits

    def test_name_and_title_generators(self):
        import random

        rng = random.Random(2)
        assert make_name(rng)[0].isupper()
        assert len(make_title(rng).split()) >= 3


class TestQueryResult:
    def _result(self):
        return QueryResult(
            rows=[{"a": 1, "b": "x"}, {"a": 2, "b": None}],
            variables=("a", "b"),
            trace=Trace(5, 3, 0.25),
        )

    def test_len_iter(self):
        result = self._result()
        assert len(result) == 2
        assert [r["a"] for r in result] == [1, 2]

    def test_metrics(self):
        result = self._result()
        assert result.answer_time == 0.25
        assert result.messages == 5

    def test_column(self):
        assert self._result().column("a") == [1, 2]

    def test_as_table_handles_none(self):
        text = self._result().as_table()
        assert "?a" in text and "?b" in text
        assert text.count("\n") == 3

    def test_as_table_truncates(self):
        result = QueryResult(rows=[{"v": i} for i in range(30)], variables=("v",))
        text = result.as_table(max_rows=5)
        assert "25 more rows" in text

    def test_as_table_empty(self):
        assert QueryResult(rows=[], variables=()).as_table() == "(no columns)"

    def test_sorted_rows_deterministic(self):
        first = QueryResult(rows=[{"a": 2}, {"a": 1}], variables=("a",))
        second = QueryResult(rows=[{"a": 1}, {"a": 2}], variables=("a",))
        assert first.sorted_rows() == second.sorted_rows()


class TestMessage:
    def test_defaults(self):
        message = Message("a", "b", "kind")
        assert message.size == HEADER_SIZE

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message("a", "b", "kind", size=-1)

    def test_payload_size(self):
        assert payload_size(None) == 0
        assert payload_size([1, 2, 3]) == 3
        assert payload_size({"k": 1}) == 1
        assert payload_size("scalar") == 1
