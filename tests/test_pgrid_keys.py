"""Key-space semantics: comparisons, responsibility, partitions, KeyRange."""

import pytest
from fractions import Fraction
from hypothesis import given
from hypothesis import strategies as st

from repro.pgrid.keys import (
    KeyRange,
    common_prefix_length,
    compare_keys,
    flip,
    increment_path,
    intervals_intersect,
    is_complete_partition,
    is_prefix_free,
    key_fraction,
    key_le,
    path_interval,
    responsible,
    validate_key,
)

BITS = st.text(alphabet="01", max_size=12)


class TestBasics:
    def test_validate_accepts_bits(self):
        assert validate_key("0101") == "0101"
        assert validate_key("") == ""

    def test_validate_rejects_other(self):
        with pytest.raises(ValueError):
            validate_key("012")

    def test_flip(self):
        assert flip("0") == "1" and flip("1") == "0"
        with pytest.raises(ValueError):
            flip("x")

    def test_common_prefix_length(self):
        assert common_prefix_length("0101", "0111") == 2
        assert common_prefix_length("", "0") == 0
        assert common_prefix_length("01", "01") == 2


class TestComparison:
    def test_zero_padding_equality(self):
        assert compare_keys("01", "010") == 0
        assert compare_keys("01", "0100") == 0

    def test_strict_order(self):
        assert compare_keys("001", "01") == -1
        assert compare_keys("1", "01") == 1

    def test_key_le(self):
        assert key_le("01", "010")
        assert key_le("001", "01")
        assert not key_le("1", "01")

    @given(BITS, BITS)
    def test_compare_agrees_with_fractions(self, a, b):
        by_fraction = (key_fraction(a) > key_fraction(b)) - (key_fraction(a) < key_fraction(b))
        assert compare_keys(a, b) == by_fraction


class TestResponsibility:
    def test_long_key(self):
        assert responsible("01", "0110")
        assert not responsible("01", "0010")

    def test_key_shorter_than_path(self):
        assert responsible("010", "01")  # 0.01 falls at left edge of 010
        assert not responsible("011", "01")

    def test_empty_path_covers_everything(self):
        assert responsible("", "10110")

    @given(BITS, BITS)
    def test_responsible_iff_point_in_interval(self, path, key):
        lo, hi = path_interval(path)
        point = key_fraction(key)
        assert responsible(path, key) == (lo <= point < hi)


class TestIntervals:
    def test_path_interval(self):
        assert path_interval("1") == (Fraction(1, 2), Fraction(1))
        assert path_interval("") == (Fraction(0), Fraction(1))

    def test_intersect_inclusive_bounds(self):
        assert intervals_intersect("01", "0100", "0111")
        assert intervals_intersect("01", "00", "01")  # hi touches left edge
        assert not intervals_intersect("01", "10", "11")

    def test_increment_path(self):
        assert increment_path("010") == "011"
        assert increment_path("011") == "1"
        assert increment_path("0") == "1"
        assert increment_path("111") is None
        assert increment_path("") is None

    @given(BITS.filter(lambda p: p.rstrip("1") != ""))
    def test_increment_is_exact_supremum(self, path):
        nxt = increment_path(path)
        _lo, hi = path_interval(path)
        assert key_fraction(nxt) == hi


class TestPartitions:
    def test_prefix_free(self):
        assert is_prefix_free(["00", "01", "1"])
        assert not is_prefix_free(["0", "01"])

    def test_complete_partition(self):
        assert is_complete_partition(["00", "01", "1"])
        assert is_complete_partition([""])
        assert not is_complete_partition(["00", "01"])  # misses half
        assert not is_complete_partition([])

    def test_duplicates_collapse(self):
        # Replicas share paths; the *distinct* set must tile the space.
        assert is_complete_partition(["0", "0", "1"])


class TestKeyRange:
    def test_subtree_contains_only_prefix(self):
        kr = KeyRange.subtree("01")
        assert kr.contains("0100")
        assert kr.contains("01")
        assert not kr.contains("1")
        assert not kr.contains("001")

    def test_at_least(self):
        kr = KeyRange.at_least("1")
        assert kr.contains("11")
        assert not kr.contains("01")

    def test_everything(self):
        kr = KeyRange.everything()
        assert kr.contains("") and kr.contains("111111")

    def test_half_open_upper_bound(self):
        kr = KeyRange("00", "01")
        assert kr.contains("001")
        assert not kr.contains("01")
        assert not kr.contains("0100")  # equal point to hi

    def test_intersects_path(self):
        kr = KeyRange("0100", "0111")
        assert kr.intersects_path("01")
        assert kr.intersects_path("010")
        assert not kr.intersects_path("00")

    def test_top_of_space_subtree(self):
        kr = KeyRange.subtree("111")
        assert kr.hi is None
        assert kr.contains("1111")

    def test_equality_semantics(self):
        assert KeyRange("01", "10") == KeyRange("010", "100")
        assert hash(KeyRange("01", "10")) == hash(KeyRange("010", "100"))

    @given(BITS, BITS)
    def test_contains_matches_fraction_interval(self, lo, key):
        kr = KeyRange.at_least(lo)
        assert kr.contains(key) == (key_fraction(key) >= key_fraction(lo))
