"""Centralized reference executor.

Evaluates a logical plan against a plain in-memory list of triples — no
network, no indexes.  This is the semantic ground truth: tests assert that
every distributed physical strategy returns exactly what this executor
returns (modulo order, unless the plan sorts).
"""

from __future__ import annotations

from collections import defaultdict

from repro.algebra.expressions import satisfies
from repro.algebra.operators import (
    Difference,
    Intersection,
    Join,
    LeftJoin,
    Limit,
    LogicalPlan,
    OrderBy,
    PatternScan,
    Projection,
    Selection,
    SimilarityJoin,
    Skyline,
    TopN,
    Union,
)
from repro.algebra.semantics import (
    Binding,
    join_key,
    match_pattern,
    merge_bindings,
    order_sort_key,
    skyline_of,
)
from repro.strings import edit_distance_within
from repro.triples.triple import Triple


def execute_reference(plan: LogicalPlan, triples: list[Triple]) -> list[Binding]:
    """Evaluate ``plan`` over ``triples``, centrally."""
    if isinstance(plan, PatternScan):
        bindings = []
        for triple in triples:
            binding = match_pattern(plan.pattern, triple)
            if binding is None:
                continue
            if all(satisfies(f, binding) for f in plan.filters):
                bindings.append(binding)
        return bindings

    if isinstance(plan, Selection):
        return [b for b in execute_reference(plan.child, triples) if satisfies(plan.predicate, b)]

    if isinstance(plan, Projection):
        rows = execute_reference(plan.child, triples)
        if plan.variables:
            names = [v.name for v in plan.variables]
            rows = [{name: b.get(name) for name in names} for b in rows]
        if plan.distinct:
            seen = set()
            unique = []
            for row in rows:
                key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        return rows

    if isinstance(plan, Join):
        return _hash_join(
            execute_reference(plan.left, triples),
            execute_reference(plan.right, triples),
            sorted(plan.join_variables()),
        )

    if isinstance(plan, LeftJoin):
        left_rows = execute_reference(plan.left, triples)
        right_rows = execute_reference(plan.right, triples)
        shared = sorted(plan.join_variables())
        table = defaultdict(list)
        for row in right_rows:
            table[join_key(row, shared)].append(row)
        result = []
        for row in left_rows:
            matches = [m for m in table.get(join_key(row, shared), [])]
            if matches:
                result.extend(merge_bindings(row, m) for m in matches)
            else:
                result.append(dict(row))
        return result

    if isinstance(plan, SimilarityJoin):
        left_rows = execute_reference(plan.left, triples)
        right_rows = execute_reference(plan.right, triples)
        result = []
        for left_row in left_rows:
            left_value = left_row.get(plan.left_variable.name)
            if not isinstance(left_value, str):
                continue
            for right_row in right_rows:
                right_value = right_row.get(plan.right_variable.name)
                if not isinstance(right_value, str):
                    continue
                if edit_distance_within(left_value, right_value, plan.max_distance) is None:
                    continue
                merged = merge_bindings(left_row, right_row)
                result.append(merged)
        return result

    if isinstance(plan, Union):
        result = []
        for child in plan.inputs:
            result.extend(execute_reference(child, triples))
        return result

    if isinstance(plan, Intersection):
        shared = sorted(plan.output_variables())
        sets = []
        rows_by_key: dict[tuple, Binding] = {}
        for child in plan.inputs:
            keys = set()
            for row in execute_reference(child, triples):
                key = join_key(row, shared)
                keys.add(key)
                rows_by_key.setdefault(key, {name: row.get(name) for name in shared})
            sets.append(keys)
        common = set.intersection(*sets) if sets else set()
        return [rows_by_key[key] for key in common]

    if isinstance(plan, Difference):
        shared = sorted(plan.left.output_variables() & plan.right.output_variables())
        right_keys = {join_key(row, shared) for row in execute_reference(plan.right, triples)}
        return [
            row
            for row in execute_reference(plan.left, triples)
            if join_key(row, shared) not in right_keys
        ]

    if isinstance(plan, OrderBy):
        rows = execute_reference(plan.child, triples)
        return sorted(rows, key=order_sort_key(plan.items))

    if isinstance(plan, Limit):
        rows = execute_reference(plan.child, triples)
        end = None if plan.count is None else plan.offset + plan.count
        return rows[plan.offset : end]

    if isinstance(plan, TopN):
        rows = sorted(execute_reference(plan.child, triples), key=order_sort_key(plan.items))
        return rows[plan.offset : plan.offset + plan.n]

    if isinstance(plan, Skyline):
        return skyline_of(execute_reference(plan.child, triples), plan.items)

    raise TypeError(f"reference executor cannot handle {type(plan).__name__}")


def _hash_join(
    left_rows: list[Binding], right_rows: list[Binding], shared: list[str]
) -> list[Binding]:
    if not shared:
        return [merge_bindings(l, r) for l in left_rows for r in right_rows]  # cartesian product
    if len(right_rows) < len(left_rows):
        left_rows, right_rows = right_rows, left_rows
    table = defaultdict(list)
    for row in left_rows:
        table[join_key(row, shared)].append(row)
    result = []
    for row in right_rows:
        for match in table.get(join_key(row, shared), ()):
            result.append(merge_bindings(match, row))
    return result
