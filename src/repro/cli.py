"""Interactive shell — the paper's demonstration interface (§4).

    "the user can formulate VQL queries in a separate tabbed window, results
     will be displayed in the next tab.  The basic interface is completed by
     the opportunities to inspect the local data and the locally built
     routing tables."

This is the headless equivalent of the Figure-4 GUI: a line-oriented REPL
over a :class:`~repro.core.unistore.UniStore`.  It is fully scriptable (feed
lines, capture output), which is how the tests drive it, and installable as
the ``unistore-demo`` console command.

Commands::

    query <VQL...>;          run a query (may span lines; ends with ';')
    explain <VQL...>;        show logical + physical plan without executing
    insert k=v [k=v ...]     insert one logical tuple
    map <src> <dst> [conf]   add a schema mapping
    peers                    list peers with path / load / online state
    peer <id>                inspect one peer: local data + routing table
    stats                    catalog statistics summary
    log                      the query log (traceability, §3)
    demo                     load the Figure-3 conference workload
    help                     this text
    quit                     leave
"""

from __future__ import annotations

import argparse
import shlex
import sys
from typing import Iterable, TextIO

from repro.core.unistore import UniStore
from repro.errors import UniStoreError
from repro.net.latency import ConstantLatency, PlanetLabLatency
from repro.triples.triple import Value

PROMPT = "unistore> "
CONTINUATION = "      ... "


def _parse_value(text: str) -> Value:
    """Interpret a command-line value: int, then float, then string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


class UniStoreShell:
    """A scriptable REPL over one UniStore instance."""

    def __init__(self, store: UniStore, out: TextIO | None = None):
        self.store = store
        self.out = out or sys.stdout
        self.running = True

    # -- plumbing ------------------------------------------------------------

    def write(self, text: str = "") -> None:
        print(text, file=self.out)

    def run(self, lines: Iterable[str], interactive: bool = False) -> None:
        """Process command lines until exhausted or ``quit``."""
        buffer: list[str] = []
        for raw in lines:
            line = raw.rstrip("\n")
            if buffer:  # inside a multi-line query/explain
                buffer.append(line)
                if line.rstrip().endswith(";"):
                    self.dispatch(" ".join(buffer))
                    buffer = []
                continue
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            head = stripped.split(None, 1)[0].lower()
            if head in ("query", "explain") and not stripped.rstrip().endswith(";"):
                buffer = [stripped]
                continue
            self.dispatch(stripped)
            if not self.running:
                break
        if buffer:
            self.dispatch(" ".join(buffer))

    def dispatch(self, line: str) -> None:
        command, _space, rest = line.strip().partition(" ")
        handler = getattr(self, f"cmd_{command.lower()}", None)
        if handler is None:
            self.write(f"unknown command {command!r} — try 'help'")
            return
        try:
            handler(rest.strip())
        except UniStoreError as error:
            self.write(f"error: {error}")

    # -- commands --------------------------------------------------------------

    def cmd_help(self, _rest: str) -> None:
        self.write(__doc__.split("Commands::", 1)[1].rstrip())

    def cmd_quit(self, _rest: str) -> None:
        self.running = False
        self.write("bye")

    cmd_exit = cmd_quit

    def cmd_query(self, rest: str) -> None:
        vql = rest.rstrip(";").strip()
        if not vql:
            self.write("usage: query <VQL...>;")
            return
        result = self.store.execute(vql)
        self.write(result.as_table())
        self.write(
            f"[{len(result.rows)} rows, {result.messages} msgs, "
            f"{result.trace.hops} hops, {result.answer_time * 1000:.0f} ms simulated"
            + ("" if result.complete else ", INCOMPLETE")
            + "]"
        )

    def cmd_explain(self, rest: str) -> None:
        vql = rest.rstrip(";").strip()
        if not vql:
            self.write("usage: explain <VQL...>;")
            return
        self.write(self.store.explain(vql))

    def cmd_insert(self, rest: str) -> None:
        if not rest:
            self.write("usage: insert key=value [key=value ...]")
            return
        values: dict[str, Value] = {}
        for token in shlex.split(rest):
            key, eq, value = token.partition("=")
            if not eq or not key:
                self.write(f"bad field {token!r} (expected key=value)")
                return
            values[key] = _parse_value(value)
        oid, trace = self.store.insert_tuple(values)
        self.write(f"inserted {oid} ({len(values)} attributes, {trace.messages} msgs)")

    def cmd_map(self, rest: str) -> None:
        parts = rest.split()
        if len(parts) not in (2, 3):
            self.write("usage: map <source-attr> <target-attr> [confidence]")
            return
        confidence = float(parts[2]) if len(parts) == 3 else 1.0
        self.store.add_mapping(parts[0], parts[1], confidence)
        self.write(f"mapping {parts[0]} = {parts[1]} (confidence {confidence})")

    def cmd_peers(self, _rest: str) -> None:
        self.write(f"{'peer':<12} {'path':<16} {'load':>6}  state")
        for peer in sorted(self.store.pnet.peers, key=lambda p: (p.path, p.node_id)):
            state = "up" if peer.online else "DOWN"
            self.write(f"{peer.node_id:<12} {peer.path or '(root)':<16} {peer.load:>6}  {state}")

    def cmd_peer(self, rest: str) -> None:
        if not rest:
            self.write("usage: peer <peer-id>")
            return
        try:
            peer = self.store.pnet.peer(rest)
        except Exception:
            self.write(f"no such peer {rest!r}")
            return
        self.write(f"peer {peer.node_id}: path={peer.path!r} load={peer.load} "
                   f"{'online' if peer.online else 'OFFLINE'}")
        self.write(f"replicas: {', '.join(peer.replicas) or '(none)'}")
        self.write("routing table:")
        for level in range(len(peer.path)):
            refs = peer.routing.refs(level)
            self.write(f"  level {level} (prefix {peer.required_prefix(level)}): "
                       f"{', '.join(refs) or '(empty)'}")
        self.write("local data (first 10 entries):")
        for entry in list(peer.store)[:10]:
            self.write(f"  {entry.key[:24]}...  {entry.item_id[:40]!r} v{entry.version}")

    def cmd_stats(self, _rest: str) -> None:
        stats = self.store.statistics
        self.write(f"peers: {stats.num_peers}  groups: {stats.num_groups}  "
                   f"replication: {stats.replication:.2f}")
        self.write(f"triples: {stats.total_triples}  distinct OIDs: {stats.distinct_oids}")
        self.write(f"{'attribute':<20} {'count':>7} {'distinct':>9}")
        for name in sorted(stats.attributes):
            attribute = stats.attributes[name]
            self.write(f"{name:<20} {attribute.count:>7} {attribute.distinct:>9}")

    def cmd_log(self, _rest: str) -> None:
        if not self.store.log.records:
            self.write("(no queries yet)")
            return
        for record in self.store.log.records:
            self.write(
                f"#{record.sequence} [{record.mode}] {record.rows} rows, "
                f"{record.messages} msgs, {record.latency * 1000:.0f} ms :: "
                f"{record.text.strip()[:60]}"
            )

    def cmd_demo(self, _rest: str) -> None:
        from repro.bench.workloads import ConferenceWorkload

        workload = ConferenceWorkload(
            num_authors=40, num_publications=80, num_conferences=12, seed=7
        )
        workload.load_into(self.store)
        self.write(
            "loaded the Figure-3 conference domain: "
            f"{self.store.statistics.total_triples} triples"
        )


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``unistore-demo`` console command."""
    parser = argparse.ArgumentParser(description="UniStore demonstration shell")
    parser.add_argument("--peers", type=int, default=32)
    parser.add_argument("--replication", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--latency", choices=["constant", "planetlab"], default="constant"
    )
    parser.add_argument("--demo", action="store_true", help="preload the demo domain")
    args = parser.parse_args(argv)

    latency = PlanetLabLatency() if args.latency == "planetlab" else ConstantLatency(0.05)
    store = UniStore.build(
        num_peers=args.peers,
        replication=args.replication,
        seed=args.seed,
        latency_model=latency,
        enable_qgram_index=True,
    )
    shell = UniStoreShell(store)
    shell.write(f"UniStore: {args.peers} peers, replication {args.replication}. "
                "Type 'help' for commands.")
    if args.demo:
        shell.cmd_demo("")

    def prompt_lines():
        while shell.running:
            try:
                yield input(PROMPT)
            except EOFError:
                break

    shell.run(prompt_lines(), interactive=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
