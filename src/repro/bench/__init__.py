"""Workload generators and the experiment harness (deliverable d)."""

from repro.bench.harness import (
    ResultTable,
    fit_log2_slope,
    mean,
    median,
    percentile,
)
from repro.bench.workloads import (
    AREAS,
    SERIES,
    ConferenceWorkload,
    batched,
    ingest_tuples,
    inject_typo,
    lookup_key_pool,
    make_name,
    make_title,
    poisson_arrivals,
    skewed_strings,
    zipf_cumulative,
    zipf_rank,
    zipf_values,
)

__all__ = [
    "ConferenceWorkload",
    "zipf_values",
    "zipf_cumulative",
    "zipf_rank",
    "skewed_strings",
    "batched",
    "ingest_tuples",
    "poisson_arrivals",
    "lookup_key_pool",
    "inject_typo",
    "make_name",
    "make_title",
    "SERIES",
    "AREAS",
    "ResultTable",
    "mean",
    "median",
    "percentile",
    "fit_log2_slope",
]
