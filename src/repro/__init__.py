"""UniStore: Querying a DHT-based Universal Storage — full reproduction.

Reproduces Karnstedt et al., ICDE 2007: a triple storage on top of the
P-Grid DHT with the VQL query language, a logical algebra with similarity and
ranking operators, multiple physical strategies per operator, a cost model
with logarithmic guarantees, and adaptive mutant-query-plan execution.

Quickstart::

    from repro import UniStore

    store = UniStore.build(num_peers=64, replication=2, seed=7)
    store.insert_tuple({"name": "Alice", "age": 30})
    result = store.execute("SELECT ?n WHERE {(?p,'name',?n)}")
    print(result.as_table())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-claim reproduction index.
"""

from repro.core import QueryResult, UniStore
from repro.errors import (
    ExecutionError,
    NetworkError,
    PlanningError,
    RoutingError,
    StorageError,
    UniStoreError,
    VQLError,
    VQLSyntaxError,
)
from repro.triples import SchemaMapping, Triple

__version__ = "1.0.0"

__all__ = [
    "UniStore",
    "QueryResult",
    "Triple",
    "SchemaMapping",
    "UniStoreError",
    "NetworkError",
    "RoutingError",
    "StorageError",
    "VQLError",
    "VQLSyntaxError",
    "PlanningError",
    "ExecutionError",
    "__version__",
]
