"""Filter-expression evaluation and analysis.

Two jobs:

* **Evaluation** — :func:`evaluate` computes an expression under a binding
  (SPARQL-style error semantics: anything touching an unbound variable
  evaluates to ``None``, and a ``None`` predicate is treated as *not
  satisfied*).

* **Analysis** — :func:`extract_constraints` decomposes the AND-connected
  part of a filter into sargable constraints the planner can push into index
  scans: value ranges on one variable, string-prefix constraints, and the
  similarity constraint ``edist(?v, 'text') < k`` that activates the q-gram
  strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import VQLError
from repro.strings import edit_distance
from repro.vql.ast import (
    BoolOp,
    Comparison,
    Expression,
    FunctionCall,
    Literal,
    Not,
    Var,
)

Binding = Mapping[str, Any]


# ---------------------------------------------------------------------------
# Built-in functions
# ---------------------------------------------------------------------------


def _fn_edist(a: Any, b: Any) -> int | None:
    if not isinstance(a, str) or not isinstance(b, str):
        return None
    return edit_distance(a, b)


def _fn_contains(haystack: Any, needle: Any) -> bool | None:
    if not isinstance(haystack, str) or not isinstance(needle, str):
        return None
    return needle in haystack


def _fn_prefix(text: Any, prefix: Any) -> bool | None:
    if not isinstance(text, str) or not isinstance(prefix, str):
        return None
    return text.startswith(prefix)


def _fn_length(text: Any) -> int | None:
    return len(text) if isinstance(text, str) else None


def _fn_lower(text: Any) -> str | None:
    return text.lower() if isinstance(text, str) else None


def _fn_upper(text: Any) -> str | None:
    return text.upper() if isinstance(text, str) else None


def _fn_abs(x: Any) -> float | int | None:
    return abs(x) if isinstance(x, (int, float)) and not isinstance(x, bool) else None


FUNCTIONS: dict[str, Callable[..., Any]] = {
    "edist": _fn_edist,
    "contains": _fn_contains,
    "prefix": _fn_prefix,
    "length": _fn_length,
    "lower": _fn_lower,
    "upper": _fn_upper,
    "abs": _fn_abs,
}


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def evaluate(expr: Expression, binding: Binding) -> Any:
    """Evaluate ``expr`` under ``binding``; ``None`` signals an error value."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Var):
        return binding.get(expr.name)
    if isinstance(expr, Comparison):
        return _compare(expr.op, evaluate(expr.left, binding), evaluate(expr.right, binding))
    if isinstance(expr, Not):
        inner = evaluate(expr.operand, binding)
        return None if inner is None else not _truthy(inner)
    if isinstance(expr, BoolOp):
        return _bool_op(expr, binding)
    if isinstance(expr, FunctionCall):
        function = FUNCTIONS.get(expr.name)
        if function is None:
            raise VQLError(f"unknown function {expr.name!r}")
        args = [evaluate(arg, binding) for arg in expr.args]
        if any(arg is None for arg in args):
            return None
        return function(*args)
    raise TypeError(f"not an expression: {expr!r}")


def satisfies(expr: Expression, binding: Binding) -> bool:
    """Filter semantics: true iff the expression evaluates to a truthy value."""
    return _truthy(evaluate(expr, binding))


def _truthy(value: Any) -> bool:
    return bool(value) and value is not None


def _bool_op(expr: BoolOp, binding: Binding) -> bool | None:
    """SPARQL three-valued logic for AND/OR."""
    saw_error = False
    if expr.op == "and":
        for operand in expr.operands:
            value = evaluate(operand, binding)
            if value is None:
                saw_error = True
            elif not _truthy(value):
                return False
        return None if saw_error else True
    if expr.op == "or":
        for operand in expr.operands:
            value = evaluate(operand, binding)
            if value is None:
                saw_error = True
            elif _truthy(value):
                return True
        return None if saw_error else False
    raise VQLError(f"unknown boolean operator {expr.op!r}")


def _compare(op: str, left: Any, right: Any) -> bool | None:
    if left is None or right is None:
        return None
    left_num = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_num = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_num != right_num:
        # Mixed types: only (in)equality is defined, and values are unequal.
        if op == "=":
            return False
        if op == "!=":
            return True
        return None
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise VQLError(f"unknown comparison operator {op!r}")


# ---------------------------------------------------------------------------
# Sargable-constraint extraction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RangeConstraint:
    """``var <op> literal`` — pushable into an A#v range scan."""

    variable: str
    op: str  # =, !=, <, <=, >, >=
    value: Any


@dataclass(frozen=True)
class PrefixConstraint:
    """``prefix(?var, 'text')`` — pushable into a prefix scan."""

    variable: str
    prefix: str


@dataclass(frozen=True)
class SubstringConstraint:
    """``contains(?var, 'text')`` — answerable via the q-gram index."""

    variable: str
    substring: str


@dataclass(frozen=True)
class EdistConstraint:
    """``edist(?var, 'text') < k`` — the q-gram similarity constraint."""

    variable: str
    text: str
    max_distance: int


Constraint = RangeConstraint | PrefixConstraint | SubstringConstraint | EdistConstraint

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


def extract_constraints(expr: Expression) -> list[Constraint]:
    """Sargable constraints implied by ``expr`` (conjunctive part only).

    Constraints are *necessary* conditions: every result row satisfies each
    returned constraint, so index scans restricted by them never lose
    answers.  Disjunctions and NOT are conservatively ignored.
    """
    constraints: list[Constraint] = []
    _collect(expr, constraints)
    return constraints


def _collect(expr: Expression, out: list[Constraint]) -> None:
    if isinstance(expr, BoolOp) and expr.op == "and":
        for operand in expr.operands:
            _collect(operand, out)
        return
    if isinstance(expr, Comparison):
        _collect_comparison(expr, out)
        return
    if isinstance(expr, FunctionCall):
        constraint = _function_constraint(expr)
        if constraint is not None:
            out.append(constraint)


def _collect_comparison(expr: Comparison, out: list[Constraint]) -> None:
    left, right, op = expr.left, expr.right, expr.op
    if isinstance(right, Var) and isinstance(left, Literal):
        left, right, op = right, left, _FLIP[op]
    if isinstance(left, Var) and isinstance(right, Literal):
        out.append(RangeConstraint(left.name, op, right.value))
        return
    # edist(?v, 'text') < k  /  <= k-1 styles
    if isinstance(left, FunctionCall) and isinstance(right, Literal):
        constraint = _edist_bound(left, op, right.value)
        if constraint is not None:
            out.append(constraint)
        return
    if isinstance(right, FunctionCall) and isinstance(left, Literal):
        constraint = _edist_bound(right, _FLIP[op], left.value)
        if constraint is not None:
            out.append(constraint)


def _edist_bound(call: FunctionCall, op: str, bound: Any) -> EdistConstraint | None:
    if call.name != "edist" or not isinstance(bound, (int, float)) or isinstance(bound, bool):
        return None
    var, text = _var_and_text(call)
    if var is None:
        return None
    if op == "<":
        k = int(bound) - 1 if float(bound).is_integer() else int(bound)
    elif op == "<=":
        k = int(bound)
    elif op == "=":
        k = int(bound)
    else:
        return None
    if k < 0:
        k = -1  # unsatisfiable; scans may return nothing
    return EdistConstraint(var, text, k)


def _var_and_text(call: FunctionCall) -> tuple[str | None, str]:
    if len(call.args) != 2:
        return None, ""
    a, b = call.args
    if isinstance(a, Var) and isinstance(b, Literal) and isinstance(b.value, str):
        return a.name, b.value
    if isinstance(b, Var) and isinstance(a, Literal) and isinstance(a.value, str):
        return b.name, a.value
    return None, ""


def _function_constraint(call: FunctionCall) -> Constraint | None:
    if call.name == "prefix":
        var, text = _var_and_text(call)
        if var is not None:
            return PrefixConstraint(var, text)
    if call.name == "contains":
        var, text = _var_and_text(call)
        if var is not None:
            return SubstringConstraint(var, text)
    return None
