"""Update propagation with loose consistency (paper §2, ref. [4]).

Datta et al.'s update protocol for highly unreliable replicated P2P systems
has two phases:

* **push** — the updater routes the new version to the responsible group and
  floods it to the replicas that are currently online (this is what
  :meth:`PGridNetwork.update` does);
* **pull** — replicas that were offline reconcile later by anti-entropy:
  periodically each peer contacts a random replica and the pair exchange
  entry versions, adopting whatever is newer.

The guarantees are probabilistic ("lose consistency" in the paper's words):
:func:`staleness` quantifies convergence, and experiment E9 shows it decaying
towards zero with successive anti-entropy rounds.
"""

from __future__ import annotations

import random

from repro.errors import NodeUnreachableError
from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer


def anti_entropy_round(pnet: PGridNetwork, rng: random.Random | None = None) -> int:
    """One gossip round: every online peer syncs with one random online replica.

    Returns the number of entries transferred (in either direction).  Each
    pairwise sync costs two messages (digest + delta), as in the protocol's
    pull phase.
    """
    rng = rng or pnet.rng
    transferred = 0
    for peer in pnet.online_peers():
        partners = peer.online_replicas()
        if not partners:
            continue
        partner_id = rng.choice(partners)
        partner = pnet.net.nodes[partner_id]
        assert isinstance(partner, PGridPeer)
        try:
            pnet.net.send(peer.node_id, partner_id, "anti-entropy", size=1)
            moved = sync_pair(peer, partner)
            pnet.net.send(partner_id, peer.node_id, "anti-entropy", size=max(1, moved))
            transferred += moved
        except NodeUnreachableError:  # partner failed mid-round
            continue
    return transferred


def sync_pair(a: PGridPeer, b: PGridPeer) -> int:
    """Bidirectional reconciliation of two replicas; returns entries copied."""
    moved = 0
    for entry in list(a.store):
        if b.store.put(entry):
            moved += 1
    for entry in list(b.store):
        if a.store.put(entry):
            moved += 1
    return moved


def staleness(pnet: PGridNetwork, sample_keys: list[str]) -> float:
    """Fraction of replica copies that are *not* at the latest version.

    For every sampled key, the latest version present anywhere in the
    overlay is the reference; each responsible peer (online or not) holding
    an older or missing copy counts as stale.  Returns 0.0 when every copy
    is current — the converged state E9 drives towards.
    """
    stale = 0
    copies = 0
    for key in sample_keys:
        group = pnet.responsible_group(key)
        if not group:
            continue
        latest: dict[str, int] = {}
        for peer in group:
            for entry in peer.store.get(key):
                latest[entry.item_id] = max(latest.get(entry.item_id, -1), entry.version)
        for item_id, newest in latest.items():
            for peer in group:
                copies += 1
                local = peer.store.get_entry(key, item_id)
                if local is None or local.version < newest:
                    stale += 1
    return stale / copies if copies else 0.0
