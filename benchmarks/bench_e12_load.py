"""E12 — latency under load: service times, queueing, and replica diffusion.

PR 3 measured *overlap*; this experiment measures *contention*.  Every peer
gets a service-time model and a FIFO work queue on the shared event kernel
(:mod:`repro.load`), an open-loop Poisson driver offers an increasing load
of Zipf-skewed lookups through one gateway, and the answer-time percentiles
are plotted against the offered rate:

* **E12a** — the latency-vs-offered-load curve has a visible knee where the
  hottest peer's utilization approaches 1; enabling replica-based
  query-load diffusion (reads spread over the responsible replica group)
  moves the knee right — the same overlay sustains more load.
* **E12b** — with diffusion on, the sustainable load scales with the
  replication degree: thicker replica groups push the knee further right,
  the load-diffusion-via-replication story of the paper's Section 2.
* **E12c** — the identity check tying E12 back to PR 3: with all service
  times at zero, event-driven execution with a load model attached is
  *indistinguishable* from PR 3's scheduler — same messages, hops,
  completion times and delivery log.

Set ``UNISTORE_QUICK=1`` for the CI smoke configuration.
"""

from __future__ import annotations

import os
import random

from repro.bench import ResultTable
from repro.load import LoadModel, OpenLoopDriver, ServiceProfile, ZERO_PROFILE, summarize
from repro.net.latency import ConstantLatency
from repro.pgrid import build_network, bulk_load, encode_string
from repro.pgrid.load_balancing import query_load_imbalance
from repro.pgrid.network import PGridNetwork

from conftest import emit

QUICK = bool(os.environ.get("UNISTORE_QUICK"))

NUM_PEERS = 48
NUM_KEYS = 64
KEY_SKEW = 1.1  # Zipf s: the top key draws ~23% of the lookups
HORIZON = 1.0 if QUICK else 2.0
RATES = [100, 400, 1600] if QUICK else [100, 200, 400, 800, 1600]
LINK_LATENCY = 0.01
#: Per-kind service costs (seconds on a speed-1.0 peer): a lookup probe is
#: real work, shipping the answer back is cheap.
PROFILE = {"lookup": 0.004, "result": 0.0002}
#: A rate is "sustainable" while its p95 stays under this multiple of the
#: lightly-loaded baseline — past it, queueing dominates and the curve knees.
KNEE_FACTOR = 4.0


def _words(count: int, seed: int = 1203) -> list[str]:
    rng = random.Random(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    return sorted({"".join(rng.choice(alphabet) for _ in range(7)) for _ in range(count)})


WORDS = _words(NUM_KEYS)
ITEMS = [(encode_string(w), f"id-{w}", f"val-{w}") for w in WORDS]
KEYS = [key for key, _id, _value in ITEMS]


def _overlay(replication: int, seed: int) -> PGridNetwork:
    pnet = build_network(
        NUM_PEERS,
        replication=replication,
        seed=seed,
        split_by="population",
        latency_model=ConstantLatency(LINK_LATENCY),
    )
    bulk_load(pnet, ITEMS)
    return pnet


def _drive(replication: int, rate: float, diffusion: str, seed: int = 4812) -> dict:
    """One offered-load point: fresh twin overlay, one gateway, Poisson lookups."""
    pnet = _overlay(replication, seed)
    model = LoadModel(ServiceProfile(PROFILE))
    with pnet.event_driven(load=model):
        driver = OpenLoopDriver(
            pnet,
            KEYS,
            rate=rate,
            horizon=HORIZON,
            key_skew=KEY_SKEW,
            gateways=[pnet.peers[0]],
            diffusion=diffusion,
            seed=seed,
        )
        records = driver.run()
    stats = summarize(records)
    utilization = model.utilization(HORIZON)
    # The gateway is busy by construction (it absorbs every reply); the
    # interesting bottleneck is the hottest *serving* peer.
    gateway = pnet.peers[0].node_id
    serving = [p.node_id for p in pnet.peers if p.node_id != gateway]
    stats["hot_util"] = max(utilization.get(node, 0.0) for node in serving)
    stats["imbalance"] = query_load_imbalance(model.busy_by_peer(), population=serving)
    return stats


def _sustainable(curve: dict[float, dict], baseline_p95: float) -> float:
    """Highest offered rate whose p95 stays under the knee threshold."""
    good = [rate for rate, stats in curve.items() if stats["p95"] <= KNEE_FACTOR * baseline_p95]
    return max(good, default=0.0)


def test_e12a_latency_vs_offered_load_knee_moves_with_diffusion(benchmark):
    replication = 3
    table = ResultTable(
        "E12a: answer time vs offered load — hot-key lookups through one gateway "
        f"({NUM_PEERS} peers, replication {replication}, Zipf s={KEY_SKEW})",
        ["rate /s", "policy", "hot util", "mean s", "p95 s", "max/mean busy", "ok"],
    )
    curves: dict[str, dict[float, dict]] = {"none": {}, "random": {}}
    for policy in ("none", "random"):
        for rate in RATES:
            stats = _drive(replication, rate, policy)
            curves[policy][rate] = stats
            table.add_row(
                rate,
                "pinned" if policy == "none" else "diffused",
                stats["hot_util"],
                stats["mean"],
                stats["p95"],
                stats["imbalance"]["max_over_mean"],
                stats["ok"],
            )
    emit(table)

    baseline = curves["none"][RATES[0]]["p95"]
    # Lightly loaded, the two policies are equally fast (same hop counts).
    assert curves["random"][RATES[0]]["p95"] < KNEE_FACTOR * baseline
    # The pinned curve knees: its top rate is past saturation on the hot
    # peer (utilization ~1) and the tail latency has left the flat region.
    top = RATES[-1]
    assert curves["none"][top]["hot_util"] > 0.9, "hot peer never saturated"
    assert curves["none"][top]["p95"] > KNEE_FACTOR * baseline, "no visible knee"
    # Diffusion spreads the same work over the replica group...
    assert (
        curves["random"][top]["imbalance"]["max_over_mean"]
        < curves["none"][top]["imbalance"]["max_over_mean"]
    )
    # ...so the knee moves right: strictly more load is sustainable.
    knee_pinned = _sustainable(curves["none"], baseline)
    knee_diffused = _sustainable(curves["random"], baseline)
    assert knee_diffused > knee_pinned, (
        f"diffusion should raise the sustainable load (pinned {knee_pinned}/s, "
        f"diffused {knee_diffused}/s)"
    )

    benchmark.pedantic(
        lambda: _drive(replication, RATES[1], "random"), rounds=3 if not QUICK else 1, iterations=1
    )


def test_e12b_knee_scales_with_replication_degree():
    degrees = [1, 4] if QUICK else [1, 2, 4]
    rates = [200, 800, 3200] if QUICK else [200, 400, 800, 1600, 3200]
    table = ResultTable(
        "E12b: sustainable load vs replication degree (diffused reads, "
        f"{NUM_PEERS} peers)",
        ["replication", "rate /s", "hot util", "p95 s", "sustainable?"],
    )
    knees: dict[int, float] = {}
    for degree in degrees:
        curve: dict[float, dict] = {}
        for rate in rates:
            curve[rate] = _drive(degree, rate, "random", seed=9000 + degree)
        baseline = curve[rates[0]]["p95"]
        knees[degree] = _sustainable(curve, baseline)
        for rate in rates:
            table.add_row(
                degree,
                rate,
                curve[rate]["hot_util"],
                curve[rate]["p95"],
                "yes" if curve[rate]["p95"] <= KNEE_FACTOR * baseline else "no",
            )
    emit(table)
    assert knees[degrees[-1]] > knees[degrees[0]], (
        f"thicker replica groups should sustain more load, got {knees}"
    )


def test_e12c_zero_service_times_reproduce_pr3_exactly():
    """The load subsystem is strictly additive: at zero cost it vanishes."""

    def run(load):
        pnet = _overlay(replication=2, seed=777)
        with pnet.event_driven(load=load) as sched:
            results, trace = pnet.lookup_many(KEYS, start=pnet.peers[0])
            insert_trace = pnet.insert_many(
                [(encode_string(f"zip{i}"), f"zid{i}", i) for i in range(12)],
                start=pnet.peers[1],
            )
        found = {k: {(e.item_id, e.value) for e in v} for k, v in results.items()}
        return trace, insert_trace, list(sched.log), found

    plain = run(load=None)
    zeroed = run(load=LoadModel(ZERO_PROFILE))
    assert plain[0] == zeroed[0]  # messages, hops, latency, completion_time
    assert plain[1] == zeroed[1]
    assert plain[2] == zeroed[2]  # the delivery log, instant for instant
    assert plain[3] == zeroed[3]
    table = ResultTable(
        "E12c: zero-service identity — event mode with and without a load model",
        ["model", "msgs", "hops", "completion s"],
    )
    table.add_row("PR 3 scheduler", plain[0].messages, plain[0].hops, plain[0].completion_time)
    table.add_row("zero-cost load", zeroed[0].messages, zeroed[0].hops, zeroed[0].completion_time)
    emit(table)
