"""UniStore core — the public face of the platform (paper Fig. 1, top)."""

from repro.core.logging import QueryLog, QueryLogRecord
from repro.core.results import QueryResult
from repro.core.unistore import UniStore

__all__ = ["UniStore", "QueryResult", "QueryLog", "QueryLogRecord"]
