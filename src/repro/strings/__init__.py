"""String-similarity substrate used by UniStore's fuzzy predicates.

The paper's VQL exposes an ``edist`` predicate (bounded Levenshtein distance)
and processes it efficiently with a distributed q-gram index (ref. [6] of the
paper).  This package provides the underlying primitives:

* :func:`edit_distance` / :func:`edit_distance_within` — (banded) Levenshtein,
* :func:`qgrams` / :func:`positional_qgrams` — q-gram extraction,
* :func:`count_filter_threshold` — the classic count-filter lower bound that
  makes the q-gram index a *sound* candidate filter (no false dismissals).
"""

from repro.strings.edit_distance import edit_distance, edit_distance_within
from repro.strings.qgrams import (
    PAD_CHAR,
    count_filter_threshold,
    distinct_count_filter_threshold,
    positional_qgrams,
    qgram_overlap,
    qgrams,
)

__all__ = [
    "edit_distance",
    "edit_distance_within",
    "qgrams",
    "positional_qgrams",
    "qgram_overlap",
    "count_filter_threshold",
    "distinct_count_filter_threshold",
    "PAD_CHAR",
]
