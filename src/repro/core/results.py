"""Query results as returned to users of the public API."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.trace import Trace
from repro.algebra.semantics import Binding


@dataclass
class QueryResult:
    """Rows plus the execution evidence the demo UI displayed (Fig. 4).

    ``trace`` carries the simulated cost: total messages, critical-path hops
    and latency ("query answer time").  ``plan`` is the physical plan's
    EXPLAIN text; ``complete`` is False when parts of the key space were
    unreachable (best-effort answers under churn).
    """

    rows: list[Binding]
    variables: tuple[str, ...] = ()
    trace: Trace = Trace.ZERO
    plan: str = ""
    complete: bool = True
    mode: str = "optimized"

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    @property
    def answer_time(self) -> float:
        """Simulated wall-clock answer time in seconds."""
        return self.trace.latency

    @property
    def messages(self) -> int:
        return self.trace.messages

    def column(self, name: str) -> list:
        return [row.get(name) for row in self.rows]

    def as_table(self, max_rows: int = 20) -> str:
        """Fixed-width rendering of the result (the Fig.-4 results tab)."""
        names = list(self.variables) or sorted({name for row in self.rows for name in row})
        if not names:
            return "(no columns)"
        header = [f"?{name}" for name in names]
        body = [
            ["" if row.get(name) is None else str(row.get(name)) for name in names]
            for row in self.rows[:max_rows]
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(names))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in body:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def sorted_rows(self) -> list[tuple]:
        """Deterministic row ordering for comparisons in tests."""
        names = list(self.variables) or sorted({name for row in self.rows for name in row})
        return sorted(tuple(repr(row.get(name)) for name in names) for row in self.rows)
