"""Flow/blocking physical operators and the OID-cluster star scan."""

import random

import pytest

from repro.bench import ConferenceWorkload
from repro.errors import PlanningError
from repro.physical import (
    AttributeScan,
    CollectOp,
    DifferenceOp,
    ExecutionContext,
    FilterOp,
    IntersectionOp,
    LeftJoinOp,
    LimitOp,
    OidClusterScan,
    ProjectOp,
    SortOp,
    UnionOp,
)
from repro.pgrid import build_network
from repro.triples import DistributedTripleStore, Triple
from repro.vql import parse
from repro.vql.ast import Literal, OrderItem, TriplePattern, Var


@pytest.fixture(scope="module")
def env():
    # OIDs with spread first characters so they hash to different trie leaves.
    # fmt: off
    triples = [
        Triple("a-p1", "name", "Alice"), Triple("a-p1", "age", 30),
        Triple("a-p1", "city", "Berlin"),
        Triple("m-p2", "name", "Bob"), Triple("m-p2", "age", 25),
        Triple("z-p3", "name", "Cara"), Triple("z-p3", "age", 40),
        Triple("z-p3", "city", "Basel"),
        # multi-valued attribute on a-p1
        Triple("a-p1", "likes", "tea"), Triple("a-p1", "likes", "coffee"),
    ]
    # fmt: on
    # Shape the trie by the actual posting keys (P-Grid's balanced steady
    # state) so the tiny dataset still spans several leaves.
    from repro.triples import av_key, oid_key, v_key

    keys = []
    for t in triples:
        keys += [oid_key(t.oid), av_key(t.attribute, t.value), v_key(t.value)]
    pnet = build_network(24, data_keys=keys, replication=1, seed=31, split_by="data")
    store = DistributedTripleStore(pnet)
    store.bulk_insert(triples)
    ctx = ExecutionContext(store, pnet.peers[0], random.Random(31))
    return store, ctx


def _names(result):
    return sorted(r.get("n") for r in result.all_bindings())


def scan(attr, var="n", subject="a"):
    return AttributeScan(TriplePattern(Var(subject), Literal(attr), Var(var)))


class TestFlowOperators:
    def test_filter_in_place_costs_nothing_extra(self, env):
        store, ctx = env
        import random as _random
        from dataclasses import replace as _replace

        base = scan("age", var="v")
        # Identical rng seeds make the two shower fan-outs byte-identical,
        # so the filter's zero network cost is directly observable.
        baseline = base.execute(_replace(ctx, rng=_random.Random(99)))
        filtered = FilterOp(base, parse_filter("?v > 28")).execute(
            _replace(ctx, rng=_random.Random(99))
        )
        assert sorted(r["v"] for r in filtered.all_bindings()) == [30, 40]
        assert filtered.trace.messages == baseline.trace.messages

    def test_project_prunes_columns_in_place(self, env):
        _store, ctx = env
        result = ProjectOp(scan("age", var="v"), (Var("v"),)).execute(ctx)
        for row in result.all_bindings():
            assert set(row) == {"v"}

    def test_project_distinct_gathers(self, env):
        _store, ctx = env
        result = ProjectOp(
            scan("likes", var="v"), (Var("v"),), distinct=True
        ).execute(ctx)
        assert sorted(r["v"] for r in result.all_bindings()) == ["coffee", "tea"]
        assert len(result.groups) <= 1  # centralized after dedup

    def test_sort_and_limit(self, env):
        _store, ctx = env
        ordered = SortOp(scan("age", var="v"), (OrderItem(Var("v"), descending=True),))
        result = LimitOp(ordered, count=2).execute(ctx)
        assert [r["v"] for r in result.all_bindings()] == [40, 30]

    def test_limit_offset(self, env):
        _store, ctx = env
        ordered = SortOp(scan("age", var="v"), (OrderItem(Var("v")),))
        result = LimitOp(ordered, count=2, offset=1).execute(ctx)
        assert [r["v"] for r in result.all_bindings()] == [30, 40]

    def test_collect_delivers_to_coordinator(self, env):
        _store, ctx = env
        result = CollectOp(scan("name")).execute(ctx)
        assert len(result.groups) == 1
        assert result.groups[0][0] == ctx.coordinator.node_id


class TestSetOperators:
    def test_union_pools_groups(self, env):
        _store, ctx = env
        result = UnionOp((scan("name"), scan("city", var="n"))).execute(ctx)
        assert _names(result) == sorted(["Alice", "Bob", "Cara", "Berlin", "Basel"])

    def test_intersection_on_shared_variables(self, env):
        _store, ctx = env
        result = IntersectionOp((scan("name", var="x"), scan("city", var="y"))).execute(ctx)
        # shared variable is ?a: people having both name and city
        assert sorted(r["a"] for r in result.all_bindings()) == ["a-p1", "z-p3"]

    def test_intersection_empty_input(self, env):
        _store, ctx = env
        result = IntersectionOp((scan("name"), scan("nonexistent"))).execute(ctx)
        assert result.all_bindings() == []

    def test_difference(self, env):
        _store, ctx = env
        result = DifferenceOp(scan("name", var="x"), scan("city", var="y")).execute(ctx)
        assert sorted(r["x"] for r in result.all_bindings()) == ["Bob"]

    def test_left_join_keeps_unmatched(self, env):
        _store, ctx = env
        result = LeftJoinOp(scan("name"), scan("city", var="c")).execute(ctx)
        by_name = {r["n"]: r.get("c") for r in result.all_bindings()}
        assert by_name == {"Alice": "Berlin", "Cara": "Basel", "Bob": None}


class TestOidClusterScan:
    def _star(self, *attrs, filters=()):
        patterns = tuple(
            TriplePattern(Var("a"), Literal(attr), Var(f"v{i}"))
            for i, attr in enumerate(attrs)
        )
        return OidClusterScan(patterns=patterns, filters=filters, subject_variable="a")

    def test_star_joins_attributes(self, env):
        _store, ctx = env
        result = self._star("name", "age").execute(ctx)
        rows = {(r["v0"], r["v1"]) for r in result.all_bindings()}
        assert rows == {("Alice", 30), ("Bob", 25), ("Cara", 40)}

    def test_star_requires_all_attributes(self, env):
        _store, ctx = env
        result = self._star("name", "city").execute(ctx)
        rows = {(r["v0"], r["v1"]) for r in result.all_bindings()}
        assert rows == {("Alice", "Berlin"), ("Cara", "Basel")}  # Bob has no city

    def test_multivalued_attribute_products(self, env):
        _store, ctx = env
        result = self._star("name", "likes").execute(ctx)
        rows = {(r["v0"], r["v1"]) for r in result.all_bindings()}
        assert rows == {("Alice", "tea"), ("Alice", "coffee")}

    def test_rows_stay_distributed(self, env):
        _store, ctx = env
        result = self._star("name", "age").execute(ctx)
        assert len(result.groups) >= 2  # not centralized

    def test_filters_applied_locally(self, env):
        _store, ctx = env
        result = self._star("name", "age", filters=(parse_filter("?v1 >= 30"),)).execute(ctx)
        assert sorted(r["v0"] for r in result.all_bindings()) == ["Alice", "Cara"]

    def test_literal_object_acts_as_filter(self, env):
        _store, ctx = env
        star = OidClusterScan(
            patterns=(
                TriplePattern(Var("a"), Literal("name"), Var("n")),
                TriplePattern(Var("a"), Literal("age"), Literal(25)),
            ),
            subject_variable="a",
        )
        result = star.execute(ctx)
        assert [r["n"] for r in result.all_bindings()] == ["Bob"]

    def test_rejects_mismatched_subject(self, env):
        _store, ctx = env
        star = OidClusterScan(
            patterns=(TriplePattern(Var("b"), Literal("name"), Var("n")),),
            subject_variable="a",
        )
        with pytest.raises(PlanningError):
            star.execute(ctx)

    def test_rejects_empty_pattern_list(self, env):
        _store, ctx = env
        with pytest.raises(PlanningError):
            OidClusterScan(patterns=(), subject_variable="a").execute(ctx)


class TestPlannerStarIntegration:
    def test_star_query_planned_and_correct(self):
        from repro import UniStore

        store = UniStore.build(num_peers=32, replication=2, seed=32)
        workload = ConferenceWorkload(
            num_authors=20, num_publications=30, num_conferences=8, seed=32
        )
        workload.load_into(store)
        vql = (
            "SELECT ?n, ?g WHERE {(?a,'name',?n) (?a,'age',?g) "
            "(?a,'num_of_pubs',?c)}"
        )
        optimized = store.execute(vql)
        reference = store.execute(vql, mode="reference")
        assert sorted(map(repr, optimized.rows)) == sorted(map(repr, reference.rows))

    def test_selective_star_prefers_probes(self):
        """A star with a very selective equality should NOT pay a full OID
        sweep under traffic-weighted costing."""
        from repro import UniStore
        from repro.optimizer import PlannerConfig

        store = UniStore.build(num_peers=32, replication=2, seed=33)
        workload = ConferenceWorkload(
            num_authors=20, num_publications=30, num_conferences=8, seed=33
        )
        workload.load_into(store)
        name = workload.people[0]["name"]
        vql = (f"SELECT ?g WHERE {{(?a,'name',?n) (?a,'age',?g) FILTER ?n = '{name}'}}")
        plan = store.explain(vql, config=PlannerConfig(latency_weight=0.0, message_weight=1.0))
        assert "OidClusterScan" not in plan.split("-- physical --")[1]


def parse_filter(text: str):
    query = parse(f"SELECT ?x WHERE {{(?x,'a',?v) FILTER {text}}}")
    return query.groups[0].filters[0]
