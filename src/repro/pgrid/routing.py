"""Greedy prefix routing (paper §2: "prefix-based query routing").

At each step the current peer compares the target key with its own path; the
first differing bit determines the routing level, and the message is forwarded
to a reference covering the complementary subtree at that level.  Every hop
extends the matched prefix by at least one bit, giving the logarithmic hop
bound the paper's cost model builds on (O(log |Π|) w.h.p. for balanced tries).

Fault tolerance: offline/stale references are skipped; when *all* references
at the needed level are unusable the router detours through an online replica
of the current peer (replicas sample their references independently), and
fails with :class:`RoutingError` only when no progress is possible at all.

Two refinements over plain hop-by-hop routing support the batched data
operations in :mod:`repro.pgrid.network`:

* **route caching** — every peer keeps a :class:`RouteCache` mapping
  key-space prefixes (the paths of previously reached destinations) to the
  destination's address.  A cache hit turns an O(log N) route into one
  direct message.  Entries are validated at use time and evicted when the
  cached peer churned away (went offline, changed path, disappeared); a
  routing dead-end (offline detour) invalidates the covering entry too.

* **route-cache warming** (opt-in: ``network.route_warming = True``) — a
  routed data message piggybacks the sender's freshly learned cache entry
  for the destination, so every *transit* peer on the path warms its own
  cache from traffic it merely forwards, and mid-route the current peer's
  cache is consulted too (a warm intermediate short-circuits the rest of
  the route).  Repeat lookups from a second peer whose route crosses warmed
  peers therefore take fewer hops without ever having routed the key
  themselves.  This shipped in PR 4 as the warming half of the ROADMAP's
  route-cache anti-entropy item; only the gossip-round (proactive)
  propagation half is still open.

* **hint-aware reference choice** (opt-in: attach a
  :class:`~repro.load.shedding.HintRegistry` to the network, e.g. via
  ``pnet.event_driven(load=..., hints=True)``) — when several references
  (or replica detours) make equal routing progress, the current peer
  prefers the candidate it has heard the smallest piggybacked queue-depth
  hint from, steering traffic away from saturated peers using only
  information a real peer possesses.  With no registry attached — or no
  hints heard yet — the choice is the historical uniform ``rng.choice``,
  consuming the same RNG draws: hint-free runs stay byte-identical.

* **deferred accounting** — :func:`route_hops` discovers the hop sequence
  without sending anything, so bulk operations can group keys by destination
  first and then charge each route *once per region* with the region's real
  batch size (:func:`replay_hops`), or schedule it as a callback chain on an
  event-driven scheduler so chains to different regions interleave in
  simulated time (:func:`schedule_hops`).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.errors import RoutingError
from repro.net.trace import Trace
from repro.pgrid.keys import common_prefix_length, responsible
from repro.pgrid.peer import PGridPeer

if TYPE_CHECKING:
    from repro.net.network import Network
    from repro.net.scheduler import Completion, EventScheduler

#: Hard bound on route length; ordinary routes are O(log N) so hitting this
#: indicates a broken overlay rather than a long route.
MAX_HOPS = 256

#: Zero-padding depth for :func:`point_key`; deeper than any realistic trie
#: (the oracle builder caps paths at 48 bits).
POINT_PAD_DEPTH = 64


def point_key(key: str, depth: int = POINT_PAD_DEPTH) -> str:
    """Zero-pad ``key`` so routing lands on the leaf covering its *point*.

    A bare key routed through :func:`route` may stop at any peer inside the
    key's subtree (the acceptable entry points for prefix queries).  Data
    operations need the exact leaf responsible for the key as a point in
    ``[0, 1)`` — the leftmost leaf under the key — which the zero-padded key
    routes to even when the trie is split deeper than the key is long.
    """
    return key + "0" * depth


class RouteCache:
    """Per-peer memory of last-known destinations, keyed by destination path.

    A successful route towards ``key`` learns that the peer whose path ``π``
    prefixes ``key`` currently answers for that region; the next route to any
    key under ``π`` tries that peer with a single direct message (the
    underlying network is point-to-point — P-Grid peers may contact any
    address they know).  Entries are *validated at use*: the cached peer must
    still exist, be online, and still sit at the cached path, otherwise the
    entry is evicted.  Bounded LRU.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._dest_by_prefix: OrderedDict[str, str] = OrderedDict()
        self._max_prefix = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._dest_by_prefix)

    def get(self, key: str) -> tuple[str, str] | None:
        """Longest cached ``(prefix, peer_id)`` whose prefix covers ``key``."""
        for length in range(min(len(key), self._max_prefix), -1, -1):
            prefix = key[:length]
            peer_id = self._dest_by_prefix.get(prefix)
            if peer_id is not None:
                self._dest_by_prefix.move_to_end(prefix)
                return prefix, peer_id
        return None

    def put(self, prefix: str, peer_id: str) -> None:
        self._dest_by_prefix[prefix] = peer_id
        self._dest_by_prefix.move_to_end(prefix)
        self._max_prefix = max(self._max_prefix, len(prefix))
        while len(self._dest_by_prefix) > self.capacity:
            self._dest_by_prefix.popitem(last=False)

    def invalidate(self, prefix: str) -> None:
        """Drop the entry stored under exactly ``prefix`` (if any)."""
        if self._dest_by_prefix.pop(prefix, None) is not None:
            self.evictions += 1

    def invalidate_key(self, key: str) -> None:
        """Drop every cached entry whose prefix covers ``key``."""
        for prefix in [p for p in self._dest_by_prefix if key.startswith(p)]:
            self.invalidate(prefix)

    def invalidate_peer(self, peer_id: str) -> None:
        """Drop every entry pointing at ``peer_id`` (e.g. it announced leaving)."""
        for prefix in [p for p, d in self._dest_by_prefix.items() if d == peer_id]:
            self.invalidate(prefix)

    def clear(self) -> None:
        self._dest_by_prefix.clear()
        self._max_prefix = 0


def is_destination(peer: PGridPeer, key: str) -> bool:
    """True when routing may stop at ``peer`` for ``key``.

    Either the peer is responsible for the key (path is a prefix of the
    key), or the key itself is a prefix of the peer's path — the latter
    happens for short prefix-query keys, where any peer inside the key's
    subtree is an acceptable entry point.
    """
    return responsible(peer.path, key) or peer.path.startswith(key)


def _cached_destination(start: PGridPeer, key: str) -> PGridPeer | None:
    """Consult ``start``'s route cache; evict entries invalidated by churn."""
    cache = start.route_cache
    hit = cache.get(key)
    if hit is None:
        cache.misses += 1
        return None
    prefix, peer_id = hit
    peer = start.network.nodes.get(peer_id)
    if (
        isinstance(peer, PGridPeer)
        and peer.online
        and peer.path == prefix
        and is_destination(peer, key)
    ):
        cache.hits += 1
        return peer
    cache.invalidate(prefix)
    cache.misses += 1
    return None


def _pick_ref(current: PGridPeer, candidates: list[str], rng: random.Random) -> str:
    """Choose among references (or detours) that make equal progress.

    With a hint registry on the network the current peer prefers the
    candidate with the smallest last-heard queue-depth hint; otherwise (and
    on all-unknown ties, where every hint reads 0.0) this is exactly the
    historical ``rng.choice(candidates)`` — same draw, same pick.
    """
    registry = getattr(current.network, "hints", None)
    if registry is None or len(candidates) == 1:
        return rng.choice(candidates)
    from repro.load.shedding import pick_least_hinted  # deferred: load imports pgrid

    return pick_least_hinted(candidates, current.node_id, registry, rng)


def route_hops(
    start: PGridPeer,
    key: str,
    rng: random.Random | None = None,
    use_cache: bool = True,
) -> tuple[PGridPeer, list[tuple[str, str]]]:
    """Discover the route from ``start`` towards ``key`` without sending.

    Returns ``(destination, hops)`` where hops are ``(src_id, dst_id)``
    pairs; callers account them with :func:`replay_hops` at whatever message
    size the operation carries.  On failure raises :class:`RoutingError`
    with the partial hop list attached as ``.hops``.
    """
    rng = rng or start.network.rng
    if use_cache:
        cached = _cached_destination(start, key)
        if cached is not None:
            hops = [] if cached is start else [(start.node_id, cached.node_id)]
            return cached, hops

    warming = use_cache and getattr(start.network, "route_warming", False)
    current = start
    hops: list[tuple[str, str]] = []
    visited_detours: set[str] = set()

    for _hop in range(MAX_HOPS):
        if is_destination(current, key):
            if use_cache and current.path:
                start.route_cache.put(current.path, current.node_id)
            if warming and current.path:
                _warm_transit(start, hops, current)
            return current, hops

        if warming and current is not start:
            # The message carries the key it routes towards; a transit peer
            # with a warm cache entry short-circuits the remaining hops.
            cached = _cached_destination(current, key)
            if cached is not None and cached is not current:
                hops.append((current.node_id, cached.node_id))
                current = cached
                continue

        level = common_prefix_length(current.path, key)
        candidates = current.valid_refs(level)
        if candidates:
            next_id = _pick_ref(current, candidates, rng)
            hops.append((current.node_id, next_id))
            current = current.network.nodes[next_id]
            continue

        # Dead end at this level: detour through a replica whose independent
        # reference sample may still cover the needed subtree.  A detour is
        # churn evidence, so drop any cached destination for this region.
        if use_cache:
            start.route_cache.invalidate_key(key)
        visited_detours.add(current.node_id)
        detours = [r for r in current.online_replicas() if r not in visited_detours]
        if not detours:
            error = RoutingError(
                f"no route from {current.node_id!r} (path {current.path!r}) "
                f"towards key {key[:24]!r}... at level {level}"
            )
            error.hops = hops
            raise error
        next_id = _pick_ref(current, detours, rng)
        hops.append((current.node_id, next_id))
        current = current.network.nodes[next_id]

    error = RoutingError(f"route exceeded {MAX_HOPS} hops towards {key[:24]!r}")
    error.hops = hops
    raise error


def _warm_transit(start: PGridPeer, hops: list[tuple[str, str]], destination: PGridPeer) -> None:
    """Piggyback the learned ``(path -> destination)`` entry onto the route.

    Every transit peer that forwarded the message (the hop sources, minus
    the initiator whose cache is populated by :func:`route_hops` itself)
    warms its own route cache from the traffic it observed.
    """
    network = start.network
    for src_id, _dst_id in hops:
        if src_id == start.node_id or src_id == destination.node_id:
            continue
        peer = network.nodes.get(src_id)
        if isinstance(peer, PGridPeer):
            peer.route_cache.put(destination.path, destination.node_id)


def replay_hops(network: "Network", hops: list[tuple[str, str]], kind: str, size: int) -> Trace:
    """Account a discovered hop sequence as sent messages of ``size``."""
    trace = Trace.ZERO
    for src, dst in hops:
        trace = trace.then(network.send(src, dst, kind, size))
    return trace


def schedule_hops(
    scheduler: "EventScheduler",
    hops: list[tuple[str, str]],
    kind: str,
    size: int,
    at: float | None = None,
    on_done: "Completion | None" = None,
) -> None:
    """Schedule a discovered hop sequence as an event-driven callback chain.

    The event-driven counterpart of :func:`replay_hops`: same messages, same
    sizes, but hop *i + 1* departs when hop *i* is delivered on the
    simulated clock, so chains to different regions interleave.  ``on_done``
    fires with the arrival instant at the destination.
    """
    scheduler.chain(hops, kind, size, at=at, on_done=on_done)


def route(
    start: PGridPeer,
    key: str,
    kind: str = "route",
    size: int = 1,
    rng: random.Random | None = None,
    use_cache: bool = True,
    scheduler: "EventScheduler | None" = None,
) -> tuple[PGridPeer, Trace]:
    """Route a message from ``start`` towards ``key``.

    Returns the destination peer and the accumulated causal trace.  Raises
    :class:`RoutingError` (with the partial trace attached as ``.trace``)
    when the route dead-ends, e.g. because every peer covering the key's
    region is offline.

    With a ``scheduler`` the discovered chain runs in simulated time instead
    of being replayed analytically: the clock advances to the destination's
    arrival instant and the returned trace carries it as
    ``completion_time``.  Message accounting is identical either way.
    """
    try:
        destination, hops = route_hops(start, key, rng=rng, use_cache=use_cache)
    except RoutingError as error:
        error.trace = account_hops(start.network, getattr(error, "hops", []), kind, size, scheduler)
        raise
    return destination, account_hops(start.network, hops, kind, size, scheduler)


def account_hops(
    network: "Network",
    hops: list[tuple[str, str]],
    kind: str,
    size: int,
    scheduler: "EventScheduler | None",
) -> Trace:
    """Charge a hop sequence in the active execution model."""
    if scheduler is None:
        return replay_hops(network, hops, kind, size)
    start_time = scheduler.now
    arrivals: list[float] = []
    schedule_hops(scheduler, hops, kind, size, at=start_time, on_done=arrivals.append)
    scheduler.run()
    finish = arrivals[0] if arrivals else start_time
    return Trace(
        messages=len(hops),
        hops=len(hops),
        latency=finish - start_time,
        completion_time=finish,
    )
