"""Distributed ranking operators: top-N and skyline (paper §2-4).

Both come in two strategies, the difference E6 measures:

* ``naive`` — ship every input row to the coordinator, rank there;
* ``local-prune`` — each producing peer ranks *its own* rows first and ships
  only what can still matter globally (top-N: its local best n+offset rows;
  skyline: its local skyline), then the coordinator merges.  Correct because
  both operators are *distributive*: a row dominated/outranked locally can
  never enter the global answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.semantics import order_sort_key, skyline_of
from repro.physical.base import ExecutionContext, OpResult, PhysicalOperator
from repro.vql.ast import OrderItem, SkylineItem


@dataclass
class TopNOp(PhysicalOperator):
    """The n best rows under the sort keys."""

    child: PhysicalOperator
    items: tuple[OrderItem, ...]
    n: int
    offset: int = 0
    prune: bool = True  # local-prune vs naive

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    @property
    def strategy(self) -> str:  # type: ignore[override]
        return "local-prune" if self.prune else "naive"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        result = self.child.execute(ctx)
        keep = self.n + self.offset
        key = order_sort_key(self.items)
        if self.prune:
            pruned_groups = [
                (peer_id, sorted(rows, key=key)[:keep]) for peer_id, rows in result.groups
            ]
            result = OpResult(pruned_groups, result.trace, result.complete)
        home = result.at_coordinator(ctx, kind="topn-ship")
        rows = sorted(home.all_bindings(), key=key)[self.offset : keep]
        return OpResult(
            groups=[(ctx.coordinator.node_id, rows)] if rows else [],
            trace=home.trace,
            complete=home.complete,
        )

    def _label(self) -> str:
        keys = ", ".join(str(i) for i in self.items)
        return f"TopNOp[{self.strategy}] n={self.n} by {keys}"


@dataclass
class SkylineOp(PhysicalOperator):
    """Pareto-optimal rows under the MIN/MAX dimensions."""

    child: PhysicalOperator
    items: tuple[SkylineItem, ...]
    prune: bool = True

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    @property
    def strategy(self) -> str:  # type: ignore[override]
        return "local-prune" if self.prune else "naive"

    def execute(self, ctx: ExecutionContext) -> OpResult:
        result = self.child.execute(ctx)
        if self.prune:
            pruned_groups = [
                (peer_id, skyline_of(rows, self.items)) for peer_id, rows in result.groups
            ]
            result = OpResult(pruned_groups, result.trace, result.complete)
        home = result.at_coordinator(ctx, kind="skyline-ship")
        rows = skyline_of(home.all_bindings(), self.items)
        return OpResult(
            groups=[(ctx.coordinator.node_id, rows)] if rows else [],
            trace=home.trace,
            complete=home.complete,
        )

    def _label(self) -> str:
        dims = ", ".join(str(i) for i in self.items)
        return f"SkylineOp[{self.strategy}] of {dims}"
