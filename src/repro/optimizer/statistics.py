"""Catalog statistics for cost-based planning.

The paper bases cost prediction on "the characteristics of the used overlay
system and the actual data distribution" (§2).  In the real system these
statistics are themselves metadata triples maintained in the network; the
reproduction computes them as a catalog snapshot over the overlay's global
view (equivalent information, zero-message access), refreshed explicitly via
:meth:`CatalogStatistics.from_store`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.pgrid.network import PGridNetwork
from repro.triples.index import IndexKind
from repro.triples.store import DistributedTripleStore, Posting
from repro.triples.triple import Value
from repro.vql.ast import Literal, TriplePattern


@dataclass
class AttributeStats:
    """Per-attribute distribution summary."""

    count: int = 0
    distinct: int = 0
    numeric_min: float | None = None
    numeric_max: float | None = None
    numeric_count: int = 0
    string_count: int = 0
    avg_string_length: float = 0.0


@dataclass
class CatalogStatistics:
    """Data + overlay statistics driving the cost model."""

    num_peers: int = 1
    num_groups: int = 1
    replication: float = 1.0
    avg_link_latency: float = 0.05
    total_triples: int = 0
    distinct_oids: int = 0
    attributes: dict[str, AttributeStats] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_store(
        cls, store: DistributedTripleStore, latency_samples: int = 64
    ) -> "CatalogStatistics":
        pnet = store.pnet
        stats = cls(
            num_peers=len(pnet.peers),
            num_groups=max(1, len(pnet.leaf_groups())),
            replication=len(pnet.peers) / max(1, len(pnet.leaf_groups())),
            avg_link_latency=_estimate_link_latency(pnet, latency_samples),
        )
        distinct_values: dict[str, set[Value]] = {}
        oids: set[str] = set()
        for entry in pnet.all_entries():
            posting = entry.value
            if not isinstance(posting, Posting) or posting.kind is not IndexKind.AV:
                continue
            triple = posting.triple
            stats.total_triples += 1
            oids.add(triple.oid)
            attr = stats.attributes.setdefault(triple.attribute, AttributeStats())
            attr.count += 1
            distinct_values.setdefault(triple.attribute, set()).add(triple.value)
            if isinstance(triple.value, str):
                attr.string_count += 1
                attr.avg_string_length += len(triple.value)
            else:
                attr.numeric_count += 1
                value = float(triple.value)
                if attr.numeric_min is None or value < attr.numeric_min:
                    attr.numeric_min = value
                if attr.numeric_max is None or value > attr.numeric_max:
                    attr.numeric_max = value
        for name, attr in stats.attributes.items():
            attr.distinct = len(distinct_values.get(name, ()))
            if attr.string_count:
                attr.avg_string_length /= attr.string_count
        stats.distinct_oids = len(oids)
        return stats

    # -- overlay quantities ----------------------------------------------------

    def expected_hops(self) -> float:
        """Expected routing hops: O(log2 groups) (paper: logarithmic guarantees)."""
        return max(1.0, math.log2(max(2, self.num_groups)))

    def expected_leaves(self, fraction: float) -> float:
        """Expected number of trie leaves covering a ``fraction`` of the data."""
        return max(1.0, fraction * self.num_groups)

    # -- cardinality estimation ---------------------------------------------------

    def attribute_count(self, attribute: str) -> int:
        stats = self.attributes.get(attribute)
        return stats.count if stats else 0

    def attribute_distinct(self, attribute: str) -> int:
        stats = self.attributes.get(attribute)
        return max(1, stats.distinct) if stats else 1

    def eq_selectivity(self, attribute: str) -> float:
        """Fraction of an attribute's triples matching one value."""
        stats = self.attributes.get(attribute)
        if not stats or not stats.count:
            return 0.0
        return 1.0 / max(1, stats.distinct)

    def range_selectivity(self, attribute: str, low: Value | None, high: Value | None) -> float:
        """Uniform-interpolation estimate of a numeric/string range."""
        stats = self.attributes.get(attribute)
        if not stats or not stats.count:
            return 0.0
        if (
            stats.numeric_count
            and isinstance(low, (int, float, type(None)))
            and isinstance(high, (int, float, type(None)))
            and stats.numeric_min is not None
            and stats.numeric_max is not None
        ):
            span = stats.numeric_max - stats.numeric_min
            if span <= 0:
                return 1.0
            lo = stats.numeric_min if low is None else float(low)
            hi = stats.numeric_max if high is None else float(high)
            overlap = max(0.0, min(hi, stats.numeric_max) - max(lo, stats.numeric_min))
            return min(1.0, overlap / span)
        # Strings (or mixed): fall back to a fixed heuristic fraction.
        if low is None and high is None:
            return 1.0
        return 0.3

    def estimate_pattern(self, pattern: TriplePattern) -> float:
        """Estimated number of bindings a pattern scan produces (pre-filter)."""
        subject_bound = isinstance(pattern.subject, Literal)
        predicate_bound = isinstance(pattern.predicate, Literal)
        object_bound = isinstance(pattern.object, Literal)
        if predicate_bound:
            attribute = str(pattern.predicate.value)  # type: ignore[union-attr]
            count = self.attribute_count(attribute)
            if object_bound:
                estimate = count * self.eq_selectivity(attribute)
            else:
                estimate = float(count)
            if subject_bound:
                estimate = min(estimate, 1.0)
            return estimate
        if subject_bound:
            avg_triples_per_oid = self.total_triples / max(1, self.distinct_oids)
            return max(1.0, avg_triples_per_oid) if not object_bound else 1.0
        if object_bound:
            # Value known, attribute unknown: sum of eq-selectivities.
            return sum(stats.count / max(1, stats.distinct) for stats in self.attributes.values())
        return float(self.total_triples)


def _estimate_link_latency(pnet: PGridNetwork, samples: int) -> float:
    """Mean of freshly sampled link latencies under the configured model."""
    model = pnet.net.latency_model
    rng_snapshot = pnet.net.rng.getstate()
    total = 0.0
    for _ in range(max(1, samples)):
        total += model.sample_base(pnet.net.rng)
    pnet.net.rng.setstate(rng_snapshot)  # sampling must not perturb the run
    return total / max(1, samples)
