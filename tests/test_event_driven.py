"""Event-driven (simulated-time) execution of routed operations.

Covers the scheduler layer end to end, per the PR's checklist:

* a fan-out over k regions with known per-hop latencies completes at the
  *max*, not the sum, of its chain latencies;
* deterministic replay — the same seed yields the identical delivery log and
  ``completion_time``;
* the event-driven and causal-trace models agree on message counts (and on
  results), from bulk primitives all the way up to full VQL queries.
"""

import pytest

from repro import UniStore
from repro.bench import ConferenceWorkload
from repro.errors import NodeUnreachableError
from repro.net import ConstantLatency, EventScheduler, Network, PlanetLabLatency, ZeroLatency
from repro.net.trace import Trace
from repro.pgrid import build_network, bulk_load, encode_string
from repro.pgrid.datastore import Entry
from repro.pgrid.network import PGridNetwork
from repro.pgrid.range_query import range_query_shower
from repro.pgrid.keys import KeyRange

WORDS = [f"word{i:03d}" for i in range(40)]
ITEMS = [(encode_string(w), f"id-{w}", f"val-{w}") for w in WORDS]
KEYS = [key for key, _id, _value in ITEMS]


def _overlay(seed, latency_model=None, replication=2):
    pnet = build_network(
        32, replication=replication, seed=seed, split_by="population", latency_model=latency_model
    )
    return pnet


def _loaded(seed, latency_model=None):
    pnet = _overlay(seed, latency_model=latency_model)
    bulk_load(pnet, ITEMS)
    return pnet


def _entry_sets(results):
    return {key: {(e.item_id, e.value) for e in entries} for key, entries in results.items()}


class TestKnownLatencyFanout:
    """A hand-built 3-peer trie with pinned link latencies."""

    def _tiny_overlay(self):
        pnet = PGridNetwork(Network(latency_model=ZeroLatency(), seed=0))
        a = pnet.add_peer("a", "00")
        b = pnet.add_peer("b", "01")
        c = pnet.add_peer("c", "1")
        a.routing.add(0, "c")
        a.routing.add(1, "b")
        b.routing.add(0, "c")
        b.routing.add(1, "a")
        c.routing.add(0, "a")
        pnet.net.set_link_latency("a", "b", 0.2)
        pnet.net.set_link_latency("a", "c", 0.5)
        b.store.put(Entry(key="011", item_id="x", value="vb", version=1))
        c.store.put(Entry(key="10", item_id="y", value="vc", version=1))
        return pnet, a

    def test_two_region_lookup_completes_at_max_of_chains(self):
        pnet, a = self._tiny_overlay()
        with pnet.event_driven() as sched:
            results, trace = pnet.lookup_many(["011", "10"], start=a)
        # Chains: a->b + reply (0.2 + 0.2) and a->c + reply (0.5 + 0.5).
        # Overlapped completion is the max (1.0), not the sum (1.4).
        assert trace.latency == pytest.approx(1.0)
        assert trace.completion_time == pytest.approx(1.0)
        assert trace.messages == 4 and trace.hops == 2
        assert {(e.item_id, e.value) for e in results["011"]} == {("x", "vb")}
        assert {(e.item_id, e.value) for e in results["10"]} == {("y", "vc")}
        # The delivery log shows the chains genuinely interleaved in time.
        assert [(d.src, d.dst, d.time) for d in sched.log] == [
            ("a", "b", pytest.approx(0.2)),
            ("b", "a", pytest.approx(0.4)),
            ("a", "c", pytest.approx(0.5)),
            ("c", "a", pytest.approx(1.0)),
        ]
        assert sched.pending() == 0

    def test_causal_trace_mode_agrees_on_the_max(self):
        pnet, a = self._tiny_overlay()
        _results, trace = pnet.lookup_many(["011", "10"], start=a)
        assert trace.latency == pytest.approx(1.0)  # analytic parallel max
        assert trace.completion_time == 0.0  # never on a simulated clock

    def test_scheduler_refuses_offline_destination(self):
        pnet, a = self._tiny_overlay()
        pnet.peer("c").fail()
        scheduler = EventScheduler(pnet.net)
        with pytest.raises(NodeUnreachableError):
            scheduler.send_at(0.0, "a", "c", "test")


class TestDeterministicReplay:
    def _run(self, seed=404):
        pnet = _loaded(seed, latency_model=PlanetLabLatency())
        with pnet.event_driven() as sched:
            _results, lookup_trace = pnet.lookup_many(KEYS, start=pnet.peers[0])
            insert_trace = pnet.insert_many(
                [(encode_string(f"new{i}"), f"nid{i}", i) for i in range(10)],
                start=pnet.peers[1],
            )
        return list(sched.log), lookup_trace, insert_trace

    def test_same_seed_same_event_order_and_completion(self):
        log_a, lookup_a, insert_a = self._run()
        log_b, lookup_b, insert_b = self._run()
        assert log_a == log_b  # identical deliveries, identical instants
        assert lookup_a == lookup_b
        assert insert_a == insert_b
        assert insert_a.completion_time >= lookup_a.completion_time  # monotone clock

    def test_different_seed_differs(self):
        log_a, _lookup_a, _insert_a = self._run(404)
        log_b, _lookup_b, _insert_b = self._run(405)
        assert log_a != log_b


class TestModeAgreement:
    """Same seeds, twin overlays: trace mode vs event mode."""

    def test_lookup_many_messages_results_and_max_latency(self):
        trace_net = _loaded(77, latency_model=ConstantLatency(0.05))
        event_net = _loaded(77, latency_model=ConstantLatency(0.05))
        results_t, trace_t = trace_net.lookup_many(KEYS, start=trace_net.peers[0])
        with event_net.net.frame() as frame, event_net.event_driven():
            results_e, trace_e = event_net.lookup_many(KEYS, start=event_net.peers[0])
        assert _entry_sets(results_t) == _entry_sets(results_e)
        assert trace_t.messages == trace_e.messages == frame.messages
        # With constant per-link latency the measured max equals the analytic max.
        assert trace_e.latency == pytest.approx(trace_t.latency)
        assert frame.completion_time == pytest.approx(trace_e.completion_time)

    def test_insert_many_messages_and_replica_placement(self):
        trace_net = _overlay(78, latency_model=ConstantLatency(0.05))
        event_net = _overlay(78, latency_model=ConstantLatency(0.05))
        trace_t = trace_net.insert_many(ITEMS, start=trace_net.peers[0])
        with event_net.event_driven():
            trace_e = event_net.insert_many(ITEMS, start=event_net.peers[0])
        assert trace_t.messages == trace_e.messages
        assert trace_t.hops == trace_e.hops
        assert trace_e.latency == pytest.approx(trace_t.latency)

        def stored(pnet):
            return {(e.key, e.item_id, e.value) for e in pnet.all_entries()}

        assert stored(trace_net) == stored(event_net)
        for key, item_id, value in ITEMS:
            for peer in event_net.responsible_group(key):
                entry = peer.store.get_entry(key, item_id)
                assert entry is not None and entry.value == value

    def test_shower_fanout_same_tree_measured_max(self):
        trace_net = _loaded(79, latency_model=ConstantLatency(0.05))
        event_net = _loaded(79, latency_model=ConstantLatency(0.05))
        key_range = KeyRange(encode_string("word000"), encode_string("word030"))
        entries_t, trace_t, complete_t = range_query_shower(
            trace_net, key_range, start=trace_net.peers[0]
        )
        with event_net.event_driven():
            entries_e, trace_e, complete_e = range_query_shower(
                event_net, key_range, start=event_net.peers[0]
            )
        assert complete_t and complete_e
        assert {(e.key, e.item_id) for e in entries_t} == {(e.key, e.item_id) for e in entries_e}
        assert trace_t.messages == trace_e.messages
        assert trace_t.hops == trace_e.hops
        assert trace_e.latency == pytest.approx(trace_t.latency)

    def test_full_queries_agree_end_to_end(self):
        def build(seed=4242):
            store = UniStore.build(
                num_peers=32,
                replication=2,
                seed=seed,
                latency_model=ConstantLatency(0.05),
                enable_qgram_index=True,
            )
            workload = ConferenceWorkload(
                num_authors=20, num_publications=40, num_conferences=8, seed=seed
            )
            workload.load_into(store)
            return store, workload

        trace_store, workload = build()
        event_store, _workload = build()
        for name, vql in workload.query_mix().items():
            result_t = trace_store.execute(vql)
            with event_store.event_driven():
                result_e = event_store.execute(vql)
            assert result_t.sorted_rows() == result_e.sorted_rows(), name
            assert result_t.messages == result_e.messages, name
            assert result_e.trace.completion_time > 0.0, name

    def test_mqp_mode_runs_in_simulated_time(self):
        def build(seed=4243):
            store = UniStore.build(
                num_peers=32,
                replication=2,
                seed=seed,
                latency_model=ConstantLatency(0.05),
            )
            workload = ConferenceWorkload(
                num_authors=20, num_publications=40, num_conferences=8, seed=seed
            )
            workload.load_into(store)
            return store, workload

        trace_store, workload = build()
        event_store, _workload = build()
        join_query = workload.query_mix()["join"]
        result_t = trace_store.execute(join_query, mode="mqp")
        with event_store.event_driven():
            result_e = event_store.execute(join_query, mode="mqp")
        assert result_t.sorted_rows() == result_e.sorted_rows()
        assert result_t.messages == result_e.messages
        assert result_e.trace.completion_time > 0.0


class TestSingleOps:
    def test_single_lookup_and_insert_round_trip(self):
        pnet = _loaded(91, latency_model=ConstantLatency(0.05))
        with pnet.event_driven() as sched:
            entries, lookup_trace = pnet.lookup(KEYS[3], start=pnet.peers[2])
            insert_trace = pnet.insert(
                encode_string("fresh"), "fv", item_id="fid", start=pnet.peers[2]
            )
            removed, delete_trace = pnet.delete(encode_string("fresh"), "fid")
        assert entries and lookup_trace.completion_time > 0.0
        assert insert_trace.completion_time >= lookup_trace.completion_time
        assert removed and delete_trace.completion_time >= insert_trace.completion_time
        assert sched.pending() == 0

    def test_detach_restores_causal_trace_mode(self):
        pnet = _loaded(92)
        with pnet.event_driven():
            assert pnet.scheduler is not None
        assert pnet.scheduler is None
        _entries, trace = pnet.lookup(KEYS[0], start=pnet.peers[0])
        assert trace.completion_time == 0.0


class TestTraceCompletionTime:
    def test_composition_takes_latest_instant(self):
        a = Trace(1, 1, 0.1, completion_time=0.4)
        b = Trace(1, 1, 0.2, completion_time=0.3)
        assert a.then(b).completion_time == 0.4
        assert Trace.parallel([a, b]).completion_time == 0.4
        assert a.then(Trace.ZERO) == a
        assert Trace.hop(0.1, at=1.5).completion_time == 1.5
        assert Trace(2, 2, 0.5).finished_at(9.0) == Trace(2, 2, 0.5, 9.0)
