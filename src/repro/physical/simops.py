"""Physical similarity operators (paper §2: "Similarity operations are an
extremely important and essential part of a universal storage").

* :class:`NaiveSimilarityJoin` — execute both inputs, ship to the
  coordinator, verify all pairs with the banded edit distance.
* :class:`QGramSimilarityJoin` — execute the left input; for each distinct
  left string, probe the distributed q-gram index (count filter + verify) to
  find right-pattern triples within the bound.  Traffic ∝ distinct left
  values × |grams| lookups instead of |L| × |R| verifications at one peer.

The similarity *selection* (edist against a constant) is
:class:`~repro.physical.scans.QGramScan`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanningError
from repro.net.trace import Trace
from repro.algebra.semantics import Binding, merge_bindings
from repro.physical.base import ExecutionContext, OpResult, PhysicalOperator
from repro.physical.scans import QGramScan
from repro.strings import edit_distance_within
from repro.vql.ast import Expression, TriplePattern, Var


@dataclass
class NaiveSimilarityJoin(PhysicalOperator):
    """All-pairs verification at the coordinator."""

    left: PhysicalOperator
    right: PhysicalOperator
    left_variable: Var = None  # type: ignore[assignment]
    right_variable: Var = None  # type: ignore[assignment]
    max_distance: int = 0

    strategy = "naive"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def execute(self, ctx: ExecutionContext) -> OpResult:
        left_home = self.left.execute(ctx).at_coordinator(ctx, kind="simjoin-ship")
        right_home = self.right.execute(ctx).at_coordinator(ctx, kind="simjoin-ship")
        joined: list[Binding] = []
        for left_row in left_home.all_bindings():
            left_value = left_row.get(self.left_variable.name)
            if not isinstance(left_value, str):
                continue
            for right_row in right_home.all_bindings():
                right_value = right_row.get(self.right_variable.name)
                if not isinstance(right_value, str):
                    continue
                if edit_distance_within(left_value, right_value, self.max_distance) is None:
                    continue
                if _compatible(left_row, right_row):
                    joined.append(merge_bindings(left_row, right_row))
        trace = Trace.parallel([left_home.trace, right_home.trace])
        return OpResult(
            groups=[(ctx.coordinator.node_id, joined)] if joined else [],
            trace=trace,
            complete=left_home.complete and right_home.complete,
        )

    def _label(self) -> str:
        return (
            f"NaiveSimilarityJoin edist({self.left_variable}, {self.right_variable})"
            f" <= {self.max_distance}"
        )


@dataclass
class QGramSimilarityJoin(PhysicalOperator):
    """Index-probing similarity join via the distributed q-gram index."""

    left: PhysicalOperator
    right_pattern: TriplePattern = None  # type: ignore[assignment]
    right_filters: tuple[Expression, ...] = ()
    left_variable: Var = None  # type: ignore[assignment]
    right_variable: Var = None  # type: ignore[assignment]
    max_distance: int = 0
    q: int = 3

    strategy = "qgram"

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left,)

    def execute(self, ctx: ExecutionContext) -> OpResult:
        if self.right_pattern is None:
            raise PlanningError("QGramSimilarityJoin needs the right pattern spec")
        if not isinstance(self.right_pattern.object, Var) or (
            self.right_pattern.object.name != self.right_variable.name
        ):
            raise PlanningError(
                "QGramSimilarityJoin: right variable must be the right pattern's object"
            )
        left_home = self.left.execute(ctx).at_coordinator(ctx, kind="simjoin-ship")
        left_rows = left_home.all_bindings()

        joined: list[Binding] = []
        branches: list[Trace] = []
        probe_cache: dict[str, list[Binding]] = {}
        for left_row in left_rows:
            left_value = left_row.get(self.left_variable.name)
            if not isinstance(left_value, str):
                continue
            if left_value not in probe_cache:
                probe = QGramScan(
                    pattern=self.right_pattern,
                    filters=self.right_filters,
                    text=left_value,
                    max_distance=self.max_distance,
                    q=self.q,
                )
                result = probe.execute(ctx)
                branches.append(result.trace)
                probe_cache[left_value] = result.all_bindings()
            for right_row in probe_cache[left_value]:
                if _compatible(left_row, right_row):
                    joined.append(merge_bindings(left_row, right_row))
        trace = left_home.trace.then(Trace.parallel(branches)) if branches else left_home.trace
        return OpResult(
            groups=[(ctx.coordinator.node_id, joined)] if joined else [],
            trace=trace,
            complete=left_home.complete,
        )

    def _label(self) -> str:
        return (
            f"QGramSimilarityJoin[{self.right_pattern}] "
            f"edist({self.left_variable}, {self.right_variable}) <= {self.max_distance}"
        )


def _compatible(a: Binding, b: Binding) -> bool:
    return all(b.get(name, value) == value for name, value in a.items() if name in b)
