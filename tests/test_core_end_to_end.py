"""End-to-end tests of the UniStore facade: every execution mode agrees,
the paper's figures reproduce, and the system survives churn."""

import pytest

from repro import Triple, UniStore
from repro.bench import ConferenceWorkload
from repro.net.churn import ChurnModel
from repro.optimizer import PlannerConfig

PAPER_QUERY = """
SELECT ?name,?age,?cnt
WHERE {(?a,'name',?name) (?a,'age',?age)
 (?a,'num_of_pubs',?cnt)
 (?a,'has_published',?title) (?p,'title',?title)
 (?p,'published_in',?conf) (?c,'confname',?conf)
 (?c,'series',?sr) FILTER edist(?sr,'ICDE')<3
}
ORDER BY SKYLINE OF ?age MIN, ?cnt MAX
"""


def _canonical(rows):
    return sorted(tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows)


class TestFigure2:
    """The placement example of paper Figure 2, exactly."""

    @pytest.fixture()
    def fig2_store(self):
        store = UniStore.build(num_peers=8, replication=1, seed=42)
        store.insert_tuple(
            {"title": "Similarity...", "confname": "ICDE 2006 - WS", "year": 2006},
            oid="a12",
        )
        store.insert_tuple(
            {"title": "Progressive...", "confname": "ICDE 2005", "year": 2005},
            oid="v34",
        )
        return store

    def test_18_postings_on_8_peers(self, fig2_store):
        postings = sum(p.load for p in fig2_store.pnet.peers)
        assert postings == 18
        assert len(fig2_store.pnet) == 8

    def test_postings_split_three_ways(self, fig2_store):
        from repro.triples import IndexKind

        kinds = {IndexKind.OID: 0, IndexKind.AV: 0, IndexKind.V: 0}
        for peer in fig2_store.pnet.peers:
            for entry in peer.store:
                kinds[entry.value.kind] += 1
        assert kinds == {IndexKind.OID: 6, IndexKind.AV: 6, IndexKind.V: 6}

    def test_tuple_reassembly(self, fig2_store):
        result = fig2_store.execute("SELECT ?a,?v WHERE {('v34',?a,?v)}")
        assert _canonical(result.rows) == _canonical(
            [
                {"a": "title", "v": "Progressive..."},
                {"a": "confname", "v": "ICDE 2005"},
                {"a": "year", "v": 2005},
            ]
        )

    def test_av_access(self, fig2_store):
        result = fig2_store.execute("SELECT ?o WHERE {(?o,'year',2006)}")
        assert result.rows == [{"o": "a12"}]

    def test_v_access(self, fig2_store):
        result = fig2_store.execute("SELECT ?o,?a WHERE {(?o,?a,'ICDE 2005')}")
        assert result.rows == [{"o": "v34", "a": "confname"}]


class TestExecutionModes:
    def test_modes_agree_on_query_mix(self, conference_store, conference_workload):
        for name, vql in conference_workload.query_mix().items():
            reference = conference_store.execute(vql, mode="reference")
            optimized = conference_store.execute(vql, mode="optimized")
            assert _canonical(optimized.rows) == _canonical(reference.rows), name

    def test_mqp_agrees_on_join_queries(self, conference_store, conference_workload):
        mix = conference_workload.query_mix()
        for name in ("lookup", "join", "skyline"):
            reference = conference_store.execute(mix[name], mode="reference")
            mqp = conference_store.execute(mix[name], mode="mqp")
            assert _canonical(mqp.rows) == _canonical(reference.rows), name

    def test_mqp_topn_is_a_valid_topn(self, conference_store, conference_workload):
        """Ties at the cut make top-N answers non-unique; any valid top-N set
        (same sort-key multiset, rows drawn from the full result) is correct."""
        vql = conference_workload.query_mix()["topn"]
        mqp = conference_store.execute(vql, mode="mqp")
        reference = conference_store.execute(vql, mode="reference")
        assert sorted(r["cnt"] for r in mqp.rows) == sorted(r["cnt"] for r in reference.rows)
        full = conference_store.execute(
            "SELECT ?name,?cnt WHERE {(?a,'name',?name) (?a,'num_of_pubs',?cnt)}",
            mode="reference",
        )
        universe = _canonical(full.rows)
        for row in _canonical(mqp.rows):
            assert row in universe

    def test_paper_query_all_modes(self, conference_store):
        answers = {}
        for mode in ("reference", "optimized", "mqp"):
            result = conference_store.execute(PAPER_QUERY, mode=mode)
            answers[mode] = _canonical(result.rows)
        assert answers["optimized"] == answers["reference"]
        assert answers["mqp"] == answers["reference"]

    def test_unknown_mode_rejected(self, conference_store):
        with pytest.raises(ValueError):
            conference_store.execute("SELECT ?x WHERE {(?x,'age',30)}", mode="magic")

    def test_forced_strategies_same_answers(self, conference_store, conference_workload):
        vql = conference_workload.query_mix()["join"]
        reference = conference_store.execute(vql, mode="reference")
        for strategy in ("ship", "index-nl", "rehash"):
            result = conference_store.execute(vql, config=PlannerConfig(join_strategy=strategy))
            assert _canonical(result.rows) == _canonical(reference.rows), strategy

    def test_range_algorithms_same_answers(self, conference_store, conference_workload):
        vql = conference_workload.query_mix()["range"]
        shower = conference_store.execute(vql, config=PlannerConfig(range_algorithm="shower"))
        sequential = conference_store.execute(
            vql, config=PlannerConfig(range_algorithm="sequential")
        )
        assert _canonical(shower.rows) == _canonical(sequential.rows)

    def test_explain_mentions_both_levels(self, conference_store):
        text = conference_store.explain("SELECT ?x WHERE {(?x,'age',30)}")
        assert "-- logical --" in text and "-- physical --" in text
        assert "AvLookupScan" in text


class TestIngestionAPI:
    def test_insert_tuple_generates_oid(self):
        store = UniStore.build(num_peers=8, seed=3)
        oid, trace = store.insert_tuple({"name": "Ada"})
        assert oid.startswith("oid:")
        assert trace.messages > 0
        assert store.execute("SELECT ?n WHERE {(?x,'name',?n)}").rows == [{"n": "Ada"}]

    def test_insert_rdf_triple(self):
        store = UniStore.build(num_peers=8, seed=4)
        store.insert_triple(Triple("urn:x", "rdf:type", "Person"))
        result = store.execute("SELECT ?s WHERE {(?s,'rdf:type','Person')}")
        assert result.rows == [{"s": "urn:x"}]

    def test_null_values_skipped(self):
        store = UniStore.build(num_peers=8, seed=5)
        oid, _ = store.insert_tuple({"a": 1, "b": None})
        rows = store.execute(f"SELECT ?p WHERE {{('{oid}',?p,?v)}}").rows
        assert [r["p"] for r in rows] == ["a"]

    def test_query_log_records(self):
        store = UniStore.build(num_peers=8, seed=6)
        store.insert_tuple({"k": 1})
        store.execute("SELECT ?x WHERE {(?x,'k',1)}")
        assert store.log.summary()["queries"] == 1
        record = store.log.records[0]
        assert record.rows == 1 and record.mode == "optimized"
        assert store.log.replay_info(0)["text"].startswith("SELECT")


class TestMappingExpansion:
    def test_expansion_unions_schemas(self):
        store = UniStore.build(num_peers=16, seed=7)
        store.insert_tuple({"dblp:title": "X"})
        store.insert_tuple({"ilm:papertitle": "Y"})
        store.add_mapping("dblp:title", "ilm:papertitle")
        plain = store.execute("SELECT ?t WHERE {(?p,'dblp:title',?t)}")
        expanded = store.execute("SELECT ?t WHERE {(?p,'dblp:title',?t)}", expand_mappings=True)
        assert sorted(r["t"] for r in plain.rows) == ["X"]
        assert sorted(r["t"] for r in expanded.rows) == ["X", "Y"]

    def test_expansion_costs_messages(self):
        store = UniStore.build(num_peers=16, seed=8)
        store.insert_tuple({"a:x": 1})
        store.add_mapping("a:x", "b:y")
        result = store.execute("SELECT ?v WHERE {(?p,'a:x',?v)}", expand_mappings=True)
        plain = store.execute("SELECT ?v WHERE {(?p,'a:x',?v)}")
        assert result.messages > plain.messages  # catalog lookups are real


class TestChurnResilience:
    def test_queries_survive_partial_failures(self):
        store = UniStore.build(num_peers=64, replication=4, seed=9)
        workload = ConferenceWorkload(
            num_authors=20, num_publications=30, num_conferences=8, seed=9
        )
        workload.load_into(store)
        churn = ChurnModel(store.pnet.peers, seed=9)
        churn.fail_fraction(0.15)
        result = store.execute("SELECT ?n WHERE {(?a,'name',?n)}")
        # With r=4 and 15% failures, the attribute scan should still be complete.
        assert result.complete
        assert len(result.rows) == 20

    def test_incomplete_results_flagged(self):
        store = UniStore.build(num_peers=32, replication=1, seed=10)
        workload = ConferenceWorkload(
            num_authors=20, num_publications=30, num_conferences=8, seed=10
        )
        workload.load_into(store)
        churn = ChurnModel(store.pnet.peers, seed=10)
        churn.fail_fraction(0.4)
        try:
            result = store.execute("SELECT ?n WHERE {(?a,'name',?n)}")
        except Exception:
            return  # routing dead-end is also an acceptable failure mode
        if len(result.rows) < 20:
            assert not result.complete


class TestResultPresentation:
    def test_as_table_renders(self, conference_store):
        result = conference_store.execute(
            "SELECT ?name,?age WHERE {(?a,'name',?name) (?a,'age',?age)} LIMIT 3"
        )
        table = result.as_table()
        assert "?name" in table and "?age" in table
        assert table.count("\n") >= 4  # header + rule + 3 rows

    def test_column_accessor(self, conference_store):
        result = conference_store.execute(
            "SELECT ?age WHERE {(?a,'age',?age)} ORDER BY ?age LIMIT 5"
        )
        ages = result.column("age")
        assert ages == sorted(ages)

    def test_answer_time_positive(self, conference_store):
        # A lucky coordinator may hold the whole (colocated) attribute and
        # answer for free; across several random coordinators the scan must
        # cost real messages.
        results = [conference_store.execute("SELECT ?n WHERE {(?a,'name',?n)}") for _ in range(5)]
        assert max(r.answer_time for r in results) > 0
        assert max(r.messages for r in results) > 0
