"""P-Grid overlay: construction, routing, inserts/lookups, fault tolerance."""

import math
import random
import string

import pytest

from repro.errors import RoutingError
from repro.pgrid import (
    PGridNetwork,
    balanced_paths,
    bootstrap_exchange,
    build_network,
    bulk_load,
    data_split_paths,
    encode_string,
    is_complete_partition,
    route,
)
from repro.pgrid.peer import RoutingTable


def _random_words(count, seed, length=6):
    rng = random.Random(seed)
    return ["".join(rng.choice(string.ascii_lowercase) for _ in range(length))
            for _ in range(count)]


class TestPathLayouts:
    def test_balanced_paths_power_of_two(self):
        paths = balanced_paths(8)
        assert len(paths) == 8
        assert all(len(p) == 3 for p in paths)
        assert is_complete_partition(paths)

    def test_balanced_paths_odd_count(self):
        paths = balanced_paths(5)
        assert len(paths) == 5
        assert is_complete_partition(paths)

    def test_balanced_paths_single(self):
        assert balanced_paths(1) == [""]

    def test_balanced_paths_rejects_zero(self):
        with pytest.raises(ValueError):
            balanced_paths(0)

    def test_data_split_follows_density(self):
        # All keys start with '0' -> the '0' side must be split deeper.
        keys = [encode_string(w) for w in _random_words(200, 3)]
        keys = ["0" + k[1:] for k in keys]
        paths = data_split_paths(keys, 8)
        assert is_complete_partition(paths)
        zero_side = [p for p in paths if p.startswith("0")]
        one_side = [p for p in paths if p.startswith("1")]
        assert len(zero_side) > len(one_side)

    def test_data_split_no_keys_falls_back(self):
        assert data_split_paths([], 4) == balanced_paths(4)


class TestOracleConstruction:
    def test_complete_partition(self):
        pnet = build_network(24, replication=2, seed=5)
        assert pnet.is_complete()

    def test_replication_target(self):
        pnet = build_network(32, replication=4, seed=5, split_by="population")
        groups = pnet.leaf_groups()
        assert len(groups) == 8
        assert all(len(peers) == 4 for peers in groups.values())

    def test_routing_tables_have_required_prefixes(self):
        pnet = build_network(32, replication=2, seed=6, split_by="population")
        for peer in pnet.peers:
            for level in range(len(peer.path)):
                refs = peer.valid_refs(level)
                assert refs, f"{peer.node_id} missing level {level}"
                prefix = peer.required_prefix(level)
                for ref_id in refs:
                    assert pnet.peer(ref_id).path.startswith(prefix)

    def test_replica_lists_symmetric(self):
        pnet = build_network(16, replication=2, seed=7, split_by="population")
        for peer in pnet.peers:
            for replica_id in peer.replicas:
                replica = pnet.peer(replica_id)
                assert replica.path == peer.path
                assert peer.node_id in replica.replicas

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            build_network(0)
        with pytest.raises(ValueError):
            build_network(4, replication=0)
        with pytest.raises(ValueError):
            build_network(4, split_by="magic")


class TestRoutingAndLookup:
    def test_every_key_reaches_owner(self):
        words = _random_words(100, seed=11)
        keys = [encode_string(w) for w in words]
        pnet = build_network(64, data_keys=keys, replication=2, seed=11)
        items = [(k, f"i{i}", w) for i, (k, w) in enumerate(zip(keys, words))]
        bulk_load(pnet, items)
        for word, key in zip(words, keys):
            entries, _trace = pnet.lookup(key)
            assert any(e.value == word for e in entries)

    def test_hops_are_logarithmic(self):
        words = _random_words(50, seed=13)
        keys = [encode_string(w) for w in words]
        pnet = build_network(128, replication=1, seed=13, split_by="population")
        hop_counts = []
        for key in keys:
            _entries, trace = pnet.lookup(key)
            hop_counts.append(trace.hops)
        # 128 groups -> log2 = 7; allow detours and reply hop.
        assert max(hop_counts) <= 2 * math.log2(128) + 2

    def test_route_from_every_peer(self):
        pnet = build_network(16, replication=1, seed=15, split_by="population")
        key = encode_string("hello")
        owners = {p.node_id for p in pnet.responsible_group(key)}
        for start in pnet.peers:
            destination, _trace = route(start, key)
            assert destination.node_id in owners

    def test_insert_reaches_all_replicas(self):
        pnet = build_network(16, replication=2, seed=17, split_by="population")
        key = encode_string("item")
        pnet.insert(key, "payload", item_id="a")
        group = pnet.responsible_group(key)
        assert len(group) == 2
        for peer in group:
            assert any(e.value == "payload" for e in peer.store.get(key))

    def test_lookup_fails_when_whole_group_dead(self):
        pnet = build_network(16, replication=2, seed=19, split_by="population")
        key = encode_string("doomed")
        pnet.insert(key, "x", item_id="a")
        for peer in pnet.responsible_group(key):
            peer.fail()
        alive = [p for p in pnet.peers if p.online]
        with pytest.raises(RoutingError):
            # Enough retries to rule out lucky detours.
            for start in alive:
                pnet.lookup(key, start=start)

    def test_lookup_survives_partial_group_failure(self):
        pnet = build_network(32, replication=4, seed=21, split_by="population")
        key = encode_string("resilient")
        pnet.insert(key, "x", item_id="a")
        group = pnet.responsible_group(key)
        for peer in group[:2]:  # kill half the replicas
            peer.fail()
        entries, _trace = pnet.lookup(key)
        assert any(e.value == "x" for e in entries)

    def test_stale_refs_pruned_on_use(self):
        pnet = build_network(8, replication=1, seed=23, split_by="population")
        peer = pnet.peers[0]
        level = 0
        refs_before = peer.routing.refs(level)
        assert refs_before
        # Corrupt one ref by pointing it at a peer from the wrong subtree.
        wrong = next(
            p for p in pnet.peers
            if not p.path.startswith(peer.required_prefix(level))
        )
        peer.routing.add(level, wrong.node_id)
        valid = peer.valid_refs(level)
        assert wrong.node_id not in valid
        assert wrong.node_id not in peer.routing.refs(level)  # pruned


class TestRoutingTable:
    def test_fanout_cap(self):
        table = RoutingTable(fanout=2)
        for index in range(5):
            table.add(0, f"p{index}")
        assert len(table.refs(0)) == 2

    def test_no_duplicates(self):
        table = RoutingTable()
        table.add(0, "p")
        table.add(0, "p")
        assert table.refs(0) == ["p"]

    def test_truncate(self):
        table = RoutingTable()
        table.add(0, "a")
        table.add(1, "b")
        table.add(2, "c")
        table.truncate(1)
        assert table.levels() == [0]

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            RoutingTable(fanout=0)


class TestDecentralizedBootstrap:
    def test_exchange_converges_to_partition(self):
        pnet = PGridNetwork(seed=31)
        for index in range(16):
            pnet.add_peer(f"boot-{index:02d}")
        # Give every peer some data so splits are justified.
        words = _random_words(96, seed=31)
        rng = random.Random(31)
        for word in words:
            peer = rng.choice(pnet.peers)
            from repro.pgrid.datastore import Entry

            peer.store.put(Entry(encode_string(word), word, word, 0))
        bootstrap_exchange(pnet, rounds=60, capacity=12, rng=rng)
        paths = set(pnet.trie_paths())
        assert len(paths) > 1, "network never specialized"
        assert is_complete_partition(list(paths))

    def test_exchange_preserves_all_data(self):
        pnet = PGridNetwork(seed=37)
        for index in range(8):
            pnet.add_peer(f"boot-{index}")
        words = _random_words(40, seed=37)
        rng = random.Random(37)
        from repro.pgrid.datastore import Entry

        for word in words:
            rng.choice(pnet.peers).store.put(
                Entry(encode_string(word), word, word, 0)
            )
        bootstrap_exchange(pnet, rounds=40, capacity=8, rng=rng)
        stored = {e.item_id for e in pnet.all_entries()}
        assert stored == set(words)

    def test_peers_end_up_responsible_for_their_data(self):
        from repro.pgrid.keys import responsible

        pnet = PGridNetwork(seed=41)
        for index in range(8):
            pnet.add_peer(f"boot-{index}")
        words = _random_words(48, seed=41)
        rng = random.Random(41)
        from repro.pgrid.datastore import Entry

        for word in words:
            rng.choice(pnet.peers).store.put(
                Entry(encode_string(word), word, word, 0)
            )
        bootstrap_exchange(pnet, rounds=80, capacity=8, rng=rng)
        misplaced = 0
        for peer in pnet.peers:
            for entry in peer.store:
                if not responsible(peer.path, entry.key):
                    misplaced += 1
        total = sum(p.load for p in pnet.peers)
        assert misplaced / max(1, total) < 0.25  # most data homed correctly
