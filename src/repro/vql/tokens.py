"""Token definitions for VQL (Vertical Query Language).

VQL is "derived from SPARQL" (paper §2): triple patterns in braces,
variables marked with ``?``, plus SQL-flavoured clause keywords including the
ranking extensions ``SKYLINE OF`` and ``LIMIT``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    # literals & identifiers
    VARIABLE = auto()  # ?name
    STRING = auto()  # 'text' or "text"
    NUMBER = auto()  # 42, 3.14, -7
    IDENT = auto()  # bare identifier (function names)

    # keywords
    SELECT = auto()
    DISTINCT = auto()
    WHERE = auto()
    FILTER = auto()
    ORDER = auto()
    BY = auto()
    SKYLINE = auto()
    OF = auto()
    LIMIT = auto()
    OFFSET = auto()
    UNION = auto()
    OPTIONAL = auto()
    ASC = auto()
    DESC = auto()
    MIN = auto()
    MAX = auto()
    AND = auto()
    OR = auto()
    NOT = auto()

    # punctuation & operators
    LBRACE = auto()  # {
    RBRACE = auto()  # }
    LPAREN = auto()  # (
    RPAREN = auto()  # )
    COMMA = auto()  # ,
    STAR = auto()  # *
    EQ = auto()  # =
    NEQ = auto()  # !=
    LT = auto()  # <
    LE = auto()  # <=
    GT = auto()  # >
    GE = auto()  # >=
    BANG = auto()  # !

    EOF = auto()


#: Keyword spellings (case-insensitive in the lexer).
KEYWORDS = {
    "SELECT": TokenType.SELECT,
    "DISTINCT": TokenType.DISTINCT,
    "WHERE": TokenType.WHERE,
    "FILTER": TokenType.FILTER,
    "ORDER": TokenType.ORDER,
    "BY": TokenType.BY,
    "SKYLINE": TokenType.SKYLINE,
    "OF": TokenType.OF,
    "LIMIT": TokenType.LIMIT,
    "OFFSET": TokenType.OFFSET,
    "UNION": TokenType.UNION,
    "OPTIONAL": TokenType.OPTIONAL,
    "ASC": TokenType.ASC,
    "DESC": TokenType.DESC,
    "MIN": TokenType.MIN,
    "MAX": TokenType.MAX,
    "AND": TokenType.AND,
    "OR": TokenType.OR,
    "NOT": TokenType.NOT,
}


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (1-based line/column)."""

    type: TokenType
    value: object
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r} @{self.line}:{self.column})"
