"""Workload generators and the experiment harness (deliverable d)."""

from repro.bench.harness import (
    ResultTable,
    fit_log2_slope,
    mean,
    median,
    percentile,
)
from repro.bench.workloads import (
    AREAS,
    SERIES,
    ConferenceWorkload,
    batched,
    ingest_tuples,
    inject_typo,
    make_name,
    make_title,
    skewed_strings,
    zipf_values,
)

__all__ = [
    "ConferenceWorkload",
    "zipf_values",
    "skewed_strings",
    "batched",
    "ingest_tuples",
    "inject_typo",
    "make_name",
    "make_title",
    "SERIES",
    "AREAS",
    "ResultTable",
    "mean",
    "median",
    "percentile",
    "fit_log2_slope",
]
