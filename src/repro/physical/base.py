"""Physical-operator infrastructure.

    "For each logical operator there are several physical implementations
     available ... They differ in the kind of used indexes, applied routing
     strategy, parallelism, etc."  (paper §2)

A physical operator's :meth:`execute` returns an :class:`OpResult` in
*produce form*: the result bindings grouped by the peer currently holding
them, plus the causal trace up to that state.  Consumers then decide the data
flow — ship everything to the coordinator, re-hash to rendezvous peers, prune
locally first — and account the shipping themselves.  This is what lets the
three join strategies and the two ranking strategies differ in measurable
messages/latency while computing identical results.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.net.trace import Trace
from repro.algebra.expressions import satisfies
from repro.algebra.semantics import Binding, match_pattern
from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer
from repro.triples.index import IndexKind
from repro.triples.store import DistributedTripleStore, Posting
from repro.vql.ast import TriplePattern


@dataclass
class ExecutionContext:
    """Everything a physical operator needs to run.

    ``coordinator`` is the query-issuing peer (the paper's demonstration
    laptop); all final results are delivered there.
    """

    store: DistributedTripleStore
    coordinator: PGridPeer
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    range_algorithm: str = "shower"

    @property
    def pnet(self) -> PGridNetwork:
        return self.store.pnet


@dataclass
class OpResult:
    """Bindings grouped by the peer holding them, plus the cost so far."""

    groups: list[tuple[str, list[Binding]]]
    trace: Trace = Trace.ZERO
    complete: bool = True

    def all_bindings(self) -> list[Binding]:
        rows: list[Binding] = []
        for _peer_id, bindings in self.groups:
            rows.extend(bindings)
        return rows

    def total_rows(self) -> int:
        return sum(len(bindings) for _peer, bindings in self.groups)

    def shipped_to(self, ctx: ExecutionContext, dest_id: str, kind: str = "ship") -> "OpResult":
        """Move every group to one peer (parallel sends, sized by payload).

        The sends go through :meth:`PGridNetwork.ship_many`, so under
        event-driven execution the shipping wave fans out concurrently on
        the simulated clock and completes at the slowest group's arrival.
        """
        rows: list[Binding] = []
        sends: list[tuple[str, str, str, int]] = []
        for peer_id, bindings in self.groups:
            rows.extend(bindings)
            if peer_id != dest_id and bindings:
                sends.append((peer_id, dest_id, kind, len(bindings)))
        trace = self.trace.then(ctx.pnet.ship_many(sends)) if sends else self.trace
        return OpResult(groups=[(dest_id, rows)], trace=trace, complete=self.complete)

    def at_coordinator(self, ctx: ExecutionContext, kind: str = "ship") -> "OpResult":
        return self.shipped_to(ctx, ctx.coordinator.node_id, kind=kind)


def match_postings(
    entries,
    pattern: TriplePattern,
    kind: IndexKind,
    variable: str,
    value,
    filters,
) -> list[Binding]:
    """Bindings produced by the index postings under one probe key.

    Deduplicates postings, unifies them against ``pattern``, keeps only
    matches whose ``variable`` equals the probed ``value`` and that pass the
    ``filters``.  OID probes compare against ``str(value)`` (OIDs are
    strings) but keep the caller's original join value in the binding, so a
    non-string join value still unifies with the row that produced it.

    Shared by the index-nested-loop join and the MQP probe step — the two
    per-value probe paths — so their matching semantics cannot drift.
    """
    matches: list[Binding] = []
    seen: set = set()
    for entry in entries:
        posting = entry.value
        if not isinstance(posting, Posting) or posting.kind is not kind:
            continue
        identity = posting.triple.as_tuple()
        if identity in seen:
            continue
        seen.add(identity)
        binding = match_pattern(pattern, posting.triple)
        if binding is None:
            continue
        if kind is IndexKind.OID:
            if binding.get(variable) != str(value):
                continue
            binding = {**binding, variable: value}
        elif binding.get(variable) != value:
            continue
        if all(satisfies(f, binding) for f in filters):
            matches.append(binding)
    return matches


class PhysicalOperator(ABC):
    """Base class; subclasses are the concrete strategies."""

    #: Short strategy name used in EXPLAIN output and benchmarks.
    strategy: str = ""

    @abstractmethod
    def execute(self, ctx: ExecutionContext) -> OpResult:
        """Run the operator and return results in produce form."""

    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def explain(self, indent: int = 0) -> str:
        lines = [("  " * indent) + self._label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        name = type(self).__name__
        return f"{name}[{self.strategy}]" if self.strategy else name
