"""Recursive-descent parser for VQL.

Grammar (terminals in caps; ``[x]`` optional, ``{x}`` repetition)::

    query        = SELECT [DISTINCT] select_list where
                   [ORDER BY (skyline | order_list)] [LIMIT num] [OFFSET num]
    select_list  = '*' | var {',' var}
    where        = WHERE group {UNION group}
    group        = '{' {pattern | FILTER expr | OPTIONAL group} '}'
    pattern      = '(' term ',' term ',' term ')'
    term         = var | string | number
    skyline      = SKYLINE OF var (MIN|MAX) {',' var (MIN|MAX)}
    order_list   = var [ASC|DESC] {',' var [ASC|DESC]}
    expr         = and_expr {OR and_expr}
    and_expr     = unary {AND unary}
    unary        = ('!'|NOT) unary | comparison
    comparison   = operand [cmp_op operand]
    operand      = var | literal | ident '(' [expr {',' expr}] ')' | '(' expr ')'

The example query of the paper (§2) parses verbatim.
"""

from __future__ import annotations

from repro.errors import VQLSyntaxError
from repro.vql.ast import (
    BoolOp,
    Comparison,
    Expression,
    FunctionCall,
    GroupPattern,
    Literal,
    Not,
    OrderItem,
    Query,
    SkylineItem,
    Term,
    TriplePattern,
    Var,
)
from repro.vql.lexer import tokenize
from repro.vql.tokens import Token, TokenType

_COMPARISON_OPS = {
    TokenType.EQ: "=",
    TokenType.NEQ: "!=",
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
}


def parse(text: str) -> Query:
    """Parse VQL text into a :class:`~repro.vql.ast.Query`."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def check(self, token_type: TokenType) -> bool:
        return self.current.type is token_type

    def accept(self, token_type: TokenType) -> Token | None:
        if self.check(token_type):
            return self.advance()
        return None

    def expect(self, token_type: TokenType, what: str) -> Token:
        if not self.check(token_type):
            raise self.error(f"expected {what}, found {self.current.value!r}")
        return self.advance()

    def error(self, message: str) -> VQLSyntaxError:
        return VQLSyntaxError(message, line=self.current.line, column=self.current.column)

    # -- grammar ------------------------------------------------------------

    def parse_query(self) -> Query:
        self.expect(TokenType.SELECT, "SELECT")
        distinct = self.accept(TokenType.DISTINCT) is not None
        select = self.parse_select_list()
        groups = self.parse_where()
        order_by: tuple[OrderItem, ...] = ()
        skyline: tuple[SkylineItem, ...] = ()
        if self.accept(TokenType.ORDER):
            self.expect(TokenType.BY, "BY after ORDER")
            if self.accept(TokenType.SKYLINE):
                self.expect(TokenType.OF, "OF after SKYLINE")
                skyline = self.parse_skyline_items()
            else:
                order_by = self.parse_order_items()
        limit = None
        if self.accept(TokenType.LIMIT):
            limit_token = self.expect(TokenType.NUMBER, "a number after LIMIT")
            limit = int(limit_token.value)  # type: ignore[arg-type]
            if limit < 0:
                raise self.error("LIMIT must be non-negative")
        offset = 0
        if self.accept(TokenType.OFFSET):
            offset_token = self.expect(TokenType.NUMBER, "a number after OFFSET")
            offset = int(offset_token.value)  # type: ignore[arg-type]
            if offset < 0:
                raise self.error("OFFSET must be non-negative")
        self.expect(TokenType.EOF, "end of query")
        return Query(
            select=select,
            groups=groups,
            distinct=distinct,
            order_by=order_by,
            skyline=skyline,
            limit=limit,
            offset=offset,
        )

    def parse_select_list(self) -> tuple[Var, ...]:
        if self.accept(TokenType.STAR):
            return ()
        variables = [self.parse_variable()]
        while self.accept(TokenType.COMMA):
            variables.append(self.parse_variable())
        return tuple(variables)

    def parse_variable(self) -> Var:
        token = self.expect(TokenType.VARIABLE, "a variable")
        return Var(str(token.value))

    def parse_where(self) -> tuple[GroupPattern, ...]:
        self.expect(TokenType.WHERE, "WHERE")
        groups = [self.parse_group()]
        while self.accept(TokenType.UNION):
            groups.append(self.parse_group())
        return tuple(groups)

    def parse_group(self) -> GroupPattern:
        self.expect(TokenType.LBRACE, "'{'")
        patterns: list[TriplePattern] = []
        filters: list[Expression] = []
        optionals: list[GroupPattern] = []
        while not self.check(TokenType.RBRACE):
            if self.check(TokenType.EOF):
                raise self.error("unterminated WHERE group (missing '}')")
            if self.accept(TokenType.FILTER):
                filters.append(self.parse_expression())
            elif self.accept(TokenType.OPTIONAL):
                optionals.append(self.parse_group())
            else:
                patterns.append(self.parse_pattern())
        self.expect(TokenType.RBRACE, "'}'")
        if not patterns:
            raise self.error("a WHERE group needs at least one triple pattern")
        return GroupPattern(
            patterns=tuple(patterns), filters=tuple(filters), optionals=tuple(optionals)
        )

    def parse_pattern(self) -> TriplePattern:
        self.expect(TokenType.LPAREN, "'(' starting a triple pattern")
        subject = self.parse_term()
        self.expect(TokenType.COMMA, "','")
        predicate = self.parse_term()
        self.expect(TokenType.COMMA, "','")
        object_ = self.parse_term()
        self.expect(TokenType.RPAREN, "')' closing a triple pattern")
        return TriplePattern(subject, predicate, object_)

    def parse_term(self) -> Term:
        if self.check(TokenType.VARIABLE):
            return self.parse_variable()
        if self.check(TokenType.STRING) or self.check(TokenType.NUMBER):
            return Literal(self.advance().value)
        raise self.error("expected a variable or literal in a triple pattern")

    def parse_skyline_items(self) -> tuple[SkylineItem, ...]:
        items = [self.parse_skyline_item()]
        while self.accept(TokenType.COMMA):
            items.append(self.parse_skyline_item())
        return tuple(items)

    def parse_skyline_item(self) -> SkylineItem:
        variable = self.parse_variable()
        if self.accept(TokenType.MIN):
            return SkylineItem(variable, maximize=False)
        if self.accept(TokenType.MAX):
            return SkylineItem(variable, maximize=True)
        raise self.error("each SKYLINE OF dimension needs MIN or MAX")

    def parse_order_items(self) -> tuple[OrderItem, ...]:
        items = [self.parse_order_item()]
        while self.accept(TokenType.COMMA):
            items.append(self.parse_order_item())
        return tuple(items)

    def parse_order_item(self) -> OrderItem:
        variable = self.parse_variable()
        if self.accept(TokenType.DESC):
            return OrderItem(variable, descending=True)
        self.accept(TokenType.ASC)
        return OrderItem(variable, descending=False)

    # -- filter expressions ---------------------------------------------------

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        operands = [self.parse_and()]
        while self.accept(TokenType.OR):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("or", tuple(operands))

    def parse_and(self) -> Expression:
        operands = [self.parse_unary()]
        while self.accept(TokenType.AND):
            operands.append(self.parse_unary())
        if len(operands) == 1:
            return operands[0]
        return BoolOp("and", tuple(operands))

    def parse_unary(self) -> Expression:
        if self.accept(TokenType.BANG) or self.accept(TokenType.NOT):
            return Not(self.parse_unary())
        return self.parse_comparison()

    def parse_comparison(self) -> Expression:
        left = self.parse_operand()
        op = _COMPARISON_OPS.get(self.current.type)
        if op is None:
            return left
        self.advance()
        right = self.parse_operand()
        return Comparison(op, left, right)

    def parse_operand(self) -> Expression:
        if self.check(TokenType.VARIABLE):
            return self.parse_variable()
        if self.check(TokenType.STRING) or self.check(TokenType.NUMBER):
            return Literal(self.advance().value)
        if self.check(TokenType.IDENT):
            name = str(self.advance().value)
            self.expect(TokenType.LPAREN, f"'(' after function name {name!r}")
            args: list[Expression] = []
            if not self.check(TokenType.RPAREN):
                args.append(self.parse_expression())
                while self.accept(TokenType.COMMA):
                    args.append(self.parse_expression())
            self.expect(TokenType.RPAREN, "')' closing function arguments")
            return FunctionCall(name.lower(), tuple(args))
        if self.accept(TokenType.LPAREN):
            inner = self.parse_expression()
            self.expect(TokenType.RPAREN, "')'")
            return inner
        raise self.error(f"unexpected token {self.current.value!r} in expression")
