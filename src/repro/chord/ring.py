"""The Chord ring: construction, routing, puts/gets with replication.

Routing follows the classic iterative algorithm: jump to the closest
preceding finger until the key falls between a node and its successor.  Hops
are O(log N) w.h.p.  Offline fingers are skipped; when no finger helps, the
route falls back to walking the successor list, which keeps lookups alive
under moderate churn (at linear cost, as in the original protocol).
"""

from __future__ import annotations

import random

from repro.errors import RoutingError
from repro.net.latency import LatencyModel
from repro.net.network import Network
from repro.net.trace import Trace
from repro.chord.node import M_BITS, RING, ChordNode, chord_hash, in_interval

#: Hard bound on route length (a healthy route is O(log N)).
MAX_HOPS = 256


class ChordRing:
    """A Chord overlay over the simulated network."""

    def __init__(
        self,
        num_nodes: int,
        latency_model: LatencyModel | None = None,
        seed: int = 0,
        successor_count: int = 4,
        replication: int = 1,
        network: Network | None = None,
    ):
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        # Network defines __len__; an empty one is falsy, so test identity.
        self.net = network if network is not None else Network(
            latency_model=latency_model, seed=seed
        )
        self.rng = random.Random(seed ^ 0xC0DE)
        self.replication = replication
        self.successor_count = max(successor_count, replication)
        self.nodes: list[ChordNode] = []
        used: set[int] = set()
        for index in range(num_nodes):
            ring_id = chord_hash(f"chord-node-{seed}-{index}")
            while ring_id in used:  # extremely unlikely with 2**32 ids
                ring_id = (ring_id + 1) % RING
            used.add(ring_id)
            self.nodes.append(ChordNode(f"chord-{index:04d}", self.net, ring_id))
        self.nodes.sort(key=lambda n: n.ring_id)
        self._wire()

    # -- construction --------------------------------------------------------

    def _wire(self) -> None:
        """Build finger tables and successor lists from the global view."""
        count = len(self.nodes)
        ids = [n.ring_id for n in self.nodes]
        for position, node in enumerate(self.nodes):
            node.successors = [
                self.nodes[(position + offset) % count].node_id
                for offset in range(1, self.successor_count + 1)
            ]
            node.fingers = []
            for k in range(M_BITS):
                target = (node.ring_id + (1 << k)) % RING
                node.fingers.append(self._successor_of(ids, target).node_id)

    def _successor_of(self, sorted_ids: list[int], target: int) -> ChordNode:
        """First node at or after ``target`` on the ring (global view)."""
        import bisect

        index = bisect.bisect_left(sorted_ids, target)
        return self.nodes[index % len(self.nodes)]

    # -- routing --------------------------------------------------------------

    def successor_node(self, node: ChordNode) -> ChordNode | None:
        """First *online* successor of ``node`` (None if the whole list is dead)."""
        for successor_id in node.successors:
            candidate = self.net.nodes[successor_id]
            if candidate.online:
                return candidate  # type: ignore[return-value]
        return None

    def find_successor(
        self, start: ChordNode, key_id: int, kind: str = "chord-route"
    ) -> tuple[ChordNode, Trace]:
        """Route from ``start`` to the node responsible for ``key_id``."""
        current = start
        trace = Trace.ZERO
        for _hop in range(MAX_HOPS):
            successor = self.successor_node(current)
            if successor is None:
                raise self._routing_error(current, key_id, trace)
            if in_interval(key_id, current.ring_id, successor.ring_id, inclusive_hi=True):
                if successor is not current:
                    trace = trace.then(self.net.send(current.node_id, successor.node_id, kind, 1))
                return successor, trace
            nxt = self._closest_preceding(current, key_id)
            if nxt is current:
                # Fingers useless (all dead or pointing past); fall back to
                # walking the successor list.
                nxt = successor
            trace = trace.then(self.net.send(current.node_id, nxt.node_id, kind, 1))
            current = nxt
        raise self._routing_error(current, key_id, trace, reason="route too long")

    def _closest_preceding(self, node: ChordNode, key_id: int) -> ChordNode:
        for finger_id in reversed(node.fingers):
            finger = self.net.nodes[finger_id]
            if not finger.online:
                continue
            if in_interval(
                finger.ring_id,  # type: ignore[attr-defined]
                node.ring_id,
                key_id,
                inclusive_hi=False,
            ):
                return finger  # type: ignore[return-value]
        return node

    def _routing_error(
        self, node: ChordNode, key_id: int, trace: Trace, reason: str = "no live successor"
    ) -> RoutingError:
        error = RoutingError(
            f"chord route from {node.node_id} towards id {key_id} failed: {reason}"
        )
        error.trace = trace
        return error

    # -- data operations ------------------------------------------------------

    def random_online_node(self) -> ChordNode:
        online = [n for n in self.nodes if n.online]
        if not online:
            raise RoutingError("no online chord nodes")
        return self.rng.choice(online)

    def put(self, key: str, value: object, start: ChordNode | None = None) -> Trace:
        """Store ``key`` at its successor and ``replication-1`` further successors."""
        start = start or self.random_online_node()
        owner, trace = self.find_successor(start, chord_hash(key), kind="chord-put")
        owner.put_local(key, value)
        replicas: list[Trace] = []
        placed = 1
        for successor_id in owner.successors:
            if placed >= self.replication:
                break
            replica = self.net.nodes[successor_id]
            if not replica.online:
                continue
            replicas.append(self.net.send(owner.node_id, successor_id, "chord-put", 1))
            replica.put_local(key, value)  # type: ignore[attr-defined]
            placed += 1
        return trace.then(Trace.parallel(replicas)) if replicas else trace

    def get(self, key: str, start: ChordNode | None = None) -> tuple[object | None, Trace]:
        """Fetch ``key`` from its responsible node (or a replica if it is dead)."""
        start = start or self.random_online_node()
        owner, trace = self.find_successor(start, chord_hash(key), kind="chord-get")
        value = owner.get_local(key)
        if value is None:
            # The primary may have died and come back empty; ask replicas.
            for successor_id in owner.successors[: self.replication]:
                replica = self.net.nodes[successor_id]
                if not replica.online:
                    continue
                trace = trace.then(self.net.send(owner.node_id, successor_id, "chord-get", 1))
                value = replica.get_local(key)  # type: ignore[attr-defined]
                if value is not None:
                    break
        reply = self.net.send(owner.node_id, start.node_id, "chord-get", 1)
        return value, trace.then(reply)
