"""The P-Grid overlay facade.

``PGridNetwork`` bundles the simulated :class:`~repro.net.network.Network`
with the set of P-Grid peers and exposes the DHT operations the upper layers
use: routed ``insert`` / ``lookup`` / ``update``, plus global-view inspection
helpers (used only by tests, benchmarks and the oracle builder — never by the
distributed algorithms themselves).

Writes go to **all online replicas** of the responsible group; reads are
served by whichever replica routing lands on.  This mirrors P-Grid's
replication model, where updates are pushed best-effort and replicas converge
through anti-entropy (:mod:`repro.pgrid.updates`).

Besides the per-key operations, the facade offers **destination-grouped bulk
primitives** — :meth:`PGridNetwork.insert_many` / :meth:`PGridNetwork.lookup_many`.
They group a batch of keys by responsible region, route *once per region*
(one sized message per destination, size = the region's sub-batch), and push
one sized replica message per region, so the per-message routing cost
amortizes across the batch.  Upper layers (triple store, MQP probes) publish
and probe through these.

Every data operation runs in one of two execution models:

* **causal trace** (default) — messages are accounted synchronously and
  latency is composed analytically (``Trace.parallel`` takes the max);
* **event-driven** — inside :meth:`PGridNetwork.event_driven`, hop chains
  become callback chains on a shared discrete-event clock
  (:class:`~repro.net.scheduler.EventScheduler`): region fan-outs and
  replica pushes genuinely interleave, and an operation completes at the
  *measured* max arrival across its regions.  Routing decisions and message
  accounting are identical in both models; only how latency arises differs.
"""

from __future__ import annotations

import random
from collections import defaultdict
from contextlib import contextmanager
from typing import Iterator

from repro.errors import RoutingError
from repro.net.network import Network
from repro.net.scheduler import EventScheduler
from repro.net.simulator import EventSimulator
from repro.net.trace import Trace
from repro.pgrid.datastore import Entry
from repro.pgrid.keys import KeyRange, is_complete_partition, responsible
from repro.pgrid.peer import PGridPeer
from repro.pgrid.routing import account_hops, point_key, replay_hops, route, route_hops


class PGridNetwork:
    """A P-Grid overlay over a simulated network."""

    def __init__(self, network: Network | None = None, fanout: int = 4, seed: int = 0):
        # Note: Network defines __len__, so an empty network is falsy —
        # an `or` default here would silently discard it.
        self.net = network if network is not None else Network(seed=seed)
        self.fanout = fanout
        self.rng = random.Random(seed ^ 0x5EED)
        self.peers: list[PGridPeer] = []
        self._clock = 0  # Lamport-style version counter for updates
        self.scheduler: EventScheduler | None = None
        #: Default replica-diffusion policy for reads ("none" | "random" |
        #: "least-busy"); see :mod:`repro.load.diffusion`.
        self.replica_diffusion = "none"

    # -- execution model -----------------------------------------------------

    def attach_scheduler(
        self, simulator: EventSimulator | None = None, load=None, hints=False
    ) -> EventScheduler:
        """Switch data operations to event-driven (simulated-time) execution.

        ``load`` (a :class:`~repro.load.model.LoadModel`) adds per-peer
        service times and FIFO queueing on top of link latency; give it an
        ``admission=`` policy and saturated peers shed work.  ``hints``
        turns on queue-depth piggybacking: pass ``True`` for a fresh
        :class:`~repro.load.shedding.HintRegistry` (or pass a configured
        registry), attached to the network so routing, diffusion and reject
        retries can consult it.  Returns the attached scheduler.
        """
        if hints:
            from repro.load.shedding import HintRegistry  # deferred: load imports pgrid

            self.net.hints = hints if isinstance(hints, HintRegistry) else HintRegistry()
        self.scheduler = EventScheduler(self.net, simulator, load=load)
        return self.scheduler

    def detach_scheduler(self) -> None:
        """Return to causal-trace execution (any pending events are dropped).

        Also detaches the hint registry installed by :meth:`attach_scheduler`,
        so trace-mode routing goes back to the historical uniform choice.
        """
        self.scheduler = None
        self.net.hints = None

    @contextmanager
    def event_driven(
        self, simulator: EventSimulator | None = None, load=None, hints=False
    ) -> Iterator[EventScheduler]:
        """Scope event-driven execution::

            with pnet.event_driven() as sched:
                results, trace = pnet.lookup_many(keys)
            # trace.latency was measured on sched's clock

        With ``load=LoadModel(...)`` deliveries additionally queue for
        service at their destination peers, so the measured latency is
        link + queueing + service.  ``LoadModel(..., admission=policy)``
        lets saturated peers reject or defer work, and ``hints=True``
        attaches a queue-depth hint registry (see :meth:`attach_scheduler`).
        """
        scheduler = self.attach_scheduler(simulator, load=load, hints=hints)
        try:
            yield scheduler
        finally:
            if self.scheduler is scheduler:
                self.detach_scheduler()

    def ship(self, src_id: str, dst_id: str, kind: str, size: int = 1) -> Trace:
        """One accounted message in the active execution model."""
        if self.scheduler is None or src_id == dst_id:
            return self.net.send(src_id, dst_id, kind, size)
        return self.scheduler.fanout([(src_id, dst_id, kind, size)])

    def ship_many(self, sends: list[tuple[str, str, str, int]]) -> Trace:
        """Concurrent ``(src, dst, kind, size)`` messages; completes at the max."""
        if not sends:
            return Trace.ZERO
        if self.scheduler is None:
            return Trace.parallel([self.net.send(*send) for send in sends])
        return self.scheduler.fanout(sends)

    # -- membership ----------------------------------------------------------

    def add_peer(self, node_id: str, path: str = "") -> PGridPeer:
        """Create, register and return a new peer at trie position ``path``."""
        peer = PGridPeer(node_id, self.net, path=path, fanout=self.fanout)
        self.peers.append(peer)
        return peer

    def peer(self, node_id: str) -> PGridPeer:
        """The registered peer with ``node_id`` (raises if unknown or not a peer)."""
        node = self.net.node(node_id)
        if not isinstance(node, PGridPeer):
            raise TypeError(f"{node_id!r} is not a P-Grid peer")
        return node

    def online_peers(self) -> list[PGridPeer]:
        """All currently online peers, in membership order."""
        return [p for p in self.peers if p.online]

    def random_online_peer(self, rng: random.Random | None = None) -> PGridPeer:
        """A uniformly chosen online peer (the default gateway for operations)."""
        online = self.online_peers()
        if not online:
            raise RoutingError("no online peers in the overlay")
        return (rng or self.rng).choice(online)

    def __len__(self) -> int:
        return len(self.peers)

    # -- versioning ----------------------------------------------------------

    def next_version(self) -> int:
        """Monotone version for updates (models the update protocol's clock)."""
        self._clock += 1
        return self._clock

    # -- data operations (message-accounted) ----------------------------------

    def insert(
        self,
        key: str,
        value: object,
        item_id: str | None = None,
        start: PGridPeer | None = None,
        version: int | None = None,
        kind: str = "insert",
    ) -> Trace:
        """Route an item to its responsible group and store it on all online replicas."""
        start = start or self.random_online_peer()
        if item_id is None:
            item_id = f"item-{self._clock}-{self.rng.getrandbits(32):08x}"
        if version is None:
            version = self.next_version()
        entry = Entry(key=key, item_id=item_id, value=value, version=version)
        # Point semantics: land on the exact responsible leaf, not merely an
        # entry point into the key's subtree (matters for deep tries).
        destination, trace = route(start, point_key(key), kind=kind, scheduler=self.scheduler)
        destination.store.put(entry)
        pushes = []
        for replica_id in destination.online_replicas():
            self.net.nodes[replica_id].store.put(entry)
            pushes.append((destination.node_id, replica_id, kind, 1))
        return trace.then(self.ship_many(pushes)) if pushes else trace

    def lookup(
        self, key: str, start: PGridPeer | None = None, kind: str = "lookup"
    ) -> tuple[list[Entry], Trace]:
        """Route to the responsible group and return the entries stored under ``key``.

        One extra hop models the answer being shipped back to the initiator.
        """
        start = start or self.random_online_peer()
        entries, trace, destination = self.lookup_at(key, start=start, kind=kind)
        if destination is not start:
            reply = self.ship(destination.node_id, start.node_id, kind, size=max(1, len(entries)))
            trace = trace.then(reply)
        return entries, trace

    def lookup_at(
        self,
        key: str,
        start: PGridPeer | None = None,
        kind: str = "lookup",
        diffusion: str | None = None,
    ) -> tuple[list[Entry], Trace, PGridPeer]:
        """Like :meth:`lookup`, but the result *stays at the destination peer*.

        Returns ``(entries, trace, destination)`` without the reply hop; the
        physical operators use this provenance-aware form to model different
        data flows (ship-to-coordinator vs. re-hash to rendezvous peers).

        ``diffusion`` (default: :attr:`replica_diffusion`) spreads the read
        over the responsible replica group by redirecting the last hop to a
        chosen member — hop count is unchanged, but a hot destination stops
        being the only peer that serves its key.
        """
        start = start or self.random_online_peer()
        policy = self.replica_diffusion if diffusion is None else diffusion
        if policy == "none":
            destination, trace = route(start, point_key(key), kind=kind, scheduler=self.scheduler)
            return destination.store.get(key), trace, destination
        from repro.load.diffusion import diffuse_route  # deferred: load imports pgrid

        try:
            destination, hops = route_hops(start, point_key(key))
        except RoutingError as error:
            error.trace = account_hops(
                self.net, getattr(error, "hops", []), kind, 1, self.scheduler
            )
            raise
        destination, hops = diffuse_route(
            destination,
            hops,
            policy=policy,
            rng=self.rng,
            load=self.scheduler.load if self.scheduler else None,
            now=self.scheduler.now if self.scheduler else 0.0,
            hints=self.net.hints,
            observer=start.node_id,
        )
        trace = account_hops(self.net, hops, kind, 1, self.scheduler)
        return destination.store.get(key), trace, destination

    # -- bulk data operations (destination-grouped, message-accounted) ---------

    def _route_regions(
        self, keys, start: PGridPeer, kind: str, rng: random.Random | None = None
    ) -> list[tuple[PGridPeer, list[str], list[tuple[str, str]]]]:
        """Group distinct ``keys`` by responsible region, routing once each.

        Routes are *discovered* only (no messages yet — callers replay the
        returned hop lists at the batch's real size).  Returns
        ``(destination, region_keys, hops)`` per region.  A routing failure
        propagates as :class:`RoutingError` with the partial trace accounted
        under the operation's ``kind`` at size 1.
        """
        pending = sorted(set(keys))
        regions: list[tuple[PGridPeer, list[str], list[tuple[str, str]]]] = []
        while pending:
            representative = pending[0]
            try:
                destination, hops = route_hops(
                    start, point_key(representative), rng=rng or self.rng
                )
            except RoutingError as error:
                error.trace = replay_hops(self.net, getattr(error, "hops", []), kind, 1)
                raise
            # Point semantics (zero-padded comparison), matching the route
            # above: a key is covered iff this leaf holds its point.
            covered = [k for k in pending if responsible(destination.path, k)]
            covered_set = set(covered)
            pending = [k for k in pending if k not in covered_set]
            regions.append((destination, covered, hops))
        return regions

    def _diffuse_regions(
        self,
        regions: list[tuple[PGridPeer, list[str], list[tuple[str, str]]]],
        observer: str | None = None,
    ) -> list[tuple[PGridPeer, list[str], list[tuple[str, str]]]]:
        """Apply the read-diffusion policy to each region's last hop.

        Reads only: writes must keep landing on the routed destination (its
        replica pushes cover the group).  A "none" policy is the identity.
        ``observer`` (the initiating peer) supplies the hint table a
        ``least-busy`` policy ranks members by.
        """
        if self.replica_diffusion == "none":
            return regions
        from repro.load.diffusion import diffuse_route  # deferred: load imports pgrid

        load = self.scheduler.load if self.scheduler else None
        now = self.scheduler.now if self.scheduler else 0.0
        diffused = []
        for destination, region_keys, hops in regions:
            destination, hops = diffuse_route(
                destination,
                hops,
                policy=self.replica_diffusion,
                rng=self.rng,
                load=load,
                now=now,
                hints=self.net.hints,
                observer=observer,
            )
            diffused.append((destination, region_keys, hops))
        return diffused

    def insert_many(
        self,
        items: list[tuple[str, str, object]],
        start: PGridPeer | None = None,
        kind: str = "insert",
    ) -> Trace:
        """Bulk insert of ``(key, item_id, value)`` items, grouped by region.

        Each responsible region is routed once from ``start``; the region's
        whole sub-batch travels as one message sized by its item count, and
        each online replica receives one equally sized push.  Message counts
        therefore never exceed (and usually far undercut) the equivalent
        sequence of single :meth:`insert` calls.  Regions fan out in
        parallel; returns the combined trace.

        In event-driven mode the per-region chains and replica pushes run as
        interleaved events on the simulated clock and the call completes at
        the measured max across regions.
        """
        if not items:
            return Trace.ZERO
        start = start or self.random_online_peer()
        by_key: dict[str, list[tuple[str, object]]] = defaultdict(list)
        for key, item_id, value in items:
            by_key[key].append((item_id, value))
        regions = []
        for destination, region_keys, hops in self._route_regions(by_key, start, kind):
            entries = [
                Entry(key=key, item_id=item_id, value=value, version=self.next_version())
                for key in region_keys
                for item_id, value in by_key[key]
            ]
            for entry in entries:
                destination.store.put(entry)
            replica_ids = destination.online_replicas()
            for replica_id in replica_ids:
                replica = self.net.nodes[replica_id]
                assert isinstance(replica, PGridPeer)
                for entry in entries:
                    replica.store.put(entry)
            regions.append((destination, hops, len(entries), replica_ids))

        if self.scheduler is not None:
            return self._run_regions_event(regions, kind)

        branches = []
        for destination, hops, batch, replica_ids in regions:
            trace = replay_hops(self.net, hops, kind, batch)
            pushes = [
                self.net.send(destination.node_id, replica_id, kind, size=batch)
                for replica_id in replica_ids
            ]
            if pushes:
                trace = trace.then(Trace.parallel(pushes))
            branches.append(trace)
        return Trace.parallel(branches)

    def _run_regions_event(
        self,
        regions: list[tuple[PGridPeer, list[tuple[str, str]], int, list[str]]],
        kind: str,
    ) -> Trace:
        """Run insert-style region fan-outs as interleaved simulated events.

        Every region's hop chain starts at the same instant; when a chain
        arrives at its destination the replica pushes depart concurrently.
        The combined trace completes at the max arrival over all regions and
        pushes — measured, not composed.
        """
        scheduler = self.scheduler
        assert scheduler is not None
        chains = []
        for destination, hops, batch, replica_ids in regions:

            def pushes(
                _time: float,
                destination: PGridPeer = destination,
                batch: int = batch,
                replica_ids: list[str] = replica_ids,
            ) -> list[tuple[str, str, str, int]]:
                return [
                    (destination.node_id, replica_id, kind, batch)
                    for replica_id in replica_ids
                ]

            chains.append((hops, kind, batch, pushes))
        return scheduler.run_chains(chains)

    def lookup_many(
        self, keys, start: PGridPeer | None = None, kind: str = "lookup"
    ) -> tuple[dict[str, list[Entry]], Trace]:
        """Bulk lookup: route once per responsible region, reply once per region.

        Returns ``(entries_by_key, trace)`` — every requested key maps to the
        (possibly empty) entry list its destination holds.  The reply message
        per region is sized by the region's total result, mirroring
        :meth:`lookup`'s answer shipping.

        In event-driven mode the per-region chains interleave on the
        simulated clock (each destination reads its store at its arrival
        instant) and the call completes when the last region's reply lands —
        the max, not the sum, of the chain latencies.

        With :attr:`replica_diffusion` enabled each region's last hop is
        redirected across the responsible replica group, so the batched read
        hot path (joins, MQP probes, ``by_oids``) spreads query load too —
        same entries, same hop count, different serving member.
        """
        start = start or self.random_online_peer()
        unique = set(keys)
        if not unique:
            return {}, Trace.ZERO
        regions = self._route_regions(unique, start, kind)
        regions = self._diffuse_regions(regions, observer=start.node_id)
        results: dict[str, list[Entry]] = {}
        if self.scheduler is not None:
            trace = self._lookup_regions_event(regions, results, start, kind)
            return results, trace
        branches = []
        for destination, region_keys, hops in regions:
            trace = replay_hops(self.net, hops, kind, len(region_keys))
            found = 0
            for key in region_keys:
                entries = destination.store.get(key)
                results[key] = entries
                found += len(entries)
            if destination is not start:
                trace = trace.then(
                    self.net.send(destination.node_id, start.node_id, kind, size=max(1, found))
                )
            branches.append(trace)
        return results, Trace.parallel(branches)

    def _lookup_regions_event(
        self,
        regions: list[tuple[PGridPeer, list[str], list[tuple[str, str]]]],
        results: dict[str, list[Entry]],
        start: PGridPeer,
        kind: str,
    ) -> Trace:
        """Event-driven multi-region lookup: chains out, replies back, max wins.

        Each destination reads its store *at its arrival instant*; a region
        completes when its reply lands back at ``start``.
        """
        scheduler = self.scheduler
        assert scheduler is not None
        chains = []
        for destination, region_keys, hops in regions:

            def arrived(
                _time: float,
                destination: PGridPeer = destination,
                region_keys: list[str] = region_keys,
            ) -> list[tuple[str, str, str, int]]:
                found = 0
                for key in region_keys:
                    entries = destination.store.get(key)
                    results[key] = entries
                    found += len(entries)
                if destination is not start:
                    return [(destination.node_id, start.node_id, kind, max(1, found))]
                return []

            chains.append((hops, kind, len(region_keys), arrived))
        return scheduler.run_chains(chains)

    def delete(self, key: str, item_id: str, start: PGridPeer | None = None) -> tuple[bool, Trace]:
        """Remove an identity from the responsible group's online replicas.

        Offline replicas keep their copy until anti-entropy with a tombstone
        would reconcile them; this simulation propagates deletions to online
        replicas only (a documented simplification of ref. [4]).
        """
        start = start or self.random_online_peer()
        destination, trace = route(start, point_key(key), kind="delete", scheduler=self.scheduler)
        removed = destination.store.delete(key, item_id)
        pushes = []
        for replica_id in destination.online_replicas():
            replica = self.net.nodes[replica_id]
            assert isinstance(replica, PGridPeer)
            removed = replica.store.delete(key, item_id) or removed
            pushes.append((destination.node_id, replica_id, "delete", 1))
        if pushes:
            trace = trace.then(self.ship_many(pushes))
        return removed, trace

    def update(
        self,
        key: str,
        item_id: str,
        value: object,
        start: PGridPeer | None = None,
    ) -> tuple[int, Trace]:
        """Write a new version of an existing identity (paper ref. [4] push phase).

        Returns ``(version, trace)``.  Offline replicas miss the push and
        stay stale until anti-entropy reconciles them.
        """
        version = self.next_version()
        trace = self.insert(
            key, value, item_id=item_id, version=version, start=start, kind="update"
        )
        return version, trace

    # -- global-view helpers (no messages; tests / oracle only) ---------------

    def leaf_groups(self) -> dict[str, list[PGridPeer]]:
        """Peers grouped by their current path."""
        groups: dict[str, list[PGridPeer]] = defaultdict(list)
        for peer in self.peers:
            groups[peer.path].append(peer)
        return dict(groups)

    def trie_paths(self) -> list[str]:
        """Sorted distinct leaf paths of the current trie."""
        return sorted(self.leaf_groups())

    def is_complete(self) -> bool:
        """True when the peers' paths tile the whole key space."""
        return is_complete_partition(self.trie_paths())

    def responsible_group(self, key: str) -> list[PGridPeer]:
        """All peers responsible for ``key`` (global view)."""
        return [p for p in self.peers if responsible(p.path, key)]

    def peers_with_prefix(self, prefix: str) -> list[PGridPeer]:
        """All peers whose path starts with ``prefix`` (global view)."""
        return [p for p in self.peers if p.path.startswith(prefix)]

    def load_by_peer(self) -> dict[str, int]:
        """Entries stored per peer — the load-balancing metric of exp. E3."""
        return {p.node_id: p.load for p in self.peers}

    def all_entries(self) -> list[Entry]:
        """Every entry in the overlay, deduplicated across replicas."""
        seen: dict[tuple[str, str], Entry] = {}
        for peer in self.peers:
            for entry in peer.store:
                identity = (entry.key, entry.item_id)
                existing = seen.get(identity)
                if existing is None or entry.version > existing.version:
                    seen[identity] = entry
        return list(seen.values())

    def entries_in_range(self, key_range: KeyRange) -> list[Entry]:
        """Global-view range scan (ground truth for range-query tests)."""
        return [e for e in self.all_entries() if key_range.contains(e.key)]
