"""VQL — the Vertical Query Language (paper §2).

A structured query language derived from SPARQL: triple patterns with
variables, FILTER predicates (including the similarity predicate ``edist``),
ORDER BY / LIMIT, and the ranking extension ``ORDER BY SKYLINE OF``.
:func:`parse` turns query text into the AST consumed by
:mod:`repro.algebra.plan_builder`.
"""

from repro.vql.ast import (
    BoolOp,
    Comparison,
    Expression,
    FunctionCall,
    GroupPattern,
    Literal,
    Not,
    OrderItem,
    Query,
    SkylineItem,
    Term,
    TriplePattern,
    Var,
    expression_variables,
)
from repro.vql.lexer import tokenize
from repro.vql.parser import parse

__all__ = [
    "parse",
    "tokenize",
    "Query",
    "GroupPattern",
    "TriplePattern",
    "Var",
    "Literal",
    "Term",
    "Expression",
    "Comparison",
    "BoolOp",
    "Not",
    "FunctionCall",
    "OrderItem",
    "SkylineItem",
    "expression_variables",
]
