"""Range queries: shower and sequential, vs global ground truth."""

import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pgrid import (
    KeyRange,
    build_network,
    bulk_load,
    encode_string,
    range_query_sequential,
    range_query_shower,
)
from repro.pgrid.range_query import (
    range_query_sequential_groups,
    range_query_shower_groups,
)


def _loaded_network(num_peers=32, num_words=200, seed=7, replication=2):
    rng = random.Random(seed)
    words = sorted(
        {"".join(rng.choice(string.ascii_lowercase) for _ in range(5)) for _ in range(num_words)}
    )
    keys = [encode_string(w) for w in words]
    pnet = build_network(num_peers, data_keys=keys, replication=replication, seed=seed)
    bulk_load(pnet, [(k, w, w) for k, w in zip(keys, words)])
    return pnet, words


@pytest.fixture(scope="module")
def loaded():
    return _loaded_network()


class TestShower:
    def test_prefix_subtree(self, loaded):
        pnet, words = loaded
        expected = sorted(w for w in words if w.startswith("a"))
        entries, _trace, complete = range_query_shower(pnet, KeyRange.subtree(encode_string("a")))
        assert complete
        assert sorted(e.value for e in entries) == expected

    def test_no_duplicates_despite_replication(self, loaded):
        pnet, words = loaded
        entries, _trace, _complete = range_query_shower(pnet, KeyRange.subtree(encode_string("b")))
        values = [e.value for e in entries]
        assert len(values) == len(set(values))

    def test_whole_space(self, loaded):
        pnet, words = loaded
        entries, _trace, complete = range_query_shower(pnet, KeyRange.everything())
        assert complete
        assert sorted(e.value for e in entries) == words

    def test_empty_range(self, loaded):
        pnet, _words = loaded
        # Digits sort below letters; no word matches.
        entries, _trace, complete = range_query_shower(pnet, KeyRange.subtree(encode_string("3")))
        assert complete and entries == []

    def test_interval_between_words(self, loaded):
        pnet, words = loaded
        lo, hi = encode_string("f"), encode_string("m")
        expected = sorted(w for w in words if "f" <= w < "m")
        entries, _trace, _complete = range_query_shower(pnet, KeyRange(lo, hi))
        assert sorted(e.value for e in entries) == expected

    def test_incomplete_when_subtree_dead(self):
        pnet, words = _loaded_network(num_peers=16, num_words=120, seed=9,
                                      replication=1)
        target = sorted(w for w in words if w.startswith("a"))
        if not target:
            pytest.skip("no words under 'a' for this seed")
        for peer in pnet.responsible_group(encode_string(target[0])):
            peer.fail()
        start = next(p for p in pnet.peers if p.online)
        entries, _trace, complete = range_query_shower(
            pnet, KeyRange.subtree(encode_string("a")), start=start
        )
        assert not complete
        assert len(entries) < len(target) or not entries


class TestSequential:
    def test_matches_shower(self, loaded):
        pnet, words = loaded
        key_range = KeyRange(encode_string("c"), encode_string("g"))
        shower_entries, _t1, _c1 = range_query_shower(pnet, key_range)
        seq_entries, _t2, _c2 = range_query_sequential(pnet, key_range)
        assert sorted(e.value for e in seq_entries) == sorted(e.value for e in shower_entries)

    def test_latency_worse_than_shower_for_wide_ranges(self, loaded):
        pnet, _words = loaded
        key_range = KeyRange.everything()
        _e1, shower_trace, _c1 = range_query_shower(pnet, key_range)
        _e2, seq_trace, _c2 = range_query_sequential(pnet, key_range)
        # The sequential walk's critical path includes every leaf.
        assert seq_trace.hops > shower_trace.hops

    def test_single_leaf_range(self, loaded):
        pnet, words = loaded
        word = words[0]
        key_range = KeyRange.subtree(encode_string(word))
        entries, _trace, complete = range_query_sequential(pnet, key_range)
        assert complete
        assert [e.value for e in entries] == [word]


class TestGroupsMode:
    def test_groups_cover_same_entries(self, loaded):
        pnet, words = loaded
        key_range = KeyRange.subtree(encode_string("a"))
        flat, _trace, _c = range_query_shower(pnet, key_range)
        groups, _gtrace, _gc = range_query_shower_groups(pnet, key_range)
        grouped = sorted(e.value for _peer, entries in groups for e in entries)
        assert grouped == sorted(e.value for e in flat)

    def test_groups_attribute_correct_peers(self, loaded):
        pnet, _words = loaded
        key_range = KeyRange.subtree(encode_string("a"))
        groups, _trace, _c = range_query_shower_groups(pnet, key_range)
        for peer_id, entries in groups:
            peer = pnet.peer(peer_id)
            for entry in entries:
                assert entry.key.startswith(peer.path)

    def test_groups_trace_cheaper_than_collect(self, loaded):
        pnet, _words = loaded
        key_range = KeyRange.everything()
        _flat, collect_trace, _c1 = range_query_shower(pnet, key_range)
        _groups, produce_trace, _c2 = range_query_shower_groups(pnet, key_range)
        assert produce_trace.messages < collect_trace.messages

    def test_sequential_groups_match(self, loaded):
        pnet, _words = loaded
        key_range = KeyRange(encode_string("a"), encode_string("d"))
        flat, _t, _c = range_query_sequential(pnet, key_range)
        groups, _gt, _gc = range_query_sequential_groups(pnet, key_range)
        grouped = sorted(e.value for _peer, entries in groups for e in entries)
        assert grouped == sorted(e.value for e in flat)


class TestRangePropertyBased:
    @given(
        lo=st.text(alphabet="abcdefgh", min_size=1, max_size=3),
        hi=st.text(alphabet="abcdefgh", min_size=1, max_size=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_ranges_match_ground_truth(self, lo, hi):
        pnet, words = _loaded_network(num_peers=16, num_words=80, seed=21)
        if lo > hi:
            lo, hi = hi, lo
        key_range = KeyRange(encode_string(lo), encode_string(hi))
        expected = sorted(w for w in words if lo <= w < hi)
        entries, _trace, complete = range_query_shower(pnet, key_range)
        assert complete
        assert sorted(e.value for e in entries) == expected
