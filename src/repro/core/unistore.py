"""The UniStore facade — the system a user of the platform sees (paper §4).

One object bundles the whole stack of Fig. 1: P-Grid overlay, triple storage
with the three default indexes (+ optional q-gram index), VQL parsing,
logical planning/rewriting, cost-based physical planning, and three execution
modes:

* ``optimized``  — coordinator-driven execution of the cheapest physical plan;
* ``mqp``        — mutant-query-plan execution with per-peer re-optimization;
* ``reference``  — centralized ground-truth evaluation (testing/debugging).

Schema mappings are ordinary metadata triples; with ``expand_mappings=True``
a query's attribute names are transparently widened to their known
correspondences ("or even automatically by the system", §2).
"""

from __future__ import annotations

import itertools
import random

from repro.errors import PlanningError
from repro.net.latency import LatencyModel
from repro.net.trace import Trace
from repro.algebra.operators import Join, LogicalPlan, PatternScan, Selection
from repro.algebra.plan_builder import build_plan
from repro.algebra.reference import execute_reference
from repro.algebra.rewrite import rewrite
from repro.algebra.semantics import Binding, order_sort_key, skyline_of
from repro.core.logging import QueryLog
from repro.core.results import QueryResult
from repro.mqp.executor import execute_mutant_plan
from repro.optimizer.cost_model import CostModel
from repro.optimizer.planner import Planner, PlannerConfig
from repro.optimizer.statistics import CatalogStatistics
from repro.pgrid.construction import build_network
from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer
from repro.physical.base import ExecutionContext
from repro.triples.mappings import MappingCatalog, SchemaMapping
from repro.triples.store import DistributedTripleStore
from repro.triples.triple import Triple, Value
from repro.vql.ast import GroupPattern, Literal, Query, TriplePattern
from repro.vql.parser import parse


class UniStore:
    """A DHT-based universal storage instance."""

    def __init__(
        self,
        pnet: PGridNetwork,
        enable_qgram_index: bool = False,
        qgram_q: int = 3,
        qgram_attributes: set[str] | None = None,
        seed: int = 0,
    ):
        self.pnet = pnet
        self.store = DistributedTripleStore(
            pnet,
            enable_qgram_index=enable_qgram_index,
            qgram_q=qgram_q,
            qgram_attributes=qgram_attributes,
        )
        self.mappings = MappingCatalog(self.store)
        self.rng = random.Random(seed ^ 0xD1CE)
        self.log = QueryLog()
        self._stats: CatalogStatistics | None = None
        self._oid_counter = itertools.count(1)

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        num_peers: int,
        latency_model: LatencyModel | None = None,
        replication: int = 2,
        fanout: int = 4,
        seed: int = 0,
        enable_qgram_index: bool = False,
        qgram_q: int = 3,
        qgram_attributes: set[str] | None = None,
    ) -> "UniStore":
        """Stand up a fresh overlay of ``num_peers`` peers, ready for inserts."""
        pnet = build_network(
            num_peers,
            latency_model=latency_model,
            seed=seed,
            fanout=fanout,
            replication=replication,
            split_by="population",
        )
        return cls(
            pnet,
            enable_qgram_index=enable_qgram_index,
            qgram_q=qgram_q,
            qgram_attributes=qgram_attributes,
            seed=seed,
        )

    # -- data ingestion ----------------------------------------------------------

    def new_oid(self, prefix: str = "oid") -> str:
        """System-generated OID ("the OID is system generated", §2)."""
        return f"{prefix}:{next(self._oid_counter):08d}"

    def insert_tuple(self, values: dict[str, Value], oid: str | None = None) -> tuple[str, Trace]:
        """Vertically decompose and publish one logical tuple; returns its OID."""
        oid = oid or self.new_oid()
        _triples, trace = self.store.insert_tuple(oid, values)
        self._stats = None
        return oid, trace

    def insert_tuples(
        self,
        tuples: list[dict[str, Value]],
        oid_prefix: str = "oid",
        start: PGridPeer | None = None,
    ) -> tuple[list[str], Trace]:
        """Message-accounted batched ingest of many logical tuples.

        All postings of the batch are published through one
        destination-grouped bulk insert, so routed messages per tuple shrink
        as the batch grows (contrast :meth:`bulk_load_tuples`, which is an
        oracle placement with no messages at all).  ``start`` pins the
        ingesting gateway peer; by default a random online peer ingests.
        Returns the generated OIDs and the combined trace.
        """
        batch: list[tuple[str, dict[str, Value]]] = []
        oids: list[str] = []
        for values in tuples:
            oid = self.new_oid(oid_prefix)
            oids.append(oid)
            batch.append((oid, values))  # None values dropped by decomposition
        _triples, trace = self.store.insert_tuples_batch(batch, start=start)
        self._stats = None
        return oids, trace

    def insert_triple(self, triple: Triple) -> Trace:
        """Publish one RDF-style triple ("RDF data can be stored seamlessly")."""
        trace = self.store.insert(triple)
        self._stats = None
        return trace

    def add_mapping(self, source: str, target: str, confidence: float = 1.0) -> Trace:
        """Publish a schema correspondence ``source -> target`` (§2 mappings).

        Stored as ordinary metadata triples; queries executed with
        ``expand_mappings=True`` widen attribute names along these edges.
        Returns the publication trace.
        """
        trace = self.mappings.add(SchemaMapping(source, target, confidence))
        self._stats = None
        return trace

    def bulk_load_tuples(
        self, tuples: list[dict[str, Value]], oid_prefix: str = "oid"
    ) -> list[str]:
        """Oracle placement of many tuples (setup only; no routed messages)."""
        triples: list[Triple] = []
        oids: list[str] = []
        for values in tuples:
            oid = self.new_oid(oid_prefix)
            oids.append(oid)
            for attribute, value in values.items():
                if value is not None:
                    triples.append(Triple(oid, attribute, value))
        self.store.bulk_insert(triples)
        self._stats = None
        return oids

    def rebalance(self, capacity: int | None = None) -> int:
        """Run P-Grid's storage-threshold load balancing (paper ref. [2]).

        Deepens the trie where postings are dense so no peer holds more than
        ``capacity`` entries (default: 4x the fair share).  Returns the
        number of group splits performed.
        """
        from repro.pgrid.load_balancing import rebalance as pgrid_rebalance

        if capacity is None:
            total = sum(p.load for p in self.pnet.peers)
            capacity = max(8, 4 * total // max(1, len(self.pnet.peers)))
        splits = pgrid_rebalance(self.pnet, capacity=capacity)
        self._stats = None
        return splits

    # -- statistics -----------------------------------------------------------------

    @property
    def statistics(self) -> CatalogStatistics:
        """Catalog statistics the optimizer costs plans against (cached;
        invalidated automatically by every ingest/rebalance)."""
        if self._stats is None:
            self._stats = CatalogStatistics.from_store(self.store)
        return self._stats

    def refresh_statistics(self) -> CatalogStatistics:
        """Force-rebuild the catalog statistics and return them."""
        self._stats = None
        return self.statistics

    # -- execution model ---------------------------------------------------------

    def event_driven(self, simulator=None, load=None, hints=False):
        """Scope event-driven (simulated-time) execution for this store.

        Inside the ``with`` block every routed operation — query fan-outs,
        index probes, range showers, ingest — runs as discrete events on a
        shared simulated clock, so parallel fan-outs complete at the
        *measured* max of their branches instead of the analytically
        composed one::

            with store.event_driven() as sched:
                result = store.execute(vql)
            result.trace.completion_time  # absolute instant on sched's clock

        ``load`` attaches a :class:`~repro.load.model.LoadModel`: peers get
        per-message-kind service times and FIFO work queues, so answer times
        include queueing delay at hot peers (latency = link + queue +
        service) and per-peer utilization shows up in
        ``sched.load.snapshot()`` and the stats frames.

        Two load-control knobs ride on the model
        (:mod:`repro.load.shedding`): ``LoadModel(..., admission=policy)``
        lets saturated peers reject or defer work past a queue budget, and
        ``hints=True`` attaches a queue-depth hint registry so every message
        piggybacks its sender's smoothed depth — the information the
        ``least-busy`` diffusion policy and reject retries act on.
        """
        return self.pnet.event_driven(simulator=simulator, load=load, hints=hints)

    @property
    def replica_diffusion(self) -> str:
        """Read-diffusion policy over replica groups.

        One of ``"none"`` | ``"random"`` | ``"least-busy"`` (piggybacked
        hints, falling back to the oracle then to random when unavailable) |
        ``"least-busy-oracle"`` (simulator-side baseline).
        """
        return self.pnet.replica_diffusion

    @replica_diffusion.setter
    def replica_diffusion(self, policy: str) -> None:
        from repro.load.diffusion import POLICIES

        if policy not in POLICIES:
            raise ValueError(f"unknown diffusion policy {policy!r} (use one of {POLICIES})")
        self.pnet.replica_diffusion = policy

    # -- querying ----------------------------------------------------------------------

    def execute(
        self,
        vql_text: str,
        mode: str = "optimized",
        config: PlannerConfig | None = None,
        coordinator: PGridPeer | None = None,
        expand_mappings: bool = False,
    ) -> QueryResult:
        """Parse and run a VQL query; see the class docstring for modes."""
        query = parse(vql_text)
        expansion_trace = Trace.ZERO
        if expand_mappings:
            query, expansion_trace = self._expand_query(query)

        coordinator = coordinator or self.pnet.random_online_peer(self.rng)
        ctx = ExecutionContext(
            store=self.store,
            coordinator=coordinator,
            rng=self.rng,
            range_algorithm=(
                config.range_algorithm if config and config.range_algorithm else "shower"
            ),
        )

        if mode == "reference":
            result = self._execute_reference(query)
        elif mode == "mqp":
            result = self._execute_mqp(query, ctx, config)
        elif mode == "optimized":
            result = self._execute_optimized(query, ctx, config)
        else:
            raise ValueError(f"unknown execution mode {mode!r}")

        result.trace = expansion_trace.then(result.trace)
        result.mode = mode
        self.log.record(
            text=vql_text,
            mode=mode,
            plan=result.plan,
            messages=result.trace.messages,
            hops=result.trace.hops,
            latency=result.trace.latency,
            rows=len(result.rows),
            complete=result.complete,
        )
        return result

    def explain(self, vql_text: str, config: PlannerConfig | None = None) -> str:
        """Logical and physical plan text without executing."""
        query = parse(vql_text)
        logical = rewrite(build_plan(query))
        planner = self._planner(config)
        physical = planner.plan(logical)
        return f"-- logical --\n{logical.explain()}\n-- physical --\n{physical.explain()}"

    # -- execution modes -------------------------------------------------------------------

    def _planner(self, config: PlannerConfig | None) -> Planner:
        return Planner(
            self.statistics,
            config or PlannerConfig(),
            qgram_available=self.store.enable_qgram_index,
            qgram_q=self.store.qgram_q,
        )

    def _execute_optimized(
        self, query: Query, ctx: ExecutionContext, config: PlannerConfig | None
    ) -> QueryResult:
        logical = rewrite(build_plan(query))
        planner = self._planner(config)
        physical = planner.plan(logical)
        op_result = physical.execute(ctx)
        return QueryResult(
            rows=op_result.all_bindings(),
            variables=tuple(v.name for v in query.select),
            trace=op_result.trace,
            plan=physical.explain(),
            complete=op_result.complete,
        )

    def _execute_reference(self, query: Query) -> QueryResult:
        logical = rewrite(build_plan(query))
        triples = self._all_triples()
        rows = execute_reference(logical, triples)
        return QueryResult(
            rows=rows,
            variables=tuple(v.name for v in query.select),
            trace=Trace.ZERO,
            plan=logical.explain(),
            complete=True,
        )

    def _execute_mqp(
        self, query: Query, ctx: ExecutionContext, config: PlannerConfig | None
    ) -> QueryResult:
        model = CostModel(self.statistics)
        rows: list[Binding] = []
        traces: list[Trace] = []
        steps: list[str] = []
        complete = True
        for group in query.groups:
            scans, residual = self._group_to_scans(group)
            result = execute_mutant_plan(ctx, scans, residual, model)
            rows.extend(result.bindings)
            traces.append(result.trace)
            steps.extend(result.steps)
            complete = complete and result.complete
        rows = self._apply_modifiers(rows, query)
        return QueryResult(
            rows=rows,
            variables=tuple(v.name for v in query.select),
            trace=Trace.parallel(traces) if traces else Trace.ZERO,
            plan="\n".join(f"mqp: {step}" for step in steps),
            complete=complete,
        )

    def _group_to_scans(self, group: GroupPattern) -> tuple[list[PatternScan], list]:
        """Rewrite one group and flatten it into scans + residual filters."""
        if group.optionals:
            raise PlanningError("OPTIONAL is not supported in MQP mode")
        logical = rewrite(
            build_plan(
                Query(select=(), groups=(GroupPattern(group.patterns, group.filters),))
            )
        )
        scans: list[PatternScan] = []
        residual = []

        def collect(node: LogicalPlan) -> None:
            if isinstance(node, PatternScan):
                scans.append(node)
            elif isinstance(node, Selection):
                residual.append(node.predicate)
                collect(node.child)
            elif isinstance(node, Join):
                collect(node.left)
                collect(node.right)
            else:
                for child in node.children():
                    collect(child)

        collect(logical)
        return scans, residual

    def _apply_modifiers(self, rows: list[Binding], query: Query) -> list[Binding]:
        """Skyline / order / limit / projection at the coordinator (MQP mode)."""
        if query.skyline:
            rows = skyline_of(rows, query.skyline)
        if query.order_by:
            rows = sorted(rows, key=order_sort_key(query.order_by))
        if query.limit is not None or query.offset:
            end = None if query.limit is None else query.offset + query.limit
            rows = rows[query.offset : end]
        if query.select:
            names = [v.name for v in query.select]
            rows = [{name: row.get(name) for name in names} for row in rows]
        if query.distinct:
            seen = set()
            unique = []
            for row in rows:
                key = tuple(sorted(row.items(), key=lambda kv: kv[0]))
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        return rows

    # -- mapping expansion ----------------------------------------------------------------

    def _expand_query(self, query: Query) -> tuple[Query, Trace]:
        """Widen literal predicates to their mapped equivalents (UNION of groups)."""
        traces: list[Trace] = []
        new_groups: list[GroupPattern] = []
        for group in query.groups:
            alternatives_per_pattern: list[list[TriplePattern]] = []
            for pattern in group.patterns:
                alternatives = [pattern]
                if isinstance(pattern.predicate, Literal) and isinstance(
                    pattern.predicate.value, str
                ):
                    names, trace = self.mappings.expansions(pattern.predicate.value)
                    traces.append(trace)
                    for name in names:
                        alternatives.append(
                            TriplePattern(pattern.subject, Literal(name), pattern.object)
                        )
                alternatives_per_pattern.append(alternatives)
            combos = list(itertools.product(*alternatives_per_pattern))
            if len(combos) > 16:  # avoid exponential blow-up on dense mappings
                combos = combos[:16]
            for combo in combos:
                new_groups.append(GroupPattern(tuple(combo), group.filters, group.optionals))
        expanded = Query(
            select=query.select,
            groups=tuple(new_groups),
            distinct=query.distinct or len(new_groups) > len(query.groups),
            order_by=query.order_by,
            skyline=query.skyline,
            limit=query.limit,
            offset=query.offset,
        )
        return expanded, Trace.parallel(traces) if traces else Trace.ZERO

    # -- ground truth -------------------------------------------------------------------------

    def _all_triples(self) -> list[Triple]:
        """Every distinct triple in the overlay (via the A#v postings)."""
        from repro.triples.index import IndexKind
        from repro.triples.store import Posting

        triples = []
        seen = set()
        for entry in self.pnet.all_entries():
            posting = entry.value
            if isinstance(posting, Posting) and posting.kind is IndexKind.AV:
                identity = posting.triple.as_tuple()
                if identity not in seen:
                    seen.add(identity)
                    triples.append(posting.triple)
        return triples
