"""E2 — "even with up to 400 PlanetLab nodes query answer times are still
only a couple of seconds" (paper §4).

400 peers under the heavy-tailed PlanetLab latency model, conference-domain
data, the demo's full query mix.  The reported metric is the critical-path
answer time of each query.  Absolute values depend on the latency model
(median 40 ms one-way); the claim holds if the whole mix sits in the
sub-second-to-few-seconds band and no class explodes.
"""

from __future__ import annotations

import pytest

from repro import UniStore
from repro.bench import ConferenceWorkload, ResultTable, mean, median, percentile
from repro.net.latency import PlanetLabLatency

from conftest import emit

RUNS_PER_CLASS = 12


@pytest.fixture(scope="module")
def planetlab_store():
    store = UniStore.build(
        num_peers=400,
        replication=2,
        seed=2007,
        latency_model=PlanetLabLatency(),
        enable_qgram_index=True,
    )
    workload = ConferenceWorkload(
        num_authors=150, num_publications=300, num_conferences=24, seed=2007
    )
    workload.load_into(store)
    return store, workload


def test_e2_answer_times_at_400_nodes(benchmark, planetlab_store):
    store, workload = planetlab_store
    table = ResultTable(
        "E2: query answer times, 400 peers, PlanetLab latencies (paper: 'couple of seconds')",
        ["query class", "median s", "mean s", "p95 s", "mean msgs", "mean hops"],
    )
    medians = {}
    for name, vql in workload.query_mix().items():
        latencies, messages, hops = [], [], []
        for _ in range(RUNS_PER_CLASS):
            result = store.execute(vql)
            latencies.append(result.answer_time)
            messages.append(float(result.messages))
            hops.append(float(result.trace.hops))
        medians[name] = median(latencies)
        table.add_row(
            name,
            median(latencies),
            mean(latencies),
            percentile(latencies, 95),
            mean(messages),
            mean(hops),
        )
    emit(table)

    # The paper's claim: a couple of seconds at 400 nodes.  Our simulated
    # stack (no Java/GC/processing overhead) lands below; assert the band.
    for name, value in medians.items():
        assert value < 3.0, f"{name} median {value:.2f}s breaks the claim"
    assert max(medians.values()) > 0.05, "latencies implausibly low"

    join_query = workload.query_mix()["join"]
    benchmark(lambda: store.execute(join_query))


def test_e2_mqp_vs_coordinator_execution(benchmark, planetlab_store):
    """Ablation: mutant-plan execution trades extra sequential hops for
    not bouncing intermediate results through the coordinator."""
    store, workload = planetlab_store
    table = ResultTable(
        "E2b: coordinator-driven vs mutant query plan (join query)",
        ["mode", "median s", "mean msgs"],
    )
    join_query = workload.query_mix()["join"]
    for mode in ("optimized", "mqp"):
        latencies, messages = [], []
        for _ in range(6):
            result = store.execute(join_query, mode=mode)
            latencies.append(result.answer_time)
            messages.append(float(result.messages))
        table.add_row(mode, median(latencies), mean(messages))
    emit(table)

    benchmark.pedantic(lambda: store.execute(join_query, mode="mqp"), rounds=3, iterations=1)
