"""Binary key space of the P-Grid trie.

Keys and peer paths are strings over ``{'0','1'}``.  Semantically a *key* is a
point in the unit interval ``[0, 1)`` (the binary fraction ``0.k1 k2 k3 ...``)
and a *path* π denotes the interval ``[π, π + 2^-|π|)``: the set of all keys
having π as a prefix.  A set of paths is a valid P-Grid partition when those
intervals tile the whole space (prefix-free, Kraft sum 1).

All comparison helpers here treat missing trailing bits as ``0`` so that keys
of unequal length compare as the binary fractions they denote.
"""

from __future__ import annotations

from fractions import Fraction

BITS = ("0", "1")


def validate_key(key: str) -> str:
    """Return ``key`` unchanged if it is a (possibly empty) bit string."""
    if any(c not in "01" for c in key):
        raise ValueError(f"not a binary key: {key!r}")
    return key


def flip(bit: str) -> str:
    """Return the complementary bit."""
    if bit == "0":
        return "1"
    if bit == "1":
        return "0"
    raise ValueError(f"not a bit: {bit!r}")


def common_prefix_length(a: str, b: str) -> int:
    """Length of the longest common prefix of two bit strings."""
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return i
    return n


def compare_keys(a: str, b: str) -> int:
    """Three-way compare of two keys as binary fractions (-1, 0, +1).

    ``"01" == "010"`` because both denote the point 0.01₂.
    """
    n = max(len(a), len(b))
    a_padded = a.ljust(n, "0")
    b_padded = b.ljust(n, "0")
    if a_padded < b_padded:
        return -1
    if a_padded > b_padded:
        return 1
    return 0


def key_le(a: str, b: str) -> bool:
    """``a <= b`` as binary fractions."""
    return compare_keys(a, b) <= 0


def responsible(path: str, key: str) -> bool:
    """True when a peer with ``path`` is responsible for ``key``.

    A peer covers a key iff the key's point lies in the path's interval,
    i.e. the key (padded with zeros) starts with the path.
    """
    if len(key) >= len(path):
        return key.startswith(path)
    return path == key + "0" * (len(path) - len(key))


def path_interval(path: str) -> tuple[Fraction, Fraction]:
    """Return the half-open interval ``[lo, hi)`` a path covers, as fractions."""
    lo = key_fraction(path)
    return lo, lo + Fraction(1, 2 ** len(path))


def key_fraction(key: str) -> Fraction:
    """Exact numeric value of a key as a binary fraction in ``[0, 1)``."""
    value = Fraction(0)
    for i, bit in enumerate(key, start=1):
        if bit == "1":
            value += Fraction(1, 2**i)
    return value


def intervals_intersect(path: str, lo: str, hi: str) -> bool:
    """True when the subtree of ``path`` contains any key in ``[lo, hi]``.

    ``lo``/``hi`` are inclusive key bounds (points).  The subtree is the
    half-open interval of :func:`path_interval`.
    """
    p_lo, p_hi = path_interval(path)
    q_lo = key_fraction(lo)
    q_hi = key_fraction(hi)
    return p_lo <= q_hi and q_lo < p_hi


class KeyRange:
    """A half-open key interval ``[lo, hi)`` over points in ``[0, 1)``.

    ``hi is None`` means "to the end of the key space".  All physical range
    operators and the overlays' range-query algorithms take one of these.
    """

    __slots__ = ("lo", "hi", "_lo_f", "_hi_f")

    def __init__(self, lo: str, hi: str | None):
        self.lo = validate_key(lo)
        self.hi = validate_key(hi) if hi is not None else None
        self._lo_f = key_fraction(self.lo)
        self._hi_f = key_fraction(self.hi) if self.hi is not None else Fraction(1)

    @classmethod
    def subtree(cls, prefix: str) -> "KeyRange":
        """The interval covered by all keys with the given bit prefix."""
        return cls(prefix, increment_path(prefix))

    @classmethod
    def at_least(cls, key: str) -> "KeyRange":
        """``[key, end-of-space)``."""
        return cls(key, None)

    @classmethod
    def everything(cls) -> "KeyRange":
        return cls("", None)

    def contains(self, key: str) -> bool:
        point = key_fraction(key)
        return self._lo_f <= point < self._hi_f

    def intersects_path(self, path: str) -> bool:
        """True when the subtree of ``path`` overlaps this interval."""
        p_lo, p_hi = path_interval(path)
        return p_lo < self._hi_f and self._lo_f < p_hi

    def is_empty(self) -> bool:
        return self._lo_f >= self._hi_f

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeyRange):
            return NotImplemented
        return self._lo_f == other._lo_f and self._hi_f == other._hi_f

    def __hash__(self) -> int:
        return hash((self._lo_f, self._hi_f))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hi = "END" if self.hi is None else self.hi
        return f"KeyRange[{self.lo!r}, {hi!r})"


def increment_path(path: str) -> str | None:
    """Smallest key strictly above the interval of ``path`` (``None`` at the top).

    Used by the sequential range-query traversal to step to the next leaf:
    the returned key is the left edge of the neighbouring subtree.
    """
    trimmed = path.rstrip("1")
    if not trimmed:
        return None
    return trimmed[:-1] + "1"


def is_prefix_free(paths: list[str]) -> bool:
    """True when no path is a prefix of another (distinct peers' intervals disjoint)."""
    unique = sorted(set(paths))
    for first, second in zip(unique, unique[1:]):
        if second.startswith(first):
            return False
    return True


def is_complete_partition(paths: list[str]) -> bool:
    """True when the set of paths tiles the whole key space.

    Checks prefix-freeness plus the Kraft equality ``sum 2^-|π| == 1``.
    The empty set is not a partition; a single empty path (whole space) is.
    """
    unique = set(paths)
    if not unique:
        return False
    if not is_prefix_free(list(unique)):
        return False
    total = sum(Fraction(1, 2 ** len(p)) for p in unique)
    return total == 1
