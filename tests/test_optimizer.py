"""Statistics, cost model, and the cost-based planner's strategy choices."""

import pytest

from repro.algebra import build_plan, rewrite
from repro.bench import ConferenceWorkload
from repro.errors import PlanningError
from repro.optimizer import CatalogStatistics, Cost, CostModel, Planner, PlannerConfig
from repro.pgrid import build_network
from repro.physical import (
    AttributeScan,
    AvLookupScan,
    AvPrefixScan,
    AvRangeScan,
    BroadcastScan,
    IndexNestedLoopJoin,
    OidLookupScan,
    QGramScan,
    RehashJoin,
    ShipJoin,
    VLookupScan,
)
from repro.triples import DistributedTripleStore
from repro.vql import parse
from repro.vql.ast import Literal, TriplePattern, Var


@pytest.fixture(scope="module")
def stats_env():
    pnet = build_network(32, replication=2, seed=55, split_by="population")
    store = DistributedTripleStore(pnet, enable_qgram_index=True)
    workload = ConferenceWorkload(num_authors=30, num_publications=60, num_conferences=12, seed=55)
    store.bulk_insert(workload.all_triples())
    stats = CatalogStatistics.from_store(store)
    return store, stats


class TestStatistics:
    def test_counts(self, stats_env):
        store, stats = stats_env
        assert stats.num_peers == 32
        assert stats.num_groups == 16
        assert stats.replication == pytest.approx(2.0)
        assert stats.total_triples > 0
        assert stats.attribute_count("age") == 30

    def test_numeric_min_max(self, stats_env):
        _store, stats = stats_env
        age = stats.attributes["age"]
        assert 24 <= age.numeric_min <= age.numeric_max <= 65

    def test_eq_selectivity(self, stats_env):
        _store, stats = stats_env
        sel = stats.eq_selectivity("age")
        assert 0 < sel <= 1
        assert sel == pytest.approx(1 / stats.attribute_distinct("age"))

    def test_range_selectivity_interpolates(self, stats_env):
        _store, stats = stats_env
        full = stats.range_selectivity("age", None, None)
        half = stats.range_selectivity("age", None, 44)
        assert full == pytest.approx(1.0)
        assert 0 < half < 1

    def test_unknown_attribute(self, stats_env):
        _store, stats = stats_env
        assert stats.attribute_count("nope") == 0
        assert stats.eq_selectivity("nope") == 0.0

    def test_pattern_estimates_ordered_by_boundness(self, stats_env):
        _store, stats = stats_env
        bound_both = TriplePattern(Var("s"), Literal("age"), Literal(30))
        bound_attr = TriplePattern(Var("s"), Literal("age"), Var("v"))
        unbound = TriplePattern(Var("s"), Var("p"), Var("o"))
        assert (
            stats.estimate_pattern(bound_both)
            <= stats.estimate_pattern(bound_attr)
            <= stats.estimate_pattern(unbound)
        )

    def test_expected_hops_logarithmic(self, stats_env):
        _store, stats = stats_env
        assert stats.expected_hops() == pytest.approx(4.0)  # log2(16 groups)


class TestCostModel:
    def test_cost_composition(self):
        a = Cost(10, 0.5)
        b = Cost(5, 0.2)
        assert a.then(b) == Cost(15, 0.7)
        assert a.alongside(b) == Cost(15, 0.5)

    def test_lookup_cheaper_than_broadcast(self, stats_env):
        _store, stats = stats_env
        model = CostModel(stats)
        lookup = model.lookup()
        broadcast = model.range_scan(1.0, "shower", stats.total_triples)
        assert model.value(lookup) < model.value(broadcast)

    def test_shower_faster_sequential_cheaper_messages(self, stats_env):
        _store, stats = stats_env
        model = CostModel(stats)
        shower = model.range_scan(0.5, "shower", 100)
        sequential = model.range_scan(0.5, "sequential", 100)
        assert shower.latency < sequential.latency

    def test_value_weights(self, stats_env):
        _store, stats = stats_env
        latency_first = CostModel(stats, latency_weight=1.0, message_weight=0.0)
        message_first = CostModel(stats, latency_weight=0.0, message_weight=1.0)
        cost = Cost(messages=100, latency=0.1)
        assert latency_first.value(cost) == pytest.approx(0.1)
        assert message_first.value(cost) == pytest.approx(100)


class TestScanSelection:
    def _scan_for(self, stats_env, vql):
        store, stats = stats_env
        planner = Planner(stats, qgram_available=True)
        logical = rewrite(build_plan(parse(vql)))
        physical = planner.plan(logical)
        return physical

    def _find(self, physical, klass):
        stack = [physical]
        while stack:
            node = stack.pop()
            if isinstance(node, klass):
                return node
            stack.extend(node.children())
        return None

    def test_bound_subject_uses_oid_index(self, stats_env):
        plan = self._scan_for(stats_env, "SELECT ?p WHERE {('person:000001',?p,?o)}")
        assert self._find(plan, OidLookupScan)

    def test_bound_pred_obj_uses_av_lookup(self, stats_env):
        plan = self._scan_for(stats_env, "SELECT ?s WHERE {(?s,'age',30)}")
        assert self._find(plan, AvLookupScan)

    def test_equality_filter_becomes_point_range(self, stats_env):
        plan = self._scan_for(stats_env, "SELECT ?s WHERE {(?s,'age',?v) FILTER ?v = 30}")
        scan = self._find(plan, AvRangeScan)
        assert scan is not None and scan.low == 30 and scan.high == 30

    def test_range_filter_becomes_range_scan(self, stats_env):
        plan = self._scan_for(
            stats_env, "SELECT ?s WHERE {(?s,'age',?v) FILTER ?v >= 30 AND ?v < 40}"
        )
        scan = self._find(plan, AvRangeScan)
        assert scan.low == 30 and scan.high == 40 and not scan.high_inclusive

    def test_prefix_filter_becomes_prefix_scan(self, stats_env):
        plan = self._scan_for(
            stats_env,
            "SELECT ?s WHERE {(?s,'confname',?v) FILTER prefix(?v,'ICDE')}",
        )
        scan = self._find(plan, AvPrefixScan)
        assert scan is not None and scan.prefix == "ICDE"

    def test_edist_filter_uses_qgram_index(self, stats_env):
        plan = self._scan_for(
            stats_env,
            "SELECT ?s WHERE {(?s,'confname',?v) FILTER edist(?v,'ICDE 2003')<2}",
        )
        assert self._find(plan, QGramScan)

    def test_edist_without_qgram_index_scans_attribute(self, stats_env):
        store, stats = stats_env
        planner = Planner(stats, qgram_available=False)
        logical = rewrite(build_plan(parse(
            "SELECT ?s WHERE {(?s,'confname',?v) FILTER edist(?v,'ICDE 2003')<2}"
        )))
        physical = planner.plan(logical)
        assert self._find(physical, AttributeScan)
        assert not self._find(physical, QGramScan)

    def test_bound_object_uses_v_index(self, stats_env):
        plan = self._scan_for(stats_env, "SELECT ?s,?p WHERE {(?s,?p,'ICDE')}")
        assert self._find(plan, VLookupScan)

    def test_nothing_bound_broadcasts(self, stats_env):
        plan = self._scan_for(stats_env, "SELECT ?s WHERE {(?s,?p,?o)}")
        assert self._find(plan, BroadcastScan)


class TestJoinSelection:
    JOIN_QUERY = ("SELECT ?n WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?g = 30}")

    def test_forced_strategies_apply(self, stats_env):
        store, stats = stats_env
        logical = rewrite(build_plan(parse(self.JOIN_QUERY)))
        for forced, klass in [
            ("ship", ShipJoin),
            ("index-nl", IndexNestedLoopJoin),
            ("rehash", RehashJoin),
        ]:
            planner = Planner(stats, PlannerConfig(join_strategy=forced))
            physical = planner.plan(logical)
            found = TestScanSelection._find(self, physical, klass)
            assert found is not None, forced

    def test_cost_weights_change_join_choice(self, stats_env):
        """Latency-dominant costing tolerates shipping (parallel waves);
        message-dominant costing prefers probing a selective left side —
        the optimizer's answer depends on what the cost model optimizes,
        exactly the "beneficial in special situations" story of §3."""
        store, stats = stats_env
        vql = "SELECT ?g WHERE {(?a,'name',?n) (?a,'age',?g) FILTER ?n = 'x'}"
        logical = rewrite(build_plan(parse(vql)))
        by_messages = Planner(
            stats, PlannerConfig(latency_weight=0.0, message_weight=1.0)
        ).plan(logical)
        assert TestScanSelection._find(self, by_messages, IndexNestedLoopJoin)
        by_latency = Planner(
            stats, PlannerConfig(latency_weight=1.0, message_weight=0.0)
        ).plan(logical)
        # Latency-optimal plans avoid the sequential probe wave: either ship
        # both sides in parallel or answer the star in one OID-index pass.
        from repro.physical import OidClusterScan

        assert TestScanSelection._find(self, by_latency, ShipJoin) or (
            TestScanSelection._find(self, by_latency, OidClusterScan)
        )
        assert not TestScanSelection._find(self, by_latency, IndexNestedLoopJoin)

    def test_invalid_forced_strategy_raises(self, stats_env):
        store, stats = stats_env
        # Cartesian product: rehash/index-nl are inapplicable.
        vql = "SELECT ?x WHERE {(?a,'series',?x) (?b,'areaname',?y)}"
        planner = Planner(stats, PlannerConfig(join_strategy="index-nl"))
        with pytest.raises(PlanningError):
            planner.plan(rewrite(build_plan(parse(vql))))

    def test_forced_range_algorithm_propagates(self, stats_env):
        store, stats = stats_env
        planner = Planner(stats, PlannerConfig(range_algorithm="sequential"))
        physical = planner.plan(rewrite(build_plan(parse(
            "SELECT ?s WHERE {(?s,'age',?v) FILTER ?v > 30}"
        ))))
        scan = TestScanSelection._find(self, physical, AvRangeScan)
        assert scan.algorithm == "sequential"


class TestPlanExecution:
    """Planned physical plans must execute correctly end to end."""

    def test_all_forced_join_strategies_same_answer(self, stats_env):
        import random

        from repro.physical.base import ExecutionContext

        store, stats = stats_env
        ctx = ExecutionContext(store, store.pnet.peers[0], random.Random(1))
        logical = rewrite(build_plan(parse(TestJoinSelection.JOIN_QUERY)))
        answers = []
        for forced in ("ship", "index-nl", "rehash"):
            planner = Planner(stats, PlannerConfig(join_strategy=forced))
            physical = planner.plan(logical)
            result = physical.execute(ctx)
            answers.append(
                sorted(
                    tuple(sorted((k, repr(v)) for k, v in row.items()))
                    for row in result.all_bindings()
                )
            )
        assert answers[0] == answers[1] == answers[2]
