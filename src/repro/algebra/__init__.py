"""Logical algebra of UniStore (paper §2).

Relational operators (σ, π, ⋈, set ops) plus the distributed-triple-store
specials: pattern scans, similarity join, top-N and skyline.  Includes the
AST→plan builder, always-beneficial rewrites, and a centralized reference
executor used as ground truth by the test suite.
"""

from repro.algebra.expressions import (
    Binding,
    Constraint,
    EdistConstraint,
    PrefixConstraint,
    RangeConstraint,
    SubstringConstraint,
    evaluate,
    extract_constraints,
    satisfies,
)
from repro.algebra.operators import (
    Difference,
    Intersection,
    Join,
    LeftJoin,
    Limit,
    LogicalPlan,
    OrderBy,
    PatternScan,
    Projection,
    Selection,
    SimilarityJoin,
    Skyline,
    TopN,
    Union,
)
from repro.algebra.plan_builder import build_group, build_plan, order_patterns
from repro.algebra.reference import execute_reference
from repro.algebra.rewrite import fuse_top_n, push_down_filters, rewrite, split_conjunctions
from repro.algebra.semantics import (
    compatible,
    dominates,
    join_key,
    match_pattern,
    merge_bindings,
    order_sort_key,
    skyline_of,
    skyline_values,
)

__all__ = [
    "LogicalPlan",
    "PatternScan",
    "Selection",
    "Projection",
    "Join",
    "LeftJoin",
    "SimilarityJoin",
    "Union",
    "Intersection",
    "Difference",
    "OrderBy",
    "Limit",
    "TopN",
    "Skyline",
    "build_plan",
    "build_group",
    "order_patterns",
    "rewrite",
    "push_down_filters",
    "split_conjunctions",
    "fuse_top_n",
    "execute_reference",
    "evaluate",
    "satisfies",
    "extract_constraints",
    "Binding",
    "Constraint",
    "RangeConstraint",
    "PrefixConstraint",
    "SubstringConstraint",
    "EdistConstraint",
    "match_pattern",
    "merge_bindings",
    "compatible",
    "join_key",
    "order_sort_key",
    "skyline_of",
    "skyline_values",
    "dominates",
]
