"""Exception hierarchy for the UniStore reproduction.

Every error raised by the library derives from :class:`UniStoreError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish subsystems.
"""

from __future__ import annotations


class UniStoreError(Exception):
    """Base class for all errors raised by this library."""


class NetworkError(UniStoreError):
    """Raised for failures in the simulated network substrate."""


class NodeUnreachableError(NetworkError):
    """Raised when a message cannot be delivered to its destination peer."""

    def __init__(self, node_id: object, reason: str = "node offline"):
        super().__init__(f"node {node_id!r} unreachable: {reason}")
        self.node_id = node_id
        self.reason = reason


class RoutingError(UniStoreError):
    """Raised when overlay routing cannot make progress towards a key."""


class OverlayError(UniStoreError):
    """Raised for structural problems in an overlay network."""


class StorageError(UniStoreError):
    """Raised by the triple storage layer."""


class VQLError(UniStoreError):
    """Base class for query-language errors."""


class VQLSyntaxError(VQLError):
    """Raised when VQL text cannot be tokenized or parsed.

    Carries the (1-based) ``line`` and ``column`` of the offending token so
    interactive front-ends can point at the error.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PlanningError(UniStoreError):
    """Raised when no executable physical plan exists for a logical plan."""


class ExecutionError(UniStoreError):
    """Raised when a physical plan fails during distributed execution."""
