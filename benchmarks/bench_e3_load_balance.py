"""E3 — "a mature load-balancing technique able to deal with nearly
arbitrary data skews" (paper §2, ref. [2]).

Zipf-skewed keys (skew s = 0, 0.8, 1.2) are loaded into a 128-peer overlay
three ways:

* ``population split`` — trie balanced by peer count, ignoring data (the
  strawman: skew piles data onto few peers);
* ``+ rebalance`` — the same overlay after the storage-threshold
  split/migrate protocol runs;
* ``data split`` — the oracle steady state (trie split by data density).

Reported: max/mean load ratio and the Gini coefficient of per-peer load.
"""

from __future__ import annotations


from repro.bench import ResultTable, skewed_strings
from repro.pgrid import (
    build_network,
    bulk_load,
    encode_string,
    load_imbalance,
    rebalance,
)

from conftest import emit

NUM_PEERS = 128
NUM_KEYS = 2000
SKEWS = [0.0, 0.8, 1.2]
CAPACITY = 2 * NUM_KEYS * 2 // NUM_PEERS  # 2x fair share per peer (replicas x2)


def _load(pnet, words):
    bulk_load(pnet, [(encode_string(w), f"{w}#{i}", w) for i, w in enumerate(words)])


def _metrics(pnet):
    stats = load_imbalance(pnet)
    return stats["max_over_mean"], stats["gini"]


def test_e3_balancing_tames_skew(benchmark):
    table = ResultTable(
        "E3: per-peer load under Zipf skew (max/mean and Gini)",
        ["skew s", "strategy", "max/mean", "gini", "splits"],
    )
    final = {}
    for skew in SKEWS:
        words = skewed_strings(NUM_KEYS, s=skew, seed=17)
        keys = [encode_string(w) for w in words]

        strawman = build_network(NUM_PEERS, replication=2, seed=17, split_by="population")
        _load(strawman, words)
        ratio, gini = _metrics(strawman)
        table.add_row(skew, "population split", ratio, gini, 0)
        final[(skew, "strawman")] = (ratio, gini)

        balanced = build_network(NUM_PEERS, replication=2, seed=17, split_by="population")
        _load(balanced, words)
        splits = rebalance(balanced, capacity=CAPACITY)
        ratio, gini = _metrics(balanced)
        table.add_row(skew, "+ rebalance", ratio, gini, splits)
        final[(skew, "rebalanced")] = (ratio, gini)
        assert balanced.is_complete()

        oracle = build_network(NUM_PEERS, data_keys=keys, replication=2, seed=17, split_by="data")
        _load(oracle, words)
        ratio, gini = _metrics(oracle)
        table.add_row(skew, "data split (oracle)", ratio, gini, 0)
        final[(skew, "oracle")] = (ratio, gini)
    emit(table)

    # Claims: under heavy skew the strawman degenerates while both the
    # dynamic protocol and the oracle keep max/mean bounded.
    heavy = 1.2
    assert final[(heavy, "strawman")][0] > final[(heavy, "rebalanced")][0]
    assert final[(heavy, "strawman")][1] > final[(heavy, "oracle")][1]
    assert final[(heavy, "oracle")][0] < 6.0

    def run_rebalance():
        pnet = build_network(32, replication=2, seed=18, split_by="population")
        _load(pnet, skewed_strings(400, s=1.2, seed=18))
        rebalance(pnet, capacity=60)

    benchmark.pedantic(run_rebalance, rounds=3, iterations=1)
