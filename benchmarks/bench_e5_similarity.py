"""E5 — the q-gram index "to process string similarity efficiently"
(paper §2, ref. [6] "Similarity Queries on Structured Data in Structured
Overlays").

Three measurements:

* **E5a — similarity join** (the paper's headline similarity operator): a
  small probe set is fuzzy-joined against a dictionary of growing size.  The
  naive strategy ships the whole dictionary to the coordinator for all-pairs
  verification (traffic ∝ |dict|); the q-gram strategy probes the
  distributed index per probe string (traffic ∝ |probes|·|grams|·log N,
  *independent* of dictionary size).  The crossover is the claim.

* **E5b — q ablation**: gram length trades index size against filter power.

* **E5c — similarity selection**: against a constant, the pushed-down edist
  filter lets the attribute scan verify candidates where they live, so at
  64 peers (where one attribute occupies few leaves) the scan is hard to
  beat — the q-gram selection's traffic must merely stay sublinear in the
  dictionary size.  (At the paper's 400+ peer deployments the attribute
  spans many more leaves and the balance tilts; E2 exercises that regime.)
"""

from __future__ import annotations

import random
import string


from repro import UniStore
from repro.bench import ResultTable, inject_typo
from repro.optimizer import PlannerConfig

from conftest import emit

DICTIONARY_SIZES = [500, 2000, 8000]
NUM_PEERS = 64
NUM_PROBES = 8


def _dictionary(count: int, seed: int) -> list[str]:
    rng = random.Random(seed)
    words = set()
    while len(words) < count:
        words.add("".join(rng.choice(string.ascii_lowercase) for _ in range(9)))
    return sorted(words)


def _build(count: int, q: int = 3, seed: int = 55):
    store = UniStore.build(
        num_peers=NUM_PEERS, replication=2, seed=seed, enable_qgram_index=True, qgram_q=q
    )
    words = _dictionary(count, seed)
    rng = random.Random(seed + 1)
    rows = []
    for word in words:
        rows.append({"word": word})
    # Probe strings: perturbed dictionary words, so joins find matches.
    probes = [inject_typo(rng, words[i * (count // NUM_PROBES)]) for i in range(NUM_PROBES)]
    rows.extend({"probe": p} for p in probes)
    store.bulk_load_tuples(rows, "dict")
    store.rebalance()
    return store, words, probes


def _traffic(store, vql, config):
    with store.pnet.net.frame() as frame:
        result = store.execute(vql, config=config)
    return frame.messages + frame.bytes, result


SIMJOIN_QUERY = (
    "SELECT ?p,?w WHERE {(?x,'probe',?p) (?d,'word',?w) "
    "FILTER edist(?p,?w) <= 1}"
)


def test_e5a_similarity_join_crossover(benchmark):
    table = ResultTable(
        "E5a: similarity join (8 probes vs dictionary) — naive vs q-gram index",
        ["dict size", "strategy", "traffic", "latency s", "matches"],
    )
    ratios = {}
    keep = None
    for size in DICTIONARY_SIZES:
        store, _words, _probes = _build(size)
        naive_traffic, naive = _traffic(store, SIMJOIN_QUERY, PlannerConfig(use_qgram=False))
        qgram_traffic, qgram = _traffic(store, SIMJOIN_QUERY, PlannerConfig(use_qgram=True))
        assert sorted(map(repr, naive.rows)) == sorted(map(repr, qgram.rows))
        assert naive.rows, "probes are perturbed dictionary words; matches exist"
        table.add_row(size, "naive", naive_traffic, naive.answer_time, len(naive.rows))
        table.add_row(size, "qgram", qgram_traffic, qgram.answer_time, len(qgram.rows))
        ratios[size] = naive_traffic / max(1, qgram_traffic)
        keep = store
    emit(table)

    # The claim: the q-gram strategy's advantage grows with the dictionary
    # and clearly wins at the top end (naive must ship the whole dictionary).
    assert ratios[DICTIONARY_SIZES[-1]] > 2.0
    assert ratios[DICTIONARY_SIZES[-1]] > ratios[DICTIONARY_SIZES[0]]

    benchmark.pedantic(
        lambda: keep.execute(SIMJOIN_QUERY, config=PlannerConfig(use_qgram=True)),
        rounds=3,
        iterations=1,
    )


def test_e5b_qgram_length_ablation(benchmark):
    """DESIGN.md ablation: gram length q trades index size for filter power."""
    table = ResultTable(
        "E5b: q ablation (2000-word dictionary, similarity join)",
        ["q", "index postings", "traffic", "matches"],
    )
    last = None
    for q in (2, 3, 4):
        store, _words, _probes = _build(2000, q=q, seed=56)
        postings = sum(p.load for p in store.pnet.peers)
        traffic, result = _traffic(store, SIMJOIN_QUERY, PlannerConfig(use_qgram=True))
        table.add_row(q, postings, traffic, len(result.rows))
        last = store
    emit(table)
    benchmark.pedantic(
        lambda: last.execute(SIMJOIN_QUERY, config=PlannerConfig(use_qgram=True)),
        rounds=3,
        iterations=1,
    )


def test_e5c_similarity_selection(benchmark):
    table = ResultTable(
        "E5c: similarity selection edist<=1 vs a constant — strategies agree; "
        "q-gram traffic stays sublinear in dictionary size",
        ["dict size", "strategy", "traffic", "latency s", "answers"],
    )
    qgram_traffics = {}
    keep = None
    for size in DICTIONARY_SIZES:
        store, words, _probes = _build(size, seed=57)
        probe = words[len(words) // 2]
        vql = f"SELECT ?w WHERE {{(?d,'word',?w) FILTER edist(?w,'{probe}') <= 1}}"
        qgram_traffic, qgram_result = _traffic(store, vql, PlannerConfig(use_qgram=True))
        scan_traffic, scan_result = _traffic(store, vql, PlannerConfig(use_qgram=False))
        assert sorted(r["w"] for r in qgram_result.rows) == sorted(r["w"] for r in scan_result.rows)
        assert probe in {r["w"] for r in qgram_result.rows}
        table.add_row(size, "qgram", qgram_traffic, qgram_result.answer_time,
                      len(qgram_result.rows))
        table.add_row(size, "scan", scan_traffic, scan_result.answer_time,
                      len(scan_result.rows))
        qgram_traffics[size] = qgram_traffic
        keep = (store, vql)
    emit(table)

    growth = qgram_traffics[DICTIONARY_SIZES[-1]] / max(1, qgram_traffics[DICTIONARY_SIZES[0]])
    data_growth = DICTIONARY_SIZES[-1] / DICTIONARY_SIZES[0]
    assert growth < data_growth / 2, (
        f"q-gram probe traffic grew {growth:.1f}x for {data_growth:.0f}x data"
    )

    store, vql = keep
    benchmark.pedantic(
        lambda: store.execute(vql, config=PlannerConfig(use_qgram=True)),
        rounds=3,
        iterations=1,
    )
