"""E4 — "several implementations of physical operators, each beneficial in
special situations – which is captured by an appropriate cost model" (§3);
demo script: "execute identical queries sequentially while influencing the
integrated optimizer ... which will result in different performance results"
(§4).

One equi-join query is executed under all three physical join strategies
while the *selectivity of the left side* sweeps from one row to the whole
attribute.  Messages and simulated latency per strategy expose the
crossovers; the last column shows what the cost-based optimizer picks when
left alone, and the assertion checks it is never far from the best measured
strategy.
"""

from __future__ import annotations


import pytest

from repro import UniStore
from repro.bench import ConferenceWorkload, ResultTable
from repro.optimizer import PlannerConfig

from conftest import emit

STRATEGIES = ("ship", "index-nl", "rehash")


@pytest.fixture(scope="module")
def store():
    unistore = UniStore.build(num_peers=128, replication=2, seed=404)
    workload = ConferenceWorkload(
        num_authors=120, num_publications=240, num_conferences=20, seed=404
    )
    workload.load_into(unistore)
    return unistore


def _join_query(age_low: int) -> str:
    """Left side: authors with age >= age_low (sweeps selectivity);
    right side: their num_of_pubs, probed/joined on the author OID."""
    return (
        f"SELECT ?n WHERE {{(?a,'age',?g) (?a,'num_of_pubs',?n) "
        f"FILTER ?g >= {age_low}}}"
    )


def test_e4_join_strategy_crossover(benchmark, store):
    table = ResultTable(
        "E4: join strategies vs left-side selectivity (128 peers)",
        ["left rows", "strategy", "traffic", "latency s", "optimizer picks"],
    )
    weights = dict(latency_weight=0.001, message_weight=1.0)  # traffic-bound regime
    wins = {}
    for age_low in (64, 60, 50, 24):  # max age is 65 -> 1..all rows
        vql = _join_query(age_low)
        left_rows = len(store.execute(
            f"SELECT ?a WHERE {{(?a,'age',?g) FILTER ?g >= {age_low}}}",
            mode="reference",
        ).rows)
        measured = {}
        answers = {}
        for strategy in STRATEGIES:
            with store.pnet.net.frame() as frame:
                result = store.execute(vql, config=PlannerConfig(join_strategy=strategy, **weights))
            traffic = frame.messages + frame.bytes  # headers + payload units
            measured[strategy] = (traffic, result.answer_time)
            answers[strategy] = sorted(
                tuple(sorted((k, repr(v)) for k, v in row.items()))
                for row in result.rows
            )
        # All strategies must compute the same answer.
        assert answers["ship"] == answers["index-nl"] == answers["rehash"]

        auto = store.execute(vql, config=PlannerConfig(**weights))
        chosen = _strategy_in(auto.plan)
        wins[left_rows] = (measured, chosen)
        for strategy in STRATEGIES:
            traffic, latency = measured[strategy]
            table.add_row(
                left_rows,
                strategy,
                traffic,
                latency,
                chosen if strategy == chosen else "",
            )
    emit(table)

    # Shape assertions: index-NL wins the traffic race for tiny left sides
    # and loses it for the full scan (the crossover the paper's cost model
    # exists to navigate).
    small = min(wins)
    large = max(wins)
    small_measured, _ = wins[small]
    large_measured, _ = wins[large]
    assert small_measured["index-nl"][0] <= small_measured["ship"][0]
    assert large_measured["index-nl"][0] >= large_measured["ship"][0]

    # The optimizer's choice is near-optimal in measured traffic everywhere.
    for left_rows, (measured, chosen) in wins.items():
        best = min(m for m, _l in measured.values())
        assert measured[chosen][0] <= 2.5 * best + 20, (
            f"optimizer chose {chosen} at {left_rows} rows: "
            f"{measured[chosen][0]} traffic vs best {best}"
        )

    vql = _join_query(50)
    benchmark.pedantic(lambda: store.execute(vql), rounds=5, iterations=1)


def test_e4_range_algorithm_tradeoff(benchmark, store):
    """Ablation: shower vs sequential range scans — same rows, different
    message/latency balance (parallel fan-out vs serial walk)."""
    table = ResultTable(
        "E4b: range-scan algorithms (age range query, 128 peers)",
        ["algorithm", "messages", "latency s", "rows"],
    )
    vql = "SELECT ?a WHERE {(?a,'age',?g) FILTER ?g >= 30 AND ?g < 50}"
    stats = {}
    for algorithm in ("shower", "sequential"):
        result = store.execute(vql, config=PlannerConfig(range_algorithm=algorithm))
        stats[algorithm] = result
        table.add_row(algorithm, result.messages, result.answer_time, len(result.rows))
    emit(table)
    assert len(stats["shower"].rows) == len(stats["sequential"].rows)
    assert stats["shower"].answer_time <= stats["sequential"].answer_time

    benchmark.pedantic(
        lambda: store.execute(vql, config=PlannerConfig(range_algorithm="shower")),
        rounds=5,
        iterations=1,
    )


def _strategy_in(plan_text: str) -> str:
    if "IndexNestedLoopJoin" in plan_text:
        return "index-nl"
    if "RehashJoin" in plan_text:
        return "rehash"
    return "ship"
