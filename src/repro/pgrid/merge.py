"""Joining peers and merging overlays (paper §2: P-Grid "enables the merging
of two, formerly independent, overlays").

* :func:`join_peer` — a single newcomer joins a running overlay: it routes a
  join request to a random point of the key space, becomes a replica of the
  landing group (cloning data + references), and later load balancing may
  deepen the trie around it.

* :func:`merge_overlays` — every peer of overlay ``b`` joins overlay ``a``
  and re-publishes the entries it was responsible for.  Both overlays must
  share the same simulated :class:`~repro.net.network.Network` (two
  partitions of one physical network, as when two P-Grids discover each
  other).  Returns the merged overlay (``a``, mutated).
"""

from __future__ import annotations

import random

from repro.net.trace import Trace
from repro.pgrid.load_balancing import rebalance
from repro.pgrid.network import PGridNetwork
from repro.pgrid.peer import PGridPeer
from repro.pgrid.routing import route


def join_peer(
    pnet: PGridNetwork,
    node_id: str,
    rng: random.Random | None = None,
) -> tuple[PGridPeer, Trace]:
    """Add a brand-new peer to a running overlay.

    The newcomer contacts a random online peer (its bootstrap contact),
    routes towards a random key, and joins the landing group as a replica:
    copies its data, adopts its references, registers in the replica lists.
    """
    rng = rng or pnet.rng
    newcomer = pnet.add_peer(node_id, path="")
    contact = pnet.random_online_peer(rng)
    target_key = "".join(rng.choice("01") for _ in range(24))
    hop = pnet.net.send(newcomer.node_id, contact.node_id, "join", size=1)
    host, trace = route(contact, target_key, kind="join", rng=rng)
    trace = hop.then(trace)

    newcomer.set_path(host.path)
    copied = 0
    for entry in host.store:
        newcomer.store.put(entry)
        copied += 1
    trace = trace.then(pnet.net.send(host.node_id, newcomer.node_id, "join", size=max(1, copied)))
    newcomer.adopt_refs(host)
    for member_id in [host.node_id, *host.online_replicas()]:
        member = pnet.net.nodes[member_id]
        assert isinstance(member, PGridPeer)
        member.add_replica(newcomer.node_id)
        newcomer.add_replica(member_id)
    return newcomer, trace


def merge_overlays(
    a: PGridNetwork,
    b: PGridNetwork,
    capacity: int | None = None,
    rng: random.Random | None = None,
) -> PGridNetwork:
    """Merge overlay ``b`` into overlay ``a`` (shared physical network).

    Every ``b`` peer joins ``a`` via the join protocol, then re-publishes the
    entries it held in ``b`` through routed inserts, so data from both former
    overlays becomes queryable in the merged trie.  When ``capacity`` is
    given, a rebalance pass deepens overloaded groups afterwards.
    """
    if a.net is not b.net:
        raise ValueError("overlays must share one simulated network to merge")
    rng = rng or a.rng

    for old_peer in list(b.peers):
        # Drain the peer's data, then re-create it inside `a`.
        entries = list(old_peer.store)
        old_peer.store.clear()
        old_peer.fail()  # the old incarnation leaves overlay b
        newcomer, _trace = join_peer(a, f"{old_peer.node_id}-merged", rng=rng)
        for entry in entries:
            a.insert(
                entry.key,
                entry.value,
                item_id=entry.item_id,
                start=newcomer,
                version=entry.version,
            )
    if capacity is not None:
        rebalance(a, capacity=capacity)
    return a
