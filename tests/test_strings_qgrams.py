"""q-gram extraction and the count filter's soundness guarantee."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings import (
    PAD_CHAR,
    count_filter_threshold,
    distinct_count_filter_threshold,
    edit_distance,
    positional_qgrams,
    qgram_overlap,
    qgrams,
)

WORDS = st.text(alphabet="abcd", min_size=0, max_size=10)


class TestQGramExtraction:
    def test_padded_gram_count(self):
        # A padded string of length n yields n + q - 1 grams.
        assert len(qgrams("icde", q=3)) == 4 + 3 - 1

    def test_padding_characters_present(self):
        grams = qgrams("ab", q=3)
        assert grams[0] == PAD_CHAR * 2 + "a"
        assert grams[-1] == "b" + PAD_CHAR * 2

    def test_unpadded_short_string_yields_nothing(self):
        assert qgrams("ab", q=3, pad=False) == []

    def test_unpadded_gram_count(self):
        assert qgrams("abcde", q=3, pad=False) == ["abc", "bcd", "cde"]

    def test_q1_is_characters(self):
        assert qgrams("abc", q=1) == ["a", "b", "c"]

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)

    def test_positional_grams_enumerate(self):
        grams = positional_qgrams("ab", q=2)
        assert grams[0][0] == 0
        assert [g for _i, g in grams] == qgrams("ab", q=2)

    def test_empty_string_padded(self):
        # Only pad characters: q-1 grams of pure padding... length 0+q-1.
        assert len(qgrams("", q=3)) == 2


class TestOverlap:
    def test_identical_full_overlap(self):
        assert qgram_overlap("icde", "icde", q=3) == len(qgrams("icde", q=3))

    def test_disjoint_strings(self):
        assert qgram_overlap("aaaa", "zzzz", q=3) == 0

    def test_multiset_semantics(self):
        # 'aaaa' -> {pad-a:1, aa:3, a-pad:1}; 'aaa' -> {pad-a:1, aa:2, a-pad:1};
        # multiset intersection = 1 + 2 + 1 = 4.
        assert qgram_overlap("aaaa", "aaa", q=2) == 4


class TestCountFilterThresholds:
    def test_classic_formula(self):
        # |query| + q - 1 - k*q
        assert count_filter_threshold("icde", q=3, k=1) == 4 + 2 - 3

    def test_vacuous_threshold_clamped(self):
        assert count_filter_threshold("ab", q=3, k=2) == 0

    def test_distinct_no_repeats_matches_classic(self):
        assert distinct_count_filter_threshold("abcdef", 3, 1) == count_filter_threshold(
            "abcdef", 3, 1
        )

    def test_distinct_with_repeats_is_weaker(self):
        assert distinct_count_filter_threshold("aaaaaa", 3, 1) <= count_filter_threshold(
            "aaaaaa", 3, 1
        )

    @given(WORDS, WORDS, st.integers(min_value=0, max_value=3))
    @settings(max_examples=150)
    def test_multiset_filter_soundness(self, a, b, k):
        """No false dismissals: strings within distance k share >= threshold grams."""
        if edit_distance(a, b) <= k:
            assert qgram_overlap(a, b, q=3) >= count_filter_threshold(a, 3, k)

    @given(WORDS, WORDS, st.integers(min_value=0, max_value=3))
    @settings(max_examples=150)
    def test_distinct_filter_soundness(self, a, b, k):
        """The distinct-gram variant (used by the index) is also sound."""
        if edit_distance(a, b) <= k:
            shared_distinct = len(set(qgrams(a, q=3)) & set(qgrams(b, q=3)))
            assert shared_distinct >= distinct_count_filter_threshold(a, 3, k)
