"""Hand-written lexer for VQL."""

from __future__ import annotations

from repro.errors import VQLSyntaxError
from repro.vql.tokens import KEYWORDS, Token, TokenType

_PUNCT = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    "*": TokenType.STAR,
    "=": TokenType.EQ,
}


def tokenize(text: str) -> list[Token]:
    """Turn VQL source text into a token list ending with EOF.

    Comments run from ``#`` to end of line.  String literals accept single
    or double quotes with backslash escapes.
    """
    tokens: list[Token] = []
    line, column = 1, 1
    index = 0
    length = len(text)

    def error(message: str) -> VQLSyntaxError:
        return VQLSyntaxError(message, line=line, column=column)

    while index < length:
        ch = text[index]

        if ch == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        if ch == "#":  # comment to end of line
            while index < length and text[index] != "\n":
                index += 1
            continue

        start_line, start_column = line, column

        if ch == "?":  # variable
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] in "_"):
                end += 1
            name = text[index + 1 : end]
            if not name:
                raise error("'?' must be followed by a variable name")
            tokens.append(Token(TokenType.VARIABLE, name, start_line, start_column))
            column += end - index
            index = end
            continue

        if ch in "'\"":  # string literal
            quote = ch
            end = index + 1
            parts: list[str] = []
            while end < length and text[end] != quote:
                if text[end] == "\\" and end + 1 < length:
                    parts.append(text[end + 1])
                    end += 2
                elif text[end] == "\n":
                    raise error("unterminated string literal")
                else:
                    parts.append(text[end])
                    end += 1
            if end >= length:
                raise error("unterminated string literal")
            tokens.append(Token(TokenType.STRING, "".join(parts), start_line, start_column))
            column += end + 1 - index
            index = end + 1
            continue

        if ch.isdigit() or (ch == "-" and index + 1 < length and text[index + 1].isdigit()):
            end = index + 1
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # Only treat as decimal point when a digit follows.
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            raw = text[index:end]
            value: object = float(raw) if seen_dot else int(raw)
            tokens.append(Token(TokenType.NUMBER, value, start_line, start_column))
            column += end - index
            index = end
            continue

        if ch.isalpha() or ch == "_":  # keyword or identifier
            end = index + 1
            while end < length and (text[end].isalnum() or text[end] in "_:."):
                end += 1
            word = text[index:end]
            token_type = KEYWORDS.get(word.upper())
            if token_type is not None:
                tokens.append(Token(token_type, word.upper(), start_line, start_column))
            else:
                tokens.append(Token(TokenType.IDENT, word, start_line, start_column))
            column += end - index
            index = end
            continue

        # multi-character operators
        two = text[index : index + 2]
        if two == "!=":
            tokens.append(Token(TokenType.NEQ, "!=", start_line, start_column))
            index += 2
            column += 2
            continue
        if two == "<=":
            tokens.append(Token(TokenType.LE, "<=", start_line, start_column))
            index += 2
            column += 2
            continue
        if two == ">=":
            tokens.append(Token(TokenType.GE, ">=", start_line, start_column))
            index += 2
            column += 2
            continue
        if two == "&&":
            tokens.append(Token(TokenType.AND, "AND", start_line, start_column))
            index += 2
            column += 2
            continue
        if two == "||":
            tokens.append(Token(TokenType.OR, "OR", start_line, start_column))
            index += 2
            column += 2
            continue

        if ch == "<":
            tokens.append(Token(TokenType.LT, "<", start_line, start_column))
        elif ch == ">":
            tokens.append(Token(TokenType.GT, ">", start_line, start_column))
        elif ch == "!":
            tokens.append(Token(TokenType.BANG, "!", start_line, start_column))
        elif ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, start_line, start_column))
        else:
            raise error(f"unexpected character {ch!r}")
        index += 1
        column += 1

    tokens.append(Token(TokenType.EOF, None, line, column))
    return tokens
