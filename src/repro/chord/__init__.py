"""Chord baseline DHT (paper §2's comparison point).

The paper argues P-Grid supports range and substring queries *natively*
because its hash function is order preserving, "where other DHTs require
additional structures (e.g., in Chord an additional trie-structure is
constructed on top of its ring-based overlay network to support range
queries)".  To make that comparison executable we implement both sides:

* :class:`~repro.chord.ring.ChordRing` — the classic ring with consistent
  (order-destroying) hashing, finger tables and successor lists;
* :class:`~repro.chord.range_index.ChordRangeIndex` — the "additional
  trie-structure": a distributed segment trie whose nodes are stored *in*
  Chord, so every trie-node access costs a full O(log N) Chord lookup.
"""

from repro.chord.node import ChordNode
from repro.chord.range_index import ChordRangeIndex
from repro.chord.ring import ChordRing

__all__ = ["ChordRing", "ChordNode", "ChordRangeIndex"]
