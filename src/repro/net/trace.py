"""Causal execution traces.

A :class:`Trace` records the cost of a (possibly distributed) operation as
observed by its initiator: the number of overlay messages on the causal path,
the number of sequential hops on the *critical path*, and the critical-path
latency.  Traces compose:

* ``a.then(b)`` — b causally follows a (latency and hops add),
* ``Trace.parallel([...])`` — branches fan out concurrently (messages add,
  latency/hops take the slowest branch).

This is the execution model all physical operators report through; the
"query answer time" in the benchmarks is ``trace.latency`` of the root
operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class Trace:
    """Cost of one operation: total messages, critical-path hops/latency."""

    messages: int = 0
    hops: int = 0
    latency: float = 0.0

    ZERO: ClassVar["Trace"]  # populated below

    def then(self, other: "Trace") -> "Trace":
        """Sequential composition: ``other`` starts after ``self`` finishes."""
        return Trace(
            messages=self.messages + other.messages,
            hops=self.hops + other.hops,
            latency=self.latency + other.latency,
        )

    @staticmethod
    def parallel(branches: "list[Trace] | tuple[Trace, ...]") -> "Trace":
        """Concurrent composition: all branches start at the same instant."""
        branches = list(branches)
        if not branches:
            return Trace.ZERO
        return Trace(
            messages=sum(b.messages for b in branches),
            hops=max(b.hops for b in branches),
            latency=max(b.latency for b in branches),
        )

    @staticmethod
    def hop(latency: float) -> "Trace":
        """A single message taking ``latency`` seconds."""
        return Trace(messages=1, hops=1, latency=latency)

    def __add__(self, other: "Trace") -> "Trace":
        """``+`` is sequential composition (alias of :meth:`then`)."""
        return self.then(other)


Trace.ZERO = Trace(0, 0, 0.0)
