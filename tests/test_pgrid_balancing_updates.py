"""Load balancing (ref. [2]) and loosely-consistent updates (ref. [4])."""


import pytest

from repro.bench import skewed_strings
from repro.pgrid import (
    anti_entropy_round,
    build_network,
    bulk_load,
    encode_string,
    ensure_replication,
    join_peer,
    load_imbalance,
    merge_overlays,
    min_replication,
    online_coverage,
    rebalance,
    replication_factor,
    split_group,
    staleness,
    sync_pair,
)
from repro.pgrid.network import PGridNetwork


def _load_words(pnet, words):
    bulk_load(pnet, [(encode_string(w), w, w) for w in words])


class TestSplitGroup:
    def test_split_preserves_and_partitions_data(self):
        pnet = build_network(8, replication=2, seed=3, split_by="population")
        words = [f"w{i:03d}" for i in range(60)]
        _load_words(pnet, words)
        groups = pnet.leaf_groups()
        path = max(groups, key=lambda p: max(x.load for x in groups[p]))
        before = {e.item_id for e in pnet.all_entries()}
        assert split_group(pnet, path)
        after = {e.item_id for e in pnet.all_entries()}
        assert before == after
        # The two halves hold disjoint keys matching their deeper paths.
        for peer in pnet.peers:
            if peer.path.startswith(path):
                for entry in peer.store:
                    assert entry.key.startswith(peer.path)

    def test_split_requires_two_peers(self):
        pnet = build_network(4, replication=1, seed=3, split_by="population")
        path = pnet.peers[0].path
        assert not split_group(pnet, path)

    def test_split_keeps_partition_complete(self):
        pnet = build_network(8, replication=2, seed=5, split_by="population")
        path = pnet.peers[0].path
        split_group(pnet, path)
        assert pnet.is_complete()


class TestRebalance:
    def test_rebalance_bounds_skewed_load(self):
        words = skewed_strings(400, s=1.2, seed=8)
        pnet = build_network(32, replication=2, seed=8, split_by="population")
        _load_words(pnet, words)
        before = load_imbalance(pnet)
        rebalance(pnet, capacity=40)
        after = load_imbalance(pnet)
        assert after["max"] <= before["max"]
        assert pnet.is_complete()
        # Every group now fits the threshold (or could not be helped).
        overloaded = [
            path
            for path, peers in pnet.leaf_groups().items()
            if max(p.load for p in peers) > 40 and len(peers) >= 2
        ]
        assert not overloaded

    def test_rebalance_preserves_data(self):
        words = skewed_strings(200, s=1.0, seed=9)
        pnet = build_network(16, replication=2, seed=9, split_by="population")
        _load_words(pnet, words)
        before = {e.item_id for e in pnet.all_entries()}
        rebalance(pnet, capacity=30)
        assert {e.item_id for e in pnet.all_entries()} == before

    def test_rebalance_noop_when_balanced(self):
        pnet = build_network(16, replication=2, seed=10, split_by="population")
        _load_words(pnet, [f"w{i}" for i in range(16)])
        assert rebalance(pnet, capacity=100) == 0

    def test_lookups_still_work_after_rebalance(self):
        words = skewed_strings(150, s=1.1, seed=11)
        pnet = build_network(16, replication=2, seed=11, split_by="population")
        _load_words(pnet, words)
        rebalance(pnet, capacity=30)
        for word in words[:40]:
            entries, _trace = pnet.lookup(encode_string(word))
            assert any(e.value == word for e in entries)

    def test_imbalance_metrics(self):
        pnet = build_network(8, replication=1, seed=12, split_by="population")
        metrics = load_imbalance(pnet)
        assert metrics["max"] == 0.0 and metrics["gini"] == 0.0
        _load_words(pnet, [f"w{i}" for i in range(32)])
        metrics = load_imbalance(pnet)
        assert metrics["max"] >= metrics["mean"] > 0
        assert 0 <= metrics["gini"] <= 1


class TestReplicationHelpers:
    def test_factor_and_min(self):
        pnet = build_network(32, replication=4, seed=13, split_by="population")
        assert replication_factor(pnet) == pytest.approx(4.0)
        assert min_replication(pnet) == 4

    def test_ensure_replication_thickens_thin_groups(self):
        pnet = build_network(24, replication=2, seed=14, split_by="population")
        # Artificially thin one group by migrating a peer away.
        groups = pnet.leaf_groups()
        some_path = sorted(groups)[0]
        donor = groups[some_path][0]
        other_path = sorted(groups)[1]
        from repro.pgrid.load_balancing import migrate_peer

        migrate_peer(pnet, donor, other_path)
        assert min_replication(pnet) == 1
        ensure_replication(pnet, 2)
        assert min_replication(pnet) >= 2

    def test_online_coverage(self):
        pnet = build_network(8, replication=1, seed=15, split_by="population")
        assert online_coverage(pnet) == pytest.approx(1.0)
        pnet.peers[0].fail()
        assert online_coverage(pnet) == pytest.approx(1.0 - 2.0 ** -len(pnet.peers[0].path))


class TestUpdates:
    def test_update_creates_new_version_on_online_replicas(self):
        pnet = build_network(8, replication=2, seed=16, split_by="population")
        key = encode_string("fact")
        pnet.insert(key, "v1", item_id="fact")
        version, _trace = pnet.update(key, "fact", "v2")
        for peer in pnet.responsible_group(key):
            entry = peer.store.get_entry(key, "fact")
            assert entry.value == "v2" and entry.version == version

    def test_offline_replica_stays_stale(self):
        pnet = build_network(8, replication=2, seed=17, split_by="population")
        key = encode_string("fact")
        pnet.insert(key, "v1", item_id="fact")
        group = pnet.responsible_group(key)
        group[0].fail()
        pnet.update(key, "fact", "v2")
        assert group[0].store.get_entry(key, "fact").value == "v1"
        assert staleness(pnet, [key]) > 0

    def test_anti_entropy_reconciles_after_recovery(self):
        pnet = build_network(8, replication=2, seed=18, split_by="population")
        key = encode_string("fact")
        pnet.insert(key, "fact", item_id="fact")
        group = pnet.responsible_group(key)
        group[0].fail()
        pnet.update(key, "fact", "v2")
        group[0].recover()
        rounds = 0
        while staleness(pnet, [key]) > 0 and rounds < 10:
            anti_entropy_round(pnet)
            rounds += 1
        assert staleness(pnet, [key]) == 0.0
        assert group[0].store.get_entry(key, "fact").value == "v2"

    def test_sync_pair_is_bidirectional(self):
        pnet = build_network(4, replication=2, seed=19, split_by="population")
        a, b = pnet.leaf_groups()[pnet.peers[0].path][:2]
        from repro.pgrid.datastore import Entry

        a.store.put(Entry(a.path + "0" * 8, "only-a", "A", 1))
        b.store.put(Entry(b.path + "1" * 8, "only-b", "B", 1))
        moved = sync_pair(a, b)
        assert moved == 2
        assert a.store.get_entry(b.path + "1" * 8, "only-b")
        assert b.store.get_entry(a.path + "0" * 8, "only-a")

    def test_delete_propagates_to_online_replicas(self):
        pnet = build_network(8, replication=2, seed=20, split_by="population")
        key = encode_string("gone")
        pnet.insert(key, "x", item_id="gone")
        removed, _trace = pnet.delete(key, "gone")
        assert removed
        for peer in pnet.responsible_group(key):
            assert peer.store.get(key) == []


class TestJoinAndMerge:
    def test_join_peer_becomes_replica(self):
        pnet = build_network(8, replication=2, seed=21, split_by="population")
        _load_words(pnet, [f"w{i}" for i in range(40)])
        newcomer, trace = join_peer(pnet, "latecomer")
        assert newcomer.path  # adopted a real position
        host_group = [p for p in pnet.peers if p.path == newcomer.path and p is not newcomer]
        assert host_group
        assert newcomer.load == host_group[0].load
        assert trace.messages > 0

    def test_merge_overlays_unions_data(self):
        from repro.net.network import Network

        shared = Network(seed=22)
        a = PGridNetwork(shared, seed=22)
        b = PGridNetwork(shared, seed=23)
        for index in range(8):
            a.add_peer(f"a-{index}")
        for index in range(4):
            b.add_peer(f"b-{index}")
        from repro.pgrid.construction import wire_routing_tables, balanced_paths

        for pnet in (a, b):
            paths = balanced_paths(len(pnet.peers) // 2)
            for i, peer in enumerate(pnet.peers):
                peer.set_path(paths[i % len(paths)])
            wire_routing_tables(pnet)
        bulk_load(a, [(encode_string(f"a{i}"), f"a{i}", f"a{i}") for i in range(10)])
        bulk_load(b, [(encode_string(f"b{i}"), f"b{i}", f"b{i}") for i in range(10)])

        merged = merge_overlays(a, b, capacity=50)
        stored = {e.item_id for e in merged.all_entries()}
        assert {f"a{i}" for i in range(10)} <= stored
        assert {f"b{i}" for i in range(10)} <= stored
        # All data is queryable through normal lookups.
        for i in range(10):
            entries, _trace = merged.lookup(encode_string(f"b{i}"))
            assert any(e.value == f"b{i}" for e in entries)
