"""Physical operators: every strategy must agree with the reference executor
and differ only in cost."""

import random

import pytest

from repro.algebra import build_plan, execute_reference, rewrite
from repro.bench import ConferenceWorkload
from repro.errors import PlanningError
from repro.physical import (
    AttributeScan,
    AvLookupScan,
    AvPrefixScan,
    AvRangeScan,
    BroadcastScan,
    ExecutionContext,
    IndexNestedLoopJoin,
    NaiveSimilarityJoin,
    OidLookupScan,
    OpResult,
    QGramScan,
    QGramSimilarityJoin,
    RehashJoin,
    ShipJoin,
    SkylineOp,
    TopNOp,
    VLookupScan,
)
from repro.triples import DistributedTripleStore, Triple
from repro.pgrid import build_network
from repro.vql import parse
from repro.vql.ast import Literal, OrderItem, SkylineItem, TriplePattern, Var


@pytest.fixture(scope="module")
def env():
    """A loaded distributed store + its ground-truth triples + a context."""
    pnet = build_network(32, replication=2, seed=77, split_by="population")
    store = DistributedTripleStore(pnet, enable_qgram_index=True)
    workload = ConferenceWorkload(num_authors=25, num_publications=50, num_conferences=10, seed=77)
    triples = workload.all_triples()
    store.bulk_insert(triples)
    ctx = ExecutionContext(
        store=store,
        coordinator=pnet.peers[0],
        rng=random.Random(77),
    )
    return store, triples, ctx


def _canonical(rows):
    """Order-insensitive row comparison form (dict repr depends on insertion)."""
    return sorted(tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows)


def reference_rows(vql, triples):
    return _canonical(execute_reference(rewrite(build_plan(parse(vql))), triples))


def rows_of(result: OpResult):
    return _canonical(result.all_bindings())


class TestScans:
    def test_oid_lookup(self, env):
        store, triples, ctx = env
        some_oid = triples[0].oid
        pattern = TriplePattern(Literal(some_oid), Var("p"), Var("o"))
        result = OidLookupScan(pattern).execute(ctx)
        expected = [{"p": t.attribute, "o": t.value} for t in triples if t.oid == some_oid]
        assert rows_of(result) == _canonical(expected)

    def test_av_lookup(self, env):
        store, triples, ctx = env
        year = next(t.value for t in triples if t.attribute == "year")
        pattern = TriplePattern(Var("s"), Literal("year"), Literal(year))
        result = AvLookupScan(pattern).execute(ctx)
        expected = [{"s": t.oid} for t in triples if t.attribute == "year" and t.value == year]
        assert rows_of(result) == _canonical(expected)

    def test_av_range(self, env):
        store, triples, ctx = env
        pattern = TriplePattern(Var("s"), Literal("age"), Var("v"))
        result = AvRangeScan(pattern, low=30, high=40, high_inclusive=False).execute(ctx)
        expected = [
            {"s": t.oid, "v": t.value}
            for t in triples
            if t.attribute == "age" and 30 <= t.value < 40
        ]
        assert rows_of(result) == _canonical(expected)

    def test_av_range_sequential_same_rows(self, env):
        store, _triples, ctx = env
        pattern = TriplePattern(Var("s"), Literal("age"), Var("v"))
        shower = AvRangeScan(pattern, low=30, high=50, algorithm="shower").execute(ctx)
        sequential = AvRangeScan(pattern, low=30, high=50, algorithm="sequential").execute(ctx)
        assert rows_of(shower) == rows_of(sequential)

    def test_av_prefix(self, env):
        store, triples, ctx = env
        pattern = TriplePattern(Var("s"), Literal("confname"), Var("v"))
        result = AvPrefixScan(pattern, prefix="ICDE").execute(ctx)
        expected = [
            {"s": t.oid, "v": t.value}
            for t in triples
            if t.attribute == "confname" and str(t.value).startswith("ICDE")
        ]
        assert rows_of(result) == _canonical(expected)

    def test_attribute_scan(self, env):
        store, triples, ctx = env
        pattern = TriplePattern(Var("s"), Literal("series"), Var("v"))
        result = AttributeScan(pattern).execute(ctx)
        expected = [{"s": t.oid, "v": t.value} for t in triples if t.attribute == "series"]
        assert rows_of(result) == _canonical(expected)

    def test_v_lookup(self, env):
        store, triples, ctx = env
        value = next(t.value for t in triples if t.attribute == "series")
        pattern = TriplePattern(Var("s"), Var("p"), Literal(value))
        result = VLookupScan(pattern).execute(ctx)
        expected = [{"s": t.oid, "p": t.attribute} for t in triples if t.value == value]
        assert rows_of(result) == _canonical(expected)

    def test_broadcast_scan_returns_everything(self, env):
        store, triples, ctx = env
        pattern = TriplePattern(Var("s"), Var("p"), Var("o"))
        result = BroadcastScan(pattern).execute(ctx)
        assert result.total_rows() == len(triples)

    def test_qgram_scan_matches_filtered_attribute_scan(self, env):
        store, triples, ctx = env
        target = next(str(t.value) for t in triples if t.attribute == "published_in")
        pattern = TriplePattern(Var("s"), Literal("published_in"), Var("v"))
        qgram = QGramScan(pattern, text=target, max_distance=2).execute(ctx)
        from repro.strings import edit_distance

        expected = [
            {"s": t.oid, "v": t.value}
            for t in triples
            if t.attribute == "published_in"
            and edit_distance(str(t.value), target) <= 2
        ]
        assert rows_of(qgram) == _canonical(expected)

    def test_qgram_scan_message_bound(self, env):
        import math

        store, triples, ctx = env
        target = next(str(t.value) for t in triples if t.attribute == "published_in")
        pattern = TriplePattern(Var("s"), Literal("published_in"), Var("v"))
        qgram = QGramScan(pattern, text=target, max_distance=1).execute(ctx)
        # O(|grams| * log N): each gram is one parallel lookup + reply.
        groups = len(store.pnet.leaf_groups())
        grams = len(target) + 3 - 1
        assert qgram.trace.messages <= grams * (2 * math.log2(groups) + 3)
        # Latency stays that of ONE lookup (parallel probes).
        assert qgram.trace.hops <= 2 * math.log2(groups) + 3

    def test_qgram_scan_falls_back_when_filter_vacuous(self, env):
        store, triples, ctx = env
        pattern = TriplePattern(Var("s"), Literal("series"), Var("v"))
        # k too large for the string length: the count filter is vacuous.
        result = QGramScan(pattern, text="IC", max_distance=5).execute(ctx)
        expected = [{"s": t.oid, "v": t.value} for t in triples if t.attribute == "series"]
        assert result.total_rows() == len(expected)

    def test_scan_requires_correct_literals(self, env):
        _store, _triples, ctx = env
        var_pattern = TriplePattern(Var("s"), Var("p"), Var("o"))
        with pytest.raises(PlanningError):
            OidLookupScan(var_pattern).execute(ctx)
        with pytest.raises(PlanningError):
            AvLookupScan(var_pattern).execute(ctx)
        with pytest.raises(PlanningError):
            AvRangeScan(var_pattern).execute(ctx)


class TestJoinStrategies:
    @pytest.fixture()
    def join_parts(self, env):
        _store, triples, ctx = env
        left = AttributeScan(TriplePattern(Var("a"), Literal("has_published"), Var("t")))
        right_pattern = TriplePattern(Var("p"), Literal("title"), Var("t"))
        right = AttributeScan(right_pattern)
        expected = reference_rows(
            "SELECT * WHERE {(?a,'has_published',?t) (?p,'title',?t)}", triples
        )
        return ctx, left, right, right_pattern, expected

    def test_ship_join(self, join_parts):
        ctx, left, right, _rp, expected = join_parts
        result = ShipJoin(left, right).execute(ctx)
        assert rows_of(result) == expected

    def test_index_nl_join(self, join_parts):
        ctx, left, right, right_pattern, expected = join_parts
        result = IndexNestedLoopJoin(left, right, right_pattern=right_pattern).execute(ctx)
        assert rows_of(result) == expected

    def test_rehash_join(self, join_parts):
        ctx, left, right, _rp, expected = join_parts
        result = RehashJoin(left, right).execute(ctx)
        assert rows_of(result) == expected

    def test_strategies_have_different_costs(self, join_parts):
        ctx, left, right, right_pattern, _expected = join_parts
        ship = ShipJoin(left, right).execute(ctx)
        nl = IndexNestedLoopJoin(left, right, right_pattern=right_pattern).execute(ctx)
        rehash = RehashJoin(left, right).execute(ctx)
        costs = {ship.trace.messages, nl.trace.messages, rehash.trace.messages}
        assert len(costs) >= 2, "strategies should differ in traffic"

    def test_join_on_subject_via_oid_probe(self, env):
        _store, triples, ctx = env
        left = AttributeScan(TriplePattern(Var("a"), Literal("name"), Var("n")))
        right_pattern = TriplePattern(Var("a"), Literal("age"), Var("g"))
        result = IndexNestedLoopJoin(
            left, AttributeScan(right_pattern), right_pattern=right_pattern
        ).execute(ctx)
        expected = reference_rows("SELECT * WHERE {(?a,'name',?n) (?a,'age',?g)}", triples)
        assert rows_of(result) == expected

    def test_oid_probe_coerces_non_string_join_values(self):
        """Regression: non-string OID join values used to be silently dropped
        (must behave like the MQP probe-oid coercion)."""
        pnet = build_network(16, replication=2, seed=78, split_by="population")
        store = DistributedTripleStore(pnet)
        store.bulk_insert([Triple("42", "name", "answer-tuple"), Triple("q:1", "answer", 42)])
        ctx = ExecutionContext(store, pnet.peers[0], random.Random(78))
        left = AttributeScan(TriplePattern(Var("q"), Literal("answer"), Var("x")))
        right_pattern = TriplePattern(Var("x"), Literal("name"), Var("n"))
        result = IndexNestedLoopJoin(
            left, AttributeScan(right_pattern), right_pattern=right_pattern
        ).execute(ctx)
        assert result.all_bindings() == [{"q": "q:1", "x": 42, "n": "answer-tuple"}]

    def test_rehash_falls_back_on_cartesian(self, env):
        _store, _triples, ctx = env
        left = AttributeScan(TriplePattern(Var("a"), Literal("series"), Var("x")))
        right = AttributeScan(TriplePattern(Var("b"), Literal("areaname"), Var("y")))
        result = RehashJoin(left, right).execute(ctx)
        ship = ShipJoin(left, right).execute(ctx)
        assert rows_of(result) == rows_of(ship)


class TestSimilarityJoins:
    def test_naive_and_qgram_agree(self, env):
        _store, triples, ctx = env
        left = AttributeScan(TriplePattern(Var("p"), Literal("published_in"), Var("c")))
        right_pattern = TriplePattern(Var("k"), Literal("confname"), Var("cn"))
        naive = NaiveSimilarityJoin(
            left, AttributeScan(right_pattern), Var("c"), Var("cn"), 1
        ).execute(ctx)
        qgram = QGramSimilarityJoin(
            left,
            right_pattern=right_pattern,
            left_variable=Var("c"),
            right_variable=Var("cn"),
            max_distance=1,
        ).execute(ctx)
        assert rows_of(naive) == rows_of(qgram)
        assert naive.total_rows() > 0  # typos guarantee fuzzy matches


class TestRanking:
    def test_topn_prune_equals_naive(self, env):
        _store, _triples, ctx = env
        child = AttributeScan(TriplePattern(Var("a"), Literal("age"), Var("v")))
        items = (OrderItem(Var("v"), descending=True),)
        pruned = TopNOp(child, items, n=5, prune=True).execute(ctx)
        naive = TopNOp(child, items, n=5, prune=False).execute(ctx)
        assert [r["v"] for r in pruned.all_bindings()] == [r["v"] for r in naive.all_bindings()]

    def test_topn_prune_ships_fewer_bytes(self, env):
        store, _triples, ctx = env
        child = AttributeScan(TriplePattern(Var("a"), Literal("age"), Var("v")))
        items = (OrderItem(Var("v")),)
        before = store.pnet.net.stats.bytes
        TopNOp(child, items, n=2, prune=True).execute(ctx)
        pruned_bytes = store.pnet.net.stats.bytes - before
        before = store.pnet.net.stats.bytes
        TopNOp(child, items, n=2, prune=False).execute(ctx)
        naive_bytes = store.pnet.net.stats.bytes - before
        assert pruned_bytes < naive_bytes

    def test_skyline_prune_equals_naive(self, env):
        _store, triples, ctx = env
        base_left = AttributeScan(TriplePattern(Var("a"), Literal("age"), Var("g")))
        base_right_pattern = TriplePattern(Var("a"), Literal("num_of_pubs"), Var("n"))
        child = IndexNestedLoopJoin(
            base_left, AttributeScan(base_right_pattern), right_pattern=base_right_pattern
        )
        items = (SkylineItem(Var("g"), maximize=False), SkylineItem(Var("n"), maximize=True))
        pruned = SkylineOp(child, items, prune=True).execute(ctx)
        naive = SkylineOp(child, items, prune=False).execute(ctx)
        assert rows_of(pruned) == rows_of(naive)

    def test_skyline_result_is_nondominated(self, env):
        from repro.algebra.semantics import dominates, skyline_values

        _store, _triples, ctx = env
        child = AttributeScan(TriplePattern(Var("a"), Literal("age"), Var("v")))
        items = (SkylineItem(Var("v"), maximize=False),)
        result = SkylineOp(child, items).execute(ctx)
        vectors = [skyline_values(r, items) for r in result.all_bindings()]
        for a in vectors:
            assert not any(dominates(b, a, items) for b in vectors)
