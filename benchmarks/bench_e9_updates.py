"""E9 — "an update functionality with lose consistency guarantees"
(paper §2, ref. [4] Datta et al., "Updates in Highly Unreliable, Replicated
Peer-to-Peer Systems").

128 peers, replication 4.  A fraction of peers goes offline; 60 stored facts
are updated (push phase reaches online replicas only); the offline peers
come back; anti-entropy rounds (pull phase) reconcile.  Reported: staleness
(fraction of replica copies behind the latest version) after the push and
after each gossip round — the claim is convergence, not instant consistency.

E9b (batched ingest) measures the write-path counterpart: routed messages
per tuple when tuples are published through the destination-grouped bulk
inserts at batch sizes 1 / 10 / 100.  Set ``UNISTORE_QUICK=1`` for the CI
smoke configuration (smaller overlay; same tuple count and batch sizes).
"""

from __future__ import annotations

import os
import random
import string


from repro import UniStore
from repro.bench import ResultTable, batched, ingest_tuples
from repro.net.churn import ChurnModel
from repro.pgrid import (
    anti_entropy_round,
    build_network,
    bulk_load,
    encode_string,
    staleness,
)

from conftest import emit

QUICK = bool(os.environ.get("UNISTORE_QUICK"))

NUM_PEERS = 128
REPLICATION = 4
NUM_FACTS = 60
OFFLINE_FRACTIONS = [0.0, 0.2, 0.4, 0.6]
MAX_ROUNDS = 8

INGEST_PEERS = 32 if QUICK else 64
INGEST_TUPLES = 100
BATCH_SIZES = [1, 10, 100]


def _facts(seed: int) -> list[str]:
    rng = random.Random(seed)
    return sorted(
        {"".join(rng.choice(string.ascii_lowercase) for _ in range(7)) for _ in range(NUM_FACTS)}
    )


def test_e9_updates_converge_via_anti_entropy(benchmark):
    table = ResultTable(
        "E9: update staleness under partial availability (128 peers, r=4)",
        ["offline %", "stale after push", *[f"round {i}" for i in range(1, 5)]],
    )
    trajectories = {}
    bench_env = None
    for fraction in OFFLINE_FRACTIONS:
        pnet = build_network(NUM_PEERS, replication=REPLICATION, seed=91,
                             split_by="population")
        words = _facts(91)
        keys = [encode_string(w) for w in words]
        bulk_load(pnet, [(k, w, f"v1:{w}") for k, w in zip(keys, words)])

        churn = ChurnModel(pnet.peers, seed=91)
        churn.fail_fraction(fraction)
        for key, word in zip(keys, words):
            try:
                pnet.update(key, word, f"v2:{word}")
            except Exception:
                continue  # whole group offline: the update itself fails
        churn.recover_all()

        trajectory = [staleness(pnet, keys)]
        for _round in range(MAX_ROUNDS):
            if trajectory[-1] == 0.0:
                break
            anti_entropy_round(pnet)
            trajectory.append(staleness(pnet, keys))
        trajectories[fraction] = trajectory
        padded = trajectory[1:5] + [0.0] * max(0, 4 - len(trajectory[1:5]))
        table.add_row(int(fraction * 100), trajectory[0], *padded)
        if fraction == 0.4:
            bench_env = pnet
    emit(table)

    # Claims: no failures => push alone is consistent; with failures the
    # push leaves staleness proportional to the offline fraction, and
    # anti-entropy drives it monotonically to (near) zero.
    assert trajectories[0.0][0] == 0.0
    assert trajectories[0.2][0] > 0.0
    assert trajectories[0.6][0] > trajectories[0.2][0]
    for fraction, trajectory in trajectories.items():
        assert all(b <= a + 1e-9 for a, b in zip(trajectory, trajectory[1:])), (
            f"staleness not monotone for {fraction}: {trajectory}"
        )
        assert trajectory[-1] <= 0.02, (
            f"anti-entropy failed to converge for {fraction}: {trajectory}"
        )

    benchmark.pedantic(lambda: anti_entropy_round(bench_env), rounds=3, iterations=1)


def test_e9b_batched_ingest_messages_per_tuple(benchmark):
    """Destination-grouped batching amortizes routing across the batch.

    The same 100 tuples are ingested from one gateway peer at batch sizes
    1 / 10 / 100; routed messages per tuple must drop at least 2x between
    size 1 and size 100, while the stored data stays identical.
    """
    table = ResultTable(
        f"E9b: batched ingest cost ({INGEST_PEERS} peers, r=2, "
        f"{INGEST_TUPLES} tuples, 12 postings each)",
        ["batch size", "messages", "msg/tuple"],
    )
    per_tuple: dict[int, float] = {}
    entry_counts: dict[int, int] = {}
    bench_store = None
    for batch_size in BATCH_SIZES:
        store = UniStore.build(num_peers=INGEST_PEERS, replication=2, seed=7)
        gateway = store.pnet.peers[0]
        tuples = ingest_tuples(INGEST_TUPLES, seed=7)
        with store.pnet.net.frame() as frame:
            for chunk in batched(tuples, batch_size):
                store.insert_tuples(chunk, start=gateway)
        per_tuple[batch_size] = frame.messages / INGEST_TUPLES
        entry_counts[batch_size] = len(store.pnet.all_entries())
        table.add_row(batch_size, frame.messages, round(per_tuple[batch_size], 1))
        if batch_size == BATCH_SIZES[-1]:
            bench_store = store
    emit(table)

    # Identical data lands in the overlay regardless of batch size.
    assert len(set(entry_counts.values())) == 1
    # The batching win the tentpole claims: >= 2x fewer messages per tuple.
    assert per_tuple[100] * 2 <= per_tuple[1], per_tuple
    assert per_tuple[10] < per_tuple[1], per_tuple

    extra = ingest_tuples(10, seed=77)
    benchmark.pedantic(
        lambda: bench_store.insert_tuples(extra, start=bench_store.pnet.peers[0]),
        rounds=3,
        iterations=1,
    )
