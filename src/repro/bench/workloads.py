"""Synthetic workloads.

The paper's demonstration domain is "data about contacts and publications"
following the Figure-3 schema (Person / Publication / Conference / Research
Area).  :class:`ConferenceWorkload` generates that domain with seedable
sizes, Zipf-skewed conference popularity, and optional typo injection (so
similarity predicates have something to find).  :func:`zipf_values` /
:func:`skewed_strings` provide raw skewed key sets for the load-balancing
experiment (E3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.triples.triple import Value

#: Conference series of the evaluation domain (paper's own venue included).
SERIES = ["ICDE", "VLDB", "SIGMOD", "EDBT", "CIKM", "P2P", "ICDCS", "NETDB"]

#: Research areas for interested_in / classified_in edges (Fig. 3).
AREAS = [
    "distributed systems",
    "query processing",
    "data integration",
    "overlay networks",
    "information retrieval",
    "ranking",
]

# fmt: off
_SYLLABLES = [
    "ka", "ri", "mo", "ta", "el", "an", "so", "ve", "li", "du",
    "ha", "no", "pe", "su", "mi", "ro", "ba", "ce", "wi", "ju",
]
# fmt: on

# fmt: off
_TITLE_WORDS = [
    "similarity", "queries", "structured", "overlays", "skyline",
    "processing", "distributed", "storage", "universal", "triple",
    "routing", "cost", "aware", "adaptive", "indexing", "search",
    "progressive", "ranking", "heterogeneous", "schema",
]
# fmt: on


def zipf_cumulative(n_items: int, s: float) -> list[float]:
    """Normalized cumulative rank weights of a Zipf(s) distribution.

    The shared inverse-CDF table behind :func:`zipf_values` and the
    workload drivers' key popularity (:mod:`repro.load.drivers`).
    ``s == 0`` degenerates to uniform.
    """
    if n_items < 1:
        raise ValueError("need at least one item")
    weights = [1.0 / (rank**s) if s > 0 else 1.0 for rank in range(1, n_items + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    return cumulative


def zipf_rank(cumulative: list[float], u: float) -> int:
    """Rank index whose cumulative weight first reaches ``u`` (binary search)."""
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo


def zipf_values(rng: random.Random, n_items: int, count: int, s: float) -> list[int]:
    """``count`` samples from a Zipf(s) distribution over ``n_items`` ranks.

    Implemented by inverse-CDF over the normalized rank weights (exact, no
    rejection), deterministic per rng.
    """
    cumulative = zipf_cumulative(n_items, s)
    return [zipf_rank(cumulative, rng.random()) for _ in range(count)]


def skewed_strings(count: int, s: float, seed: int = 0, alphabet_size: int = 26) -> list[str]:
    """Random 8-letter strings whose *first letters* follow Zipf(s).

    Because P-Grid's hash is order preserving, first-letter skew translates
    directly into key-space density skew — the stress case of experiment E3.
    """
    rng = random.Random(seed)
    firsts = zipf_values(rng, alphabet_size, count, s)
    result = []
    for first in firsts:
        rest = "".join(chr(ord("a") + rng.randrange(26)) for _ in range(7))
        result.append(chr(ord("a") + first) + rest)
    return result


def poisson_arrivals(rng: random.Random, rate: float, horizon: float) -> list[float]:
    """Arrival instants of a Poisson process of ``rate``/s over ``horizon``.

    The open-loop workload driver (:mod:`repro.load.drivers`) injects one
    operation per instant; exponential inter-arrival gaps make the offered
    load exact in expectation and bursty in the small, like real traffic.
    """
    if rate <= 0 or horizon <= 0:
        raise ValueError("rate and horizon must be > 0")
    arrivals: list[float] = []
    t = rng.expovariate(rate)
    while t < horizon:
        arrivals.append(t)
        t += rng.expovariate(rate)
    return arrivals


def lookup_key_pool(store, attributes: tuple[str, ...] = ("published_in", "title")) -> list[str]:
    """Routable A#v posting keys of a loaded domain, hottest attributes first.

    Extracts the DHT keys the query mix actually probes (the A#v index keys
    of ``attributes``), so a workload driver can replay the *storage-level*
    footprint of the conference queries as concurrent point lookups.  The
    returned keys are sorted by descending posting count — rank 0 is the
    most popular value, ready for Zipf-ranked sampling.
    """
    from repro.triples.index import IndexKind, av_key

    counts: dict[str, int] = {}
    for entry in store.pnet.all_entries():
        posting = entry.value
        kind = getattr(posting, "kind", None)
        if kind is not IndexKind.AV:
            continue
        triple = posting.triple
        if triple.attribute in attributes:
            key = av_key(triple.attribute, triple.value)
            counts[key] = counts.get(key, 0) + 1
    return sorted(counts, key=lambda key: (-counts[key], key))


def ingest_tuples(count: int, seed: int = 0) -> list[dict[str, Value]]:
    """Publication-like tuples for the batched-ingest scenario (E9b).

    Each tuple decomposes into four triples (12 postings under the default
    indexes), so messages/tuple directly exposes the routing amortization of
    the destination-grouped bulk inserts.
    """
    rng = random.Random(seed)
    tuples: list[dict[str, Value]] = []
    for index in range(count):
        series = rng.choice(SERIES)
        year = 2000 + rng.randrange(7)
        tuples.append(
            {
                "title": f"{make_title(rng)} #{index}",
                "published_in": f"{series} {year}",
                "year": year,
                "classified_in": rng.choice(AREAS),
            }
        )
    return tuples


def batched(items: list, size: int) -> list[list]:
    """Split ``items`` into consecutive chunks of ``size`` (last may be short)."""
    if size < 1:
        raise ValueError("batch size must be >= 1")
    return [items[i : i + size] for i in range(0, len(items), size)]


def make_name(rng: random.Random) -> str:
    return "".join(rng.choice(_SYLLABLES) for _ in range(3)).capitalize()


def make_title(rng: random.Random) -> str:
    words = rng.sample(_TITLE_WORDS, k=rng.randint(3, 5))
    return " ".join(words).capitalize()


def inject_typo(rng: random.Random, text: str) -> str:
    """One random edit (substitution, deletion, transposition) for fuzzy data."""
    if len(text) < 2:
        return text + "x"
    kind = rng.randrange(3)
    position = rng.randrange(len(text) - 1)
    if kind == 0:  # substitution
        return text[:position] + rng.choice("abcdefghij") + text[position + 1 :]
    if kind == 1:  # deletion
        return text[:position] + text[position + 1 :]
    return (  # transposition
        text[:position] + text[position + 1] + text[position] + text[position + 2 :]
    )


@dataclass
class ConferenceWorkload:
    """The Figure-3 domain: people, publications, conferences, areas."""

    num_authors: int = 100
    num_publications: int = 200
    num_conferences: int = 24
    seed: int = 0
    conference_skew: float = 0.8  # Zipf s over conference popularity
    typo_rate: float = 0.05  # fraction of confname references with typos

    people: list[dict[str, Value]] = field(default_factory=list)
    publications: list[dict[str, Value]] = field(default_factory=list)
    conferences: list[dict[str, Value]] = field(default_factory=list)
    areas: list[dict[str, Value]] = field(default_factory=list)

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        self.conferences = []
        for index in range(self.num_conferences):
            series = SERIES[index % len(SERIES)]
            year = 2000 + index % 7
            self.conferences.append(
                {
                    "confname": f"{series} {year}",
                    "series": series,
                    "year": year,
                }
            )
        self.areas = [{"areaname": area} for area in AREAS]

        conf_choice = zipf_values(
            rng, self.num_conferences, self.num_publications, self.conference_skew
        )
        self.publications = []
        for index in range(self.num_publications):
            conference = self.conferences[conf_choice[index]]
            confname = str(conference["confname"])
            if rng.random() < self.typo_rate:
                confname = inject_typo(rng, confname)
            self.publications.append(
                {
                    "title": f"{make_title(rng)} #{index}",
                    "published_in": confname,
                    "year": conference["year"],
                    "classified_in": rng.choice(AREAS),
                }
            )

        self.people = []
        for index in range(self.num_authors):
            pub_count = min(self.num_publications, max(1, int(rng.expovariate(1 / 3.0)) + 1))
            published = rng.sample(range(self.num_publications), pub_count)
            person: dict[str, Value] = {
                "name": f"{make_name(rng)} {make_name(rng)}",
                "age": rng.randint(24, 65),
                "email": f"author{index}@example.org",
                "num_of_pubs": pub_count,
                "interested_in": rng.choice(AREAS),
            }
            self.people.append(person)
            # has_published edges are separate triples (multi-valued attribute).
            person["_published_titles"] = [  # type: ignore[assignment]
                str(self.publications[p]["title"]) for p in published
            ]

    # -- loading ------------------------------------------------------------------

    def load_into(self, unistore) -> dict[str, list[str]]:
        """Bulk-load the whole domain; returns the OIDs per entity kind."""
        from repro.triples.triple import Triple

        person_tuples = []
        edge_triples = []
        for person in self.people:
            titles = person.pop("_published_titles", [])
            person_tuples.append(person)
            person["_published_titles"] = titles  # keep for reuse
        person_oids = unistore.bulk_load_tuples(
            [{k: v for k, v in p.items() if not k.startswith("_")} for p in self.people],
            "person",
        )
        for oid, person in zip(person_oids, self.people):
            for title in person.get("_published_titles", []):
                edge_triples.append(Triple(oid, "has_published", title))
        unistore.store.bulk_insert(edge_triples)
        pub_oids = unistore.bulk_load_tuples(self.publications, "pub")
        conf_oids = unistore.bulk_load_tuples(self.conferences, "conf")
        area_oids = unistore.bulk_load_tuples(self.areas, "area")
        unistore.refresh_statistics()
        return {
            "person": person_oids,
            "pub": pub_oids,
            "conf": conf_oids,
            "area": area_oids,
        }

    def all_triples(self):
        """The whole domain as plain triples (for reference-executor tests)."""
        from repro.triples.triple import Triple

        triples = []
        for index, person in enumerate(self.people):
            oid = f"person:{index:06d}"
            for key, value in person.items():
                if key.startswith("_"):
                    continue
                triples.append(Triple(oid, key, value))
            for title in person.get("_published_titles", []):
                triples.append(Triple(oid, "has_published", title))
        for index, pub in enumerate(self.publications):
            oid = f"pub:{index:06d}"
            for key, value in pub.items():
                triples.append(Triple(oid, key, value))
        for index, conf in enumerate(self.conferences):
            oid = f"conf:{index:06d}"
            for key, value in conf.items():
                triples.append(Triple(oid, key, value))
        return triples

    # -- query mix -----------------------------------------------------------------

    def query_mix(self) -> dict[str, str]:
        """Representative VQL queries over this domain (used by E2/E10)."""
        some_conf = str(self.conferences[0]["confname"])
        return {
            "lookup": (f"SELECT ?p WHERE {{(?p,'published_in','{some_conf}')}}"),
            "range": (
                "SELECT ?t,?y WHERE {(?p,'title',?t) (?p,'year',?y) "
                "FILTER ?y >= 2003 AND ?y <= 2005}"
            ),
            "join": (
                "SELECT ?name,?title WHERE {(?a,'name',?name) "
                "(?a,'has_published',?title) (?p,'title',?title) "
                f"(?p,'published_in','{some_conf}')}}"
            ),
            "similarity": (
                "SELECT ?c WHERE {(?x,'published_in',?c) "
                "FILTER edist(?c,'" + some_conf + "')<3}"
            ),
            "skyline": (
                "SELECT ?name,?age,?cnt WHERE {(?a,'name',?name) (?a,'age',?age) "
                "(?a,'num_of_pubs',?cnt)} ORDER BY SKYLINE OF ?age MIN, ?cnt MAX"
            ),
            "topn": (
                "SELECT ?name,?cnt WHERE {(?a,'name',?name) (?a,'num_of_pubs',?cnt)} "
                "ORDER BY ?cnt DESC LIMIT 10"
            ),
        }
