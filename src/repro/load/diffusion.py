"""Replica-based query-load diffusion.

P-Grid's structural replication means every member of a replica group can
answer reads for the group's path.  Routing alone does not exploit that:
the route cache pins each requester to the first member it reached, so a
hot key hammers one peer while its replicas idle.  Diffusion re-spreads
that query load *at the last hop*: once routing has discovered the
responsible group, the final hop is redirected to a chosen member —
uniformly at random (classic load spreading) or to the member with the
smallest queue backlog (requires an attached
:class:`~repro.load.model.LoadModel`; models replicas sharing queue-depth
hints).

The hop count is unchanged — only the *target* of the existing last hop
moves — so diffusion trades no extra latency for its balancing, and with
``policy="none"`` the rewrite is the identity.  Benchmark E12 measures the
effect: the latency-vs-offered-load knee moves right with the replica
degree once diffusion is on.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.load.model import LoadModel
    from repro.pgrid.peer import PGridPeer

#: Recognized diffusion policies.
POLICIES = ("none", "random", "least-busy")


def replica_set(destination: "PGridPeer") -> list["PGridPeer"]:
    """The destination plus its online replicas, sorted for determinism."""
    from repro.pgrid.replication import online_group  # deferred: pgrid imports load

    return online_group(destination)


def choose_replica(
    destination: "PGridPeer",
    policy: str = "none",
    rng: random.Random | None = None,
    load: "LoadModel | None" = None,
    now: float = 0.0,
) -> "PGridPeer":
    """Pick the replica-group member that should serve this read."""
    if policy not in POLICIES:
        raise ValueError(f"unknown diffusion policy {policy!r} (use one of {POLICIES})")
    if policy == "none":
        return destination
    members = replica_set(destination)
    if len(members) == 1:
        return destination
    if policy == "least-busy" and load is not None:
        return min(members, key=lambda p: (load.backlog(p.node_id, now), p.node_id))
    # "random", or "least-busy" with no load information to act on.
    return (rng or random.Random()).choice(members)


def diffuse_route(
    destination: "PGridPeer",
    hops: list[tuple[str, str]],
    policy: str = "none",
    rng: random.Random | None = None,
    load: "LoadModel | None" = None,
    now: float = 0.0,
) -> tuple["PGridPeer", list[tuple[str, str]]]:
    """Rewrite a discovered route's last hop to the chosen group member.

    With no hops the requester is itself a member of the responsible group
    and serves the read locally for free — diffusing away would *add* a hop,
    so the route is returned unchanged.
    """
    if policy == "none" or not hops:
        return destination, hops
    target = choose_replica(destination, policy=policy, rng=rng, load=load, now=now)
    if target is destination:
        return destination, hops
    return target, hops[:-1] + [(hops[-1][0], target.node_id)]
